"""Tests for the repro.errors hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)


@pytest.mark.parametrize(
    ("child", "parent"),
    [
        (errors.ConfigurationError, errors.ReproError),
        (errors.SimulationError, errors.ReproError),
        (errors.TopologyError, errors.ReproError),
        (errors.DecodingError, errors.CodingError),
        (errors.BroadcastFailure, errors.ReproError),
    ],
)
def test_specific_parentage(child, parent):
    assert issubclass(child, parent)


def test_broadcast_failure_carries_undelivered_set():
    exc = errors.BroadcastFailure("budget expired", undelivered=[3, 1, 2])
    assert exc.undelivered == (3, 1, 2)
    assert isinstance(exc.undelivered, tuple)
    assert "budget expired" in str(exc)


def test_broadcast_failure_default_undelivered_is_empty():
    assert errors.BroadcastFailure("oops").undelivered == ()


def test_catching_base_class_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.BroadcastFailure("x", (0,))
