"""Unit tests for the pure channel kernel (single-instance and batched)."""

import numpy as np
import pytest

from repro.sim.core import adjacency_operand, resolve_channel, round_stats
from repro.sim.topology import gnp, line, star


def _operand(net):
    return adjacency_operand(net.adjacency_matrix())


class TestSingleInstance:
    def test_counts_are_transmitting_neighbour_counts(self):
        net = star(5, source=0)  # hub 0, leaves 1-4
        adj = _operand(net)
        transmit = np.array([False, True, True, False, False])
        listen = ~transmit
        # hub hears both transmitting leaves; each leaf only neighbours the
        # (silent) hub
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts.tolist() == [2, 0, 0, 0, 0]

    def test_outcome_masks_partition_the_listeners(self):
        net = line(5)  # 0-1-2-3-4
        adj = _operand(net)
        transmit = np.array([True, False, True, False, False])
        listen = np.array([False, True, False, True, False])  # node 4 sleeps
        ch = resolve_channel(adj, transmit, listen)
        # node 1 hears 0 and 2 collide; node 3 cleanly hears 2
        assert ch.collided.tolist() == [False, True, False, False, False]
        assert ch.clean.tolist() == [False, False, False, True, False]
        assert ch.silent.tolist() == [False, False, False, False, False]
        # every listener lands in exactly one mask; non-listeners in none
        union = ch.clean | ch.collided | ch.silent
        assert union.tolist() == listen.tolist()

    def test_senders_identify_the_unique_transmitting_neighbour(self):
        net = line(4)  # 0-1-2-3
        adj = _operand(net)
        transmit = np.array([False, False, True, False])
        listen = np.array([True, True, False, True])
        ch = resolve_channel(adj, transmit, listen)
        assert ch.clean.tolist() == [False, True, False, True]
        assert ch.senders[1] == 2
        assert ch.senders[3] == 2
        # senders are zeroed (not garbage) outside the clean mask, so they
        # are always safe to use as indices
        assert ch.senders[0] == 0
        assert ch.senders[2] == 0

    def test_all_silent_round_has_zero_senders(self):
        net = line(3)
        adj = _operand(net)
        transmit = np.zeros(3, dtype=bool)
        listen = np.ones(3, dtype=bool)
        ch = resolve_channel(adj, transmit, listen)
        assert ch.silent.all()
        assert not ch.clean.any()
        assert ch.senders.tolist() == [0, 0, 0]

    def test_round_stats_materialization(self):
        net = line(4)
        adj = _operand(net)
        transmit = np.array([True, False, True, False])
        listen = np.array([False, True, False, True])
        ch = resolve_channel(adj, transmit, listen)
        stats = round_stats(7, transmit, ch)
        assert stats.round_index == 7
        assert stats.transmitters == (0, 2)
        # node 1 hears 0 and 2 collide; node 3 cleanly hears 2
        assert stats.deliveries == ((3, 2),)
        assert stats.collisions == (1,)
        # everything is plain python ints (traces must compare across paths)
        assert all(isinstance(t, int) for t in stats.transmitters)
        assert all(isinstance(v, int) for pair in stats.deliveries for v in pair)


class TestBatched:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    def test_batched_resolution_equals_per_row(self, graph_seed):
        net = gnp(20, 0.25, seed=graph_seed)
        adj = _operand(net)
        rng = np.random.default_rng(graph_seed)
        transmit = rng.random((6, 20)) < 0.3
        listen = ~transmit & (rng.random((6, 20)) < 0.7)
        batched = resolve_channel(adj, transmit, listen)
        for i in range(6):
            single = resolve_channel(adj, transmit[i], listen[i])
            row = batched.row(i)
            assert np.array_equal(row.counts, single.counts)
            assert np.array_equal(row.clean, single.clean)
            assert np.array_equal(row.collided, single.collided)
            assert np.array_equal(row.silent, single.silent)
            assert np.array_equal(
                row.senders[single.clean], single.senders[single.clean]
            )

    def test_batch_shapes_carry_the_leading_axis(self):
        net = line(5)
        adj = _operand(net)
        transmit = np.zeros((3, 5), dtype=bool)
        transmit[:, 0] = True
        listen = ~transmit
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts.shape == (3, 5)
        assert ch.clean.shape == (3, 5)
        assert ch.senders.shape == (3, 5)


class TestOperand:
    def test_rejects_non_square_input(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="square"):
            adjacency_operand(np.zeros((3, 4)))

    def test_operand_is_float64_and_exact(self):
        net = star(40, source=0)
        adj = _operand(net)
        assert adj.dtype == np.float64
        transmit = np.zeros(40, dtype=bool)
        transmit[1:] = True  # all 39 leaves transmit at the hub
        listen = ~transmit
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts[0] == 39
