"""Unit tests for the pure channel kernel (single-instance and batched)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.core import (
    BitOperand,
    DenseOperand,
    SparseOperand,
    adjacency_operand,
    as_kernel_operand,
    resolve_channel,
    round_stats,
)
from repro.sim.core import channel as channel_module
from repro.sim.topology import RadioNetwork, gnp, line, star


def _operand(net):
    return adjacency_operand(net.adjacency_matrix())


class TestSingleInstance:
    def test_counts_are_transmitting_neighbour_counts(self):
        net = star(5, source=0)  # hub 0, leaves 1-4
        adj = _operand(net)
        transmit = np.array([False, True, True, False, False])
        listen = ~transmit
        # hub hears both transmitting leaves; each leaf only neighbours the
        # (silent) hub
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts.tolist() == [2, 0, 0, 0, 0]

    def test_outcome_masks_partition_the_listeners(self):
        net = line(5)  # 0-1-2-3-4
        adj = _operand(net)
        transmit = np.array([True, False, True, False, False])
        listen = np.array([False, True, False, True, False])  # node 4 sleeps
        ch = resolve_channel(adj, transmit, listen)
        # node 1 hears 0 and 2 collide; node 3 cleanly hears 2
        assert ch.collided.tolist() == [False, True, False, False, False]
        assert ch.clean.tolist() == [False, False, False, True, False]
        assert ch.silent.tolist() == [False, False, False, False, False]
        # every listener lands in exactly one mask; non-listeners in none
        union = ch.clean | ch.collided | ch.silent
        assert union.tolist() == listen.tolist()

    def test_senders_identify_the_unique_transmitting_neighbour(self):
        net = line(4)  # 0-1-2-3
        adj = _operand(net)
        transmit = np.array([False, False, True, False])
        listen = np.array([True, True, False, True])
        ch = resolve_channel(adj, transmit, listen)
        assert ch.clean.tolist() == [False, True, False, True]
        assert ch.senders[1] == 2
        assert ch.senders[3] == 2
        # senders are zeroed (not garbage) outside the clean mask, so they
        # are always safe to use as indices
        assert ch.senders[0] == 0
        assert ch.senders[2] == 0

    def test_all_silent_round_has_zero_senders(self):
        net = line(3)
        adj = _operand(net)
        transmit = np.zeros(3, dtype=bool)
        listen = np.ones(3, dtype=bool)
        ch = resolve_channel(adj, transmit, listen)
        assert ch.silent.all()
        assert not ch.clean.any()
        assert ch.senders.tolist() == [0, 0, 0]

    def test_round_stats_materialization(self):
        net = line(4)
        adj = _operand(net)
        transmit = np.array([True, False, True, False])
        listen = np.array([False, True, False, True])
        ch = resolve_channel(adj, transmit, listen)
        stats = round_stats(7, transmit, ch)
        assert stats.round_index == 7
        assert stats.transmitters == (0, 2)
        # node 1 hears 0 and 2 collide; node 3 cleanly hears 2
        assert stats.deliveries == ((3, 2),)
        assert stats.collisions == (1,)
        # everything is plain python ints (traces must compare across paths)
        assert all(isinstance(t, int) for t in stats.transmitters)
        assert all(isinstance(v, int) for pair in stats.deliveries for v in pair)


class TestBatched:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    def test_batched_resolution_equals_per_row(self, graph_seed):
        net = gnp(20, 0.25, seed=graph_seed)
        adj = _operand(net)
        rng = np.random.default_rng(graph_seed)
        transmit = rng.random((6, 20)) < 0.3
        listen = ~transmit & (rng.random((6, 20)) < 0.7)
        batched = resolve_channel(adj, transmit, listen)
        for i in range(6):
            single = resolve_channel(adj, transmit[i], listen[i])
            row = batched.row(i)
            assert np.array_equal(row.counts, single.counts)
            assert np.array_equal(row.clean, single.clean)
            assert np.array_equal(row.collided, single.collided)
            assert np.array_equal(row.silent, single.silent)
            assert np.array_equal(
                row.senders[single.clean], single.senders[single.clean]
            )

    def test_batch_shapes_carry_the_leading_axis(self):
        net = line(5)
        adj = _operand(net)
        transmit = np.zeros((3, 5), dtype=bool)
        transmit[:, 0] = True
        listen = ~transmit
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts.shape == (3, 5)
        assert ch.clean.shape == (3, 5)
        assert ch.senders.shape == (3, 5)


class TestOperand:
    def test_rejects_non_square_input(self):
        with pytest.raises(SimulationError, match="square"):
            adjacency_operand(np.zeros((3, 4)))

    def test_operand_is_float64_and_exact(self):
        net = star(40, source=0)
        adj = _operand(net)
        assert adj.dtype == np.float64
        transmit = np.zeros(40, dtype=bool)
        transmit[1:] = True  # all 39 leaves transmit at the hub
        listen = ~transmit
        ch = resolve_channel(adj, transmit, listen)
        assert ch.counts[0] == 39

    def test_raw_matrix_normalizes_to_a_dense_operand(self):
        op = as_kernel_operand(line(4).adjacency_matrix())
        assert isinstance(op, DenseOperand)
        assert op.backend == "dense"
        # Already-wrapped operands pass through untouched.
        assert as_kernel_operand(op) is op


class TestSparseOperand:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    @pytest.mark.parametrize("batched", [False, True])
    def test_sparse_resolution_is_bitwise_identical_to_dense(
        self, graph_seed, batched
    ):
        net = gnp(30, 0.2, seed=graph_seed)
        dense = DenseOperand(net.adjacency_matrix())
        sparse = SparseOperand(*net.csr())
        assert sparse.backend == "sparse"
        rng = np.random.default_rng(graph_seed)
        shape = (7, 30) if batched else (30,)
        transmit = rng.random(shape) < 0.3
        listen = ~transmit & (rng.random(shape) < 0.7)
        a = resolve_channel(dense, transmit, listen)
        b = resolve_channel(sparse, transmit, listen)
        assert np.array_equal(a.counts, b.counts)
        assert np.array_equal(a.clean, b.clean)
        assert np.array_equal(a.collided, b.collided)
        assert np.array_equal(a.silent, b.silent)
        assert np.array_equal(a.senders, b.senders)
        assert a.counts.dtype == b.counts.dtype
        assert a.senders.dtype == b.senders.dtype

    def test_single_node_graph_resolves_to_silence(self):
        # n=1, no edges: the CSR arrays are empty and every round is silent.
        op = SparseOperand(np.array([0, 0]), np.array([], dtype=np.int64))
        ch = resolve_channel(
            op, np.zeros(1, dtype=bool), np.ones(1, dtype=bool)
        )
        assert ch.silent.tolist() == [True]
        assert ch.senders.tolist() == [0]

    def test_rejects_malformed_csr(self):
        with pytest.raises(SimulationError, match="indptr"):
            SparseOperand(np.array([1, 2]), np.array([0, 1]))  # starts at 1
        with pytest.raises(SimulationError, match="indptr"):
            SparseOperand(np.array([0, 2, 1]), np.array([0]))  # decreasing
        with pytest.raises(SimulationError, match="node ids"):
            SparseOperand(np.array([0, 1, 2]), np.array([0, 5]))  # id >= n


class TestBitOperand:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    @pytest.mark.parametrize("batched", [False, True])
    def test_bitpacked_resolution_is_bitwise_identical_to_dense(
        self, graph_seed, batched
    ):
        # n=70 straddles a word boundary, so tail-word masking is exercised.
        net = gnp(70, 0.2, seed=graph_seed)
        dense = DenseOperand(net.adjacency_matrix())
        bit = BitOperand(*net.csr())
        assert bit.backend == "bitpacked"
        assert bit.words.shape == (70, 2)
        rng = np.random.default_rng(graph_seed)
        shape = (7, 70) if batched else (70,)
        transmit = rng.random(shape) < 0.3
        listen = ~transmit & (rng.random(shape) < 0.7)
        a = resolve_channel(dense, transmit, listen)
        b = resolve_channel(bit, transmit, listen)
        assert np.array_equal(a.counts, b.counts)
        assert np.array_equal(a.clean, b.clean)
        assert np.array_equal(a.collided, b.collided)
        assert np.array_equal(a.silent, b.silent)
        assert np.array_equal(a.senders, b.senders)
        assert a.counts.dtype == b.counts.dtype
        assert a.senders.dtype == b.senders.dtype

    def test_lut_fallback_matches_native_popcount(self):
        words = np.random.default_rng(0).integers(
            0, 2**64, size=(11, 5), dtype=np.uint64
        )
        expected = np.array(
            [[bin(int(w)).count("1") for w in row] for row in words],
            dtype=np.uint8,
        )
        assert np.array_equal(channel_module._popcount_lut(words), expected)
        if channel_module.HAVE_BITWISE_COUNT:
            assert np.array_equal(np.bitwise_count(words), expected)

    def test_forced_lut_fallback_resolves_identically(self, monkeypatch):
        # Force the numpy<2 code path regardless of the installed numpy:
        # BitOperand resolves `popcount64` at call time, so patching the
        # module global reroutes every kernel popcount through the LUT.
        monkeypatch.setattr(
            channel_module, "popcount64", channel_module._popcount_lut
        )
        net = gnp(70, 0.25, seed=3)
        dense = DenseOperand(net.adjacency_matrix())
        bit = BitOperand(*net.csr())
        rng = np.random.default_rng(3)
        transmit = rng.random((5, 70)) < 0.3
        listen = ~transmit
        a = resolve_channel(dense, transmit, listen)
        b = resolve_channel(bit, transmit, listen)
        assert np.array_equal(a.counts, b.counts)
        assert np.array_equal(a.senders, b.senders)

    def test_single_node_graph_resolves_to_silence(self):
        op = BitOperand(np.array([0, 0]), np.array([], dtype=np.int64))
        ch = resolve_channel(
            op, np.zeros(1, dtype=bool), np.ones(1, dtype=bool)
        )
        assert ch.silent.tolist() == [True]
        assert ch.senders.tolist() == [0]

    def test_rejects_malformed_csr(self):
        with pytest.raises(SimulationError, match="indptr"):
            BitOperand(np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(SimulationError, match="node ids"):
            BitOperand(np.array([0, 1, 2]), np.array([0, 5]))

    def test_partial_batch_sender_gating(self):
        # Only some batch rows have clean listeners: the per-row gate must
        # still produce exact senders on those rows and zeros elsewhere.
        net = line(6)
        bit = BitOperand(*net.csr())
        dense = DenseOperand(net.adjacency_matrix())
        transmit = np.zeros((3, 6), dtype=bool)
        listen = np.zeros((3, 6), dtype=bool)
        transmit[0, 2] = True          # row 0: clean deliveries at 1 and 3
        listen[0] = ~transmit[0]
        transmit[1, 1] = transmit[1, 3] = True  # row 1: node 2 collides
        listen[1, 2] = True
        # row 2: all silent listeners
        listen[2] = True
        a = resolve_channel(dense, transmit, listen)
        b = resolve_channel(bit, transmit, listen)
        assert np.array_equal(a.senders, b.senders)
        assert b.senders[0, 1] == 2 and b.senders[0, 3] == 2
        assert not b.clean[1].any() and not b.clean[2].any()
        assert (b.senders[1:] == 0).all()


class TestDisjointnessPrecondition:
    """The kernel itself must reject overlapping transmit/listen masks.

    Only the engine used to check, so direct kernel callers (tests, future
    backends, batched paths) silently got wrong physics on overlap.
    """

    @pytest.mark.parametrize("make_op", [
        lambda net: _operand(net),
        lambda net: DenseOperand(net.adjacency_matrix()),
        lambda net: SparseOperand(*net.csr()),
        lambda net: BitOperand(*net.csr()),
    ])
    def test_unbatched_overlap_rejected(self, make_op):
        op = make_op(line(4))
        transmit = np.array([True, False, True, False])
        listen = np.array([False, True, True, False])  # node 2 does both
        with pytest.raises(SimulationError, match="half-duplex.*node 2"):
            resolve_channel(op, transmit, listen)

    @pytest.mark.parametrize("make_op", [
        lambda net: DenseOperand(net.adjacency_matrix()),
        lambda net: SparseOperand(*net.csr()),
        lambda net: BitOperand(*net.csr()),
    ])
    def test_batched_overlap_rejected_with_instance_index(self, make_op):
        op = make_op(line(4))
        transmit = np.zeros((3, 4), dtype=bool)
        listen = np.zeros((3, 4), dtype=bool)
        transmit[:, 0] = True
        listen[:, 1:] = True
        listen[2, 0] = True  # batch row 2, node 0 does both
        with pytest.raises(
            SimulationError, match="half-duplex.*batch row 2.*node 0"
        ):
            resolve_channel(op, transmit, listen)

    def test_shape_mismatches_rejected(self):
        op = DenseOperand(line(4).adjacency_matrix())
        with pytest.raises(SimulationError, match="same shape"):
            resolve_channel(op, np.zeros(4, dtype=bool), np.zeros(3, dtype=bool))
        with pytest.raises(SimulationError, match=r"\(n,\) or \(batch, n\)"):
            resolve_channel(op, np.zeros(5, dtype=bool), np.zeros(5, dtype=bool))


class TestSenderZeroConvention:
    """`senders` is 0 outside `clean` — and a 0 *inside* clean is a real
    delivery from node id 0, so the two cases must stay distinguishable."""

    @pytest.mark.parametrize("make_op", [
        lambda net: DenseOperand(net.adjacency_matrix()),
        lambda net: SparseOperand(*net.csr()),
        lambda net: BitOperand(*net.csr()),
    ])
    def test_clean_delivery_from_node_zero_on_a_star(self, make_op):
        # Hub 0 transmits alone: every leaf is clean with sender id 0,
        # identical to the placeholder value outside the mask — only the
        # clean mask separates them.
        net = star(6, source=0)
        op = make_op(net)
        transmit = np.zeros(6, dtype=bool)
        transmit[0] = True
        listen = ~transmit
        ch = resolve_channel(op, transmit, listen)
        assert ch.clean.tolist() == [False, True, True, True, True, True]
        assert ch.senders.tolist() == [0, 0, 0, 0, 0, 0]
        stats = round_stats(0, transmit, ch)
        assert stats.deliveries == ((1, 0), (2, 0), (3, 0), (4, 0), (5, 0))

    def test_node_zero_delivery_in_a_line_middle(self):
        # Node 0 in the middle of a custom line 1-0-2: both ends hear a
        # clean transmission whose sender id is 0.
        net = RadioNetwork([[1, 2], [0], [0]])
        transmit = np.array([True, False, False])
        listen = np.array([False, True, True])
        ch = resolve_channel(DenseOperand(net.adjacency_matrix()), transmit, listen)
        assert ch.clean.tolist() == [False, True, True]
        assert ch.senders.tolist() == [0, 0, 0]
