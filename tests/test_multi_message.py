"""Tests for the k-message pipelined broadcast (object + array forms)."""

import numpy as np
import pytest

from repro.errors import BroadcastFailure, ConfigurationError
from repro.params import ProtocolParams
from repro.sim import (
    WAVE_PULSE,
    MultiMessageArrayProtocol,
    MultiMessageProtocol,
    MultiMessageResult,
    run_broadcast,
    run_broadcast_batch,
    run_multi_message,
)
from repro.sim.core.batch import ArrayEngine
from repro.sim.topology import from_spec, line, star

FAST = ProtocolParams.fast()


class TestDelivery:
    @pytest.mark.parametrize("family", ["line", "ring", "grid", "dumbbell"])
    @pytest.mark.parametrize("k", [1, 4])
    def test_delivers_all_k_messages_on_every_family(self, family, k):
        net = from_spec(family, 24, seed=2)
        result = run_multi_message(net, FAST, seed=2, k_messages=k)
        assert isinstance(result, MultiMessageResult)
        assert result.k_messages == k
        assert result.rounds_to_delivery <= result.budget
        assert len(result.informed_rounds) == net.n
        assert len(result.message_rounds) == net.n
        assert all(len(per_node) == k for per_node in result.message_rounds)

    def test_source_starts_with_everything(self):
        net = line(8)
        result = run_multi_message(net, FAST, seed=0, k_messages=3)
        src = net.source
        assert result.informed_rounds[src] == 0
        assert result.message_rounds[src] == (0, 0, 0)

    def test_informed_round_is_the_last_message_round(self):
        net = from_spec("grid", 25, seed=1)
        result = run_multi_message(net, FAST, seed=1, k_messages=4)
        for node in range(net.n):
            assert result.informed_rounds[node] == max(result.message_rounds[node])

    def test_wave_distances_are_the_bfs_layers(self):
        net = from_spec("grid", 25, seed=3)
        result = run_multi_message(net, FAST, seed=3, k_messages=4)
        layers = net.bfs_layers()
        for depth, layer in enumerate(layers):
            for node in layer:
                assert result.wave_distances[node] == depth

    def test_star_hub_source_is_near_instant(self):
        # Every leaf neighbours the hub: the source pumps one message per
        # owned slot, so k messages land in O(k) slots.
        result = run_multi_message(star(12), FAST, seed=0, k_messages=4)
        assert result.rounds_to_delivery <= 4 * FAST.wave_spacing + 1

    def test_deterministic_in_seed(self):
        net = from_spec("gnp", 20, seed=5)
        a = run_multi_message(net, FAST, seed=5, k_messages=4)
        b = run_multi_message(net, FAST, seed=5, k_messages=4)
        assert a == b

    def test_starved_budget_raises_with_undelivered(self):
        with pytest.raises(BroadcastFailure) as exc:
            run_multi_message(line(16), FAST, seed=0, k_messages=4, budget=3)
        assert exc.value.undelivered
        assert exc.value.budget == 3
        assert exc.value.sim is not None

    def test_batch_returns_failures_as_values(self):
        results = run_broadcast_batch(
            "multimessage",
            [line(16)],
            seeds=[0],
            params=FAST,
            budget=3,
            options={"k_messages": 4},
        )
        assert isinstance(results[0], BroadcastFailure)
        assert results[0].budget == 3


class TestValidation:
    @pytest.mark.parametrize("proto_cls", [MultiMessageProtocol, MultiMessageArrayProtocol])
    @pytest.mark.parametrize("bad_k", [0, -1, 1.5, "4", True])
    def test_rejects_bad_k(self, proto_cls, bad_k):
        with pytest.raises(ConfigurationError, match="k_messages"):
            proto_cls(k_messages=bad_k)

    @pytest.mark.parametrize("proto_cls", [MultiMessageProtocol, MultiMessageArrayProtocol])
    def test_rejects_wave_pulse_payload(self, proto_cls):
        with pytest.raises(ConfigurationError, match="WAVE_PULSE"):
            proto_cls(message=WAVE_PULSE)

    def test_rejects_none_message(self):
        with pytest.raises(ConfigurationError, match="non-None"):
            MultiMessageProtocol(message=None)

    def test_runner_rejects_collision_blind(self):
        with pytest.raises(ConfigurationError, match="collision-detection"):
            run_multi_message(line(4), FAST, collision_detection=False)

    def test_batch_rejects_collision_blind(self):
        with pytest.raises(ConfigurationError, match="requires collision detection"):
            run_broadcast_batch(
                "multimessage", [line(4)], collision_detection=False
            )

    def test_array_setup_rejects_collision_blind(self):
        with pytest.raises(ConfigurationError, match="collision detection"):
            ArrayEngine(
                line(4), MultiMessageArrayProtocol(k_messages=2), collision_detection=False
            )

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="does not accept option"):
            run_broadcast("multimessage", line(4), FAST, options={"k_mesages": 2})

    def test_single_message_protocols_reject_k_option(self):
        with pytest.raises(ConfigurationError, match="does not accept option"):
            run_broadcast("decay", line(4), FAST, options={"k_messages": 2})
        with pytest.raises(ConfigurationError, match="does not accept option"):
            run_broadcast_batch("ghk", [line(4)], options={"k_messages": 2})


class TestPipelining:
    def test_budget_grows_linearly_in_k(self):
        net = line(16)
        budgets = [
            run_multi_message(net, FAST, seed=0, k_messages=k).budget for k in (1, 2, 4)
        ]
        assert budgets[0] < budgets[1] < budgets[2]

    @pytest.mark.statistical
    def test_k4_beats_four_sequential_broadcasts_on_line(self):
        # The acceptance property at test scale: pipelining k messages is
        # cheaper than k sequential runs on the diameter-dominated family.
        nets = [line(48) for _ in range(10)]
        singles = run_broadcast_batch(
            "multimessage", nets, seeds=range(10), params=FAST,
            options={"k_messages": 1},
        )
        pipelined = run_broadcast_batch(
            "multimessage", nets, seeds=range(10), params=FAST,
            options={"k_messages": 4},
        )
        mean_1 = np.mean([r.rounds_to_delivery for r in singles])
        mean_4 = np.mean([r.rounds_to_delivery for r in pipelined])
        assert mean_4 < 4 * mean_1

    @pytest.mark.statistical
    @pytest.mark.parametrize("family", ["line", "ring", "grid", "dumbbell"])
    def test_no_failures_across_seeds(self, family):
        nets = [from_spec(family, 32, seed=s) for s in range(10)]
        for k in (1, 4, 8):
            results = run_broadcast_batch(
                "multimessage", nets, seeds=range(10), params=FAST,
                options={"k_messages": k},
            )
            failures = [r for r in results if isinstance(r, BroadcastFailure)]
            assert not failures, (family, k, failures)


class TestArrayState:
    def test_message_delivery_rounds_match_result(self):
        net = from_spec("grid", 16, seed=0)
        proto = MultiMessageArrayProtocol(k_messages=3)
        engine = ArrayEngine(net, proto, seed=0, collision_detection=True, params=FAST)
        engine.run(10_000, stop_when=lambda e: proto.done())
        result = run_broadcast(
            "multimessage", net, FAST, seed=0, options={"k_messages": 3}
        )
        assert proto.message_delivery_rounds() == result.message_rounds
        assert proto.wave_distances() == result.wave_distances

    def test_undelivered_lists_nodes_missing_any_message(self):
        net = line(12)
        proto = MultiMessageArrayProtocol(k_messages=2)
        engine = ArrayEngine(net, proto, seed=0, collision_detection=True, params=FAST)
        engine.run(2)
        undelivered = proto.undelivered()
        assert undelivered  # two rounds cannot possibly deliver everything
        held_all = np.nonzero(proto.known.all(axis=1))[0].tolist()
        assert sorted(set(range(net.n)) - set(undelivered)) == held_all
