"""Object-path vs array-path equivalence: bitwise-identical traces.

The array-native protocol forms must reproduce the per-node object forms
*exactly* — same per-round ground truth (``RoundStats``), same
rounds-to-delivery, same per-node arrival rounds — on identical seeds
across the topology suite.  This is the contract that lets sweeps run on
the fast path while the object path stays the auditable reference.
"""

import pytest

from repro.errors import BroadcastFailure
from repro.params import ProtocolParams
from repro.sim import (
    ArrayEngine,
    BeepWaveArrayProtocol,
    BeepWaveProtocol,
    Engine,
    run_broadcast,
    run_broadcast_batch,
)
from repro.sim.runners import broadcast_runner
from repro.sim.topology import from_spec

FAST = ProtocolParams.fast()

#: ≥ 4 topology families, spanning diameter-bound, contention-bound,
#: geometric, and bottleneck regimes.
FAMILIES = ("line", "ring", "grid", "gnp", "dumbbell", "unit_disk")
SEEDS = (0, 3)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_broadcast_traces_are_bitwise_identical(family, seed, protocol):
    net = from_spec(family, 24, seed=seed)
    obj = broadcast_runner(protocol)(net, FAST, seed=seed, trace=True)
    arr = run_broadcast(protocol, net, FAST, seed=seed, trace=True)
    assert arr.rounds_to_delivery == obj.rounds_to_delivery
    assert arr.informed_rounds == obj.informed_rounds
    assert arr.budget == obj.budget
    assert arr.sim.history == obj.sim.history
    assert arr.sim == obj.sim  # totals and early-stop flag too
    assert arr == obj  # the full result dataclasses match field-for-field


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("k", [1, 3])
def test_multimessage_traces_are_bitwise_identical(family, seed, k):
    # The k-message pipeline draws two kinds of coins (backoff and
    # selection tie-breaks), so this covers a strictly richer coin
    # discipline than the single-message protocols.
    net = from_spec(family, 24, seed=seed)
    obj = broadcast_runner("multimessage")(net, FAST, seed=seed, k_messages=k, trace=True)
    arr = run_broadcast(
        "multimessage", net, FAST, seed=seed, options={"k_messages": k}, trace=True
    )
    assert arr.rounds_to_delivery == obj.rounds_to_delivery
    assert arr.informed_rounds == obj.informed_rounds
    assert arr.message_rounds == obj.message_rounds
    assert arr.sim.history == obj.sim.history
    assert arr == obj  # the full result dataclasses match field-for-field


@pytest.mark.parametrize("family", ("line", "grid", "gnp", "dumbbell"))
@pytest.mark.parametrize("cd", [True, False])
def test_beepwave_traces_are_bitwise_identical(family, cd):
    # The wave is deterministic with collision detection and *stalls*
    # without it; both behaviours must agree across paths, so run a fixed
    # number of rounds with no early stop and compare everything.
    seed = 1
    net = from_spec(family, 25, seed=seed)
    rounds = net.eccentricity() + 3

    obj_protos = [BeepWaveProtocol() for _ in range(net.n)]
    obj_engine = Engine(
        net, obj_protos, seed=seed, collision_detection=cd, params=FAST, trace=True
    )
    obj_sim = obj_engine.run(rounds)

    arr_proto = BeepWaveArrayProtocol()
    arr_engine = ArrayEngine(
        net, arr_proto, seed=seed, collision_detection=cd, params=FAST, trace=True
    )
    arr_sim = arr_engine.run(rounds)

    assert arr_sim == obj_sim
    obj_distances = tuple(
        -1 if p.wave_distance is None else p.wave_distance for p in obj_protos
    )
    assert arr_proto.wave_distances() == obj_distances


@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_failures_agree_between_paths(protocol):
    # A starved budget must fail identically: same exception type, same
    # undelivered node set.
    net = from_spec("line", 24, seed=0)
    with pytest.raises(BroadcastFailure) as obj_exc:
        broadcast_runner(protocol)(net, FAST, seed=0, budget=3)
    (arr_result,) = run_broadcast_batch(
        protocol, [net], seeds=[0], params=FAST, budget=3
    )
    assert isinstance(arr_result, BroadcastFailure)
    assert arr_result.undelivered == obj_exc.value.undelivered


@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_batch_results_match_single_runs(protocol):
    # One BatchEngine pass over mixed seeds equals seed-by-seed runs.
    nets = [from_spec("grid", 20, seed=s) for s in range(4)]
    batch = run_broadcast_batch(protocol, nets, seeds=range(4), params=FAST)
    for seed, (net, batched) in enumerate(zip(nets, batch)):
        single = run_broadcast(protocol, net, FAST, seed=seed)
        assert batched == single


def test_single_node_network_is_vacuously_delivered_on_both_paths():
    net = from_spec("line", 1)
    obj = broadcast_runner("decay")(net, FAST, seed=0)
    arr = run_broadcast("decay", net, FAST, seed=0)
    assert obj.rounds_to_delivery == arr.rounds_to_delivery == 0
    assert obj.sim.stopped_early and arr.sim.stopped_early


@pytest.mark.statistical
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_equivalence_holds_over_many_seeds(family, protocol):
    # Broader sweep (10 seeds per cell) kept in the non-blocking
    # statistical job; any divergence in coin consumption or channel
    # semantics shows up as a rounds mismatch long before n grows.
    for seed in range(10):
        net = from_spec(family, 32, seed=seed)
        obj = broadcast_runner(protocol)(net, FAST, seed=seed)
        arr = run_broadcast(protocol, net, FAST, seed=seed)
        assert arr.rounds_to_delivery == obj.rounds_to_delivery, (family, protocol, seed)
        assert arr.informed_rounds == obj.informed_rounds


@pytest.mark.statistical
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("k", [2, 8])
def test_multimessage_equivalence_holds_over_many_seeds(family, k):
    for seed in range(10):
        net = from_spec(family, 32, seed=seed)
        obj = broadcast_runner("multimessage")(net, FAST, seed=seed, k_messages=k)
        arr = run_broadcast(
            "multimessage", net, FAST, seed=seed, options={"k_messages": k}
        )
        assert arr.rounds_to_delivery == obj.rounds_to_delivery, (family, k, seed)
        assert arr.informed_rounds == obj.informed_rounds
        assert arr.message_rounds == obj.message_rounds
