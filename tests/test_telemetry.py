"""Traffic accounting, round observers, and wall-clock telemetry.

The contract under test: per-node traffic counters are streamed in O(n)
inside the round loop, sum exactly to the ``SimResult`` scalar totals, are
bitwise-identical across the object/array paths and the dense/sparse
backends, and observers see exactly the rounds the trace records — the
trace *is* the first observer.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import ProtocolParams
from repro.sim import (
    ArrayEngine,
    BatchEngine,
    BatchItem,
    Engine,
    DecayArrayProtocol,
    run_broadcast,
    run_broadcast_batch,
)
from repro.sim.core.batch import TraceObserver
from repro.sim.core.stats import RoundStats, RunTelemetry, TrafficTotals
from repro.sim.runners import broadcast_runner
from repro.sim.topology import from_spec

FAST = ProtocolParams.fast()
FAMILIES = ("line", "grid", "gnp", "dumbbell")


def _array_result(family, seed, protocol="ghk", **kwargs):
    net = from_spec(family, 24, seed=seed)
    return run_broadcast(protocol, net, FAST, seed=seed, **kwargs)


class TestTrafficTotals:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("protocol", ["decay", "ghk"])
    def test_per_node_totals_sum_to_scalar_totals(self, family, protocol):
        sim = _array_result(family, 7, protocol).sim
        traffic = sim.traffic
        assert traffic is not None
        n = len(traffic.transmissions)
        assert (
            len(traffic.receptions)
            == len(traffic.collisions_heard)
            == len(traffic.awake_slots)
            == n
        )
        assert sum(traffic.transmissions) == sim.total_transmissions
        assert sum(traffic.receptions) == sim.total_deliveries
        assert sum(traffic.collisions_heard) == sim.total_collisions
        assert traffic.energy == sum(traffic.awake_slots)

    def test_awake_slots_bound_energy(self):
        # No node can be awake more slots than rounds were run, and a
        # transmission or reception implies an awake slot.
        sim = _array_result("grid", 3).sim
        t = sim.traffic
        for node in range(len(t.awake_slots)):
            assert t.awake_slots[node] <= sim.rounds_run
            assert t.awake_slots[node] >= max(
                t.transmissions[node], t.receptions[node] + t.collisions_heard[node]
            )

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("protocol", ["decay", "ghk"])
    def test_object_and_array_traffic_identical(self, family, protocol):
        net = from_spec(family, 24, seed=5)
        obj = broadcast_runner(protocol)(net, FAST, seed=5)
        arr = run_broadcast(protocol, net, FAST, seed=5)
        assert obj.sim.traffic == arr.sim.traffic
        assert isinstance(obj.sim.traffic, TrafficTotals)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_dense_and_sparse_traffic_identical(self, family):
        net = from_spec(family, 24, seed=11)
        dense = run_broadcast(
            "ghk", net, FAST.with_overrides(channel_backend="dense"), seed=11
        )
        sparse = run_broadcast(
            "ghk", net, FAST.with_overrides(channel_backend="sparse"), seed=11
        )
        assert dense.sim.traffic == sparse.sim.traffic

    def test_as_dict_shape(self):
        sim = _array_result("line", 0).sim
        payload = sim.traffic.as_dict()
        assert set(payload) == {
            "transmissions",
            "receptions",
            "collisions_heard",
            "awake_slots",
            "energy",
        }
        assert payload["energy"] == sim.traffic.energy
        assert payload["transmissions"] == list(sim.traffic.transmissions)

    def test_run_traffic_covers_only_that_run(self):
        # Two consecutive run() calls on one engine: each SimResult's
        # traffic covers its own rounds; snapshot() covers everything.
        net = from_spec("line", 12, seed=0)
        engine = ArrayEngine(net, DecayArrayProtocol(), seed=0, params=FAST)
        first = engine.run(3)
        second = engine.run(3)
        total = engine.snapshot()
        assert first.rounds_run == second.rounds_run == 3
        for i in range(net.n):
            assert (
                first.traffic.awake_slots[i] + second.traffic.awake_slots[i]
                == total.traffic.awake_slots[i]
            )


class TestObservers:
    def test_observer_fires_once_per_round_and_matches_trace(self):
        seen: list[RoundStats] = []
        net = from_spec("grid", 25, seed=2)
        result = run_broadcast(
            "ghk", net, FAST, seed=2, trace=True, observers=[
                lambda i, stats: seen.append(stats)
            ],
        )
        assert len(seen) == result.sim.rounds_run
        # Identity, not equality: observers receive the very objects the
        # trace stores, because the trace is itself the first observer.
        assert all(a is b for a, b in zip(seen, result.sim.history))

    def test_observer_without_trace_streams_in_o1_memory(self):
        counts = {"rounds": 0}

        def observer(stats: RoundStats) -> None:
            counts["rounds"] += 1

        net = from_spec("line", 16, seed=1)
        engine = ArrayEngine(
            net, DecayArrayProtocol(), seed=1, params=FAST, observers=[observer]
        )
        result = engine.run(10)
        assert counts["rounds"] == result.rounds_run == 10
        assert result.history == ()  # no trace retained

    def test_engine_object_shell_accepts_observers(self):
        from repro.sim.protocol import Action, Protocol

        class Chatter(Protocol):
            def act(self, round_index):
                return Action.transmit("x")

            def on_feedback(self, round_index, feedback):
                pass

        seen = []
        net = from_spec("line", 4, seed=0)
        engine = Engine(
            net, [Chatter() for _ in range(4)], observers=[seen.append]
        )
        engine.step()
        engine.step()
        assert [s.round_index for s in seen] == [0, 1]

    def test_batch_observers_receive_item_index(self):
        nets = [from_spec("line", 10, seed=s) for s in range(3)]
        per_item: dict[int, int] = {}

        def observer(item: int, stats: RoundStats) -> None:
            per_item[item] = per_item.get(item, 0) + 1

        outcomes = run_broadcast_batch(
            "ghk", nets, seeds=range(3), params=FAST, observers=[observer]
        )
        assert set(per_item) == {0, 1, 2}
        for i, outcome in enumerate(outcomes):
            assert per_item[i] == outcome.sim.rounds_run

    def test_trace_observer_is_reusable_standalone(self):
        trace = TraceObserver()
        stats = RoundStats(round_index=0, transmitters=(1,), deliveries=(), collisions=())
        trace(stats)
        assert trace.history == [stats]

    def test_object_engine_rejects_observer_kwargs(self):
        net = from_spec("line", 8, seed=0)
        with pytest.raises(ConfigurationError, match="array-path"):
            run_broadcast("ghk", net, FAST, seed=0, engine="object", observers=[])
        with pytest.raises(ConfigurationError, match="array-path"):
            run_broadcast("ghk", net, FAST, seed=0, engine="object", telemetry={})


class TestTelemetry:
    def test_engine_telemetry_shape(self):
        net = from_spec("grid", 16, seed=4)
        engine = ArrayEngine(net, DecayArrayProtocol(), seed=4, params=FAST)
        result = engine.run(8)
        telemetry = engine.telemetry()
        assert isinstance(telemetry, RunTelemetry)
        assert telemetry.rounds == result.rounds_run
        assert telemetry.wall_seconds >= 0.0
        assert set(telemetry.phase_seconds) == {"act", "channel", "feedback"}
        assert all(v >= 0.0 for v in telemetry.phase_seconds.values())

    def test_telemetry_never_lives_on_sim_result(self):
        # Wall-clock must stay off SimResult: the equivalence suites
        # compare results with ==, and time is machine noise.
        sim = _array_result("line", 0).sim
        assert not hasattr(sim, "telemetry")
        assert not hasattr(sim, "wall_seconds")

    def test_rounds_per_sec_property(self):
        t = RunTelemetry(rounds=50, wall_seconds=2.0, phase_seconds={})
        assert t.rounds_per_sec == 25.0
        zero = RunTelemetry(rounds=0, wall_seconds=0.0, phase_seconds={})
        assert zero.rounds_per_sec is None

    def test_as_dict_shape(self):
        t = RunTelemetry(
            rounds=10, wall_seconds=0.5, phase_seconds={"act": 0.1}
        )
        payload = t.as_dict()
        assert payload["rounds"] == 10
        assert payload["rounds_per_sec"] == 20.0
        assert payload["wall_seconds"] == 0.5
        assert payload["phase_seconds"] == {"act": 0.1}

    def test_batch_telemetry_out_param(self):
        nets = [from_spec("line", 10, seed=s) for s in range(2)]
        telemetry: dict = {}
        outcomes = run_broadcast_batch(
            "ghk", nets, seeds=range(2), params=FAST, telemetry=telemetry
        )
        assert telemetry["rounds"] == sum(o.sim.rounds_run for o in outcomes)
        assert telemetry["wall_seconds"] >= 0.0
        assert set(telemetry["phase_seconds"]) == {"act", "channel", "feedback"}

    def test_batch_engine_telemetry_sums_members(self):
        nets = [from_spec("line", 10, seed=s) for s in range(2)]
        items = [
            BatchItem(
                network=net, protocol=DecayArrayProtocol(), budget=20, seed=s,
                params=FAST,
            )
            for s, net in enumerate(nets)
        ]
        batch = BatchEngine(items)
        batch.run()
        telemetry = batch.telemetry()
        assert telemetry.rounds == sum(e.round_index for e in batch.engines)
        assert set(telemetry.phase_seconds) == {"act", "channel", "feedback"}


class TestRoundStatsRow:
    def test_as_row_is_json_ready(self):
        stats = RoundStats(
            round_index=3, transmitters=(0, 2), deliveries=((1, 0),), collisions=(4,)
        )
        assert stats.as_row() == {
            "round": 3,
            "transmitters": [0, 2],
            "deliveries": [[1, 0]],
            "collisions": [4],
        }


def test_counter_dtype_never_overflows_quietly():
    # The counters are int64; freezing to Python ints keeps arithmetic
    # unbounded downstream.
    sim = _array_result("gnp", 9).sim
    assert all(isinstance(v, int) for v in sim.traffic.transmissions)
    assert not any(
        isinstance(v, np.integer) for v in sim.traffic.transmissions
    )
