"""Dense vs sparse channel backends: bitwise-identical runs.

The sparse CSR backend must reproduce the dense matmul backend *exactly* —
same informed sets, same round counts, same channel totals, same per-round
ground-truth traces — on every topology family and every protocol, because
backend selection is a speed/memory knob, never a semantics knob.  This is
the contract that lets ``auto`` pick per topology density without anyone
auditing the choice.
"""

import numpy as np
import pytest

from repro.params import ProtocolParams
from repro.sim import ArrayEngine, BatchEngine, BatchItem, DecayArrayProtocol
from repro.sim.core import (
    DenseOperand,
    SparseOperand,
    resolve_channel_backend,
    select_kernel_operand,
)
from repro.sim.runners import run_broadcast
from repro.sim.topology import from_spec, line, star

FAST = ProtocolParams.fast()
DENSE = FAST.with_overrides(channel_backend="dense")
SPARSE = FAST.with_overrides(channel_backend="sparse")

#: The full topology suite: diameter-bound, contention-bound, geometric,
#: bottleneck, and both random regimes.
FAMILIES = ("line", "ring", "star", "grid", "gnp", "dumbbell", "unit_disk")


def run_both(protocol, family, seed, **kwargs):
    net = from_spec(family, 24, seed=seed)
    dense = run_broadcast(protocol, net, DENSE, seed=seed, trace=True, **kwargs)
    sparse = run_broadcast(protocol, net, SPARSE, seed=seed, trace=True, **kwargs)
    return dense, sparse


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", (0, 3))
@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_broadcast_backends_are_bitwise_identical(family, seed, protocol):
    dense, sparse = run_both(protocol, family, seed)
    assert sparse.rounds_to_delivery == dense.rounds_to_delivery
    assert sparse.informed_rounds == dense.informed_rounds
    assert sparse.budget == dense.budget
    assert sparse.sim.history == dense.sim.history  # per-round ground truth
    assert sparse.sim == dense.sim  # channel totals and early-stop flag too
    assert sparse == dense  # the full result dataclasses match field-for-field


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("k", [1, 3])
def test_multimessage_backends_are_bitwise_identical(family, k):
    dense, sparse = run_both(
        "multimessage", family, seed=1, options={"k_messages": k}
    )
    assert sparse.rounds_to_delivery == dense.rounds_to_delivery
    assert sparse.informed_rounds == dense.informed_rounds
    assert sparse.message_rounds == dense.message_rounds
    assert sparse.sim.history == dense.sim.history
    assert sparse == dense


class TestBackendSelection:
    def test_explicit_backend_always_wins(self):
        net = from_spec("grid", 16, seed=0)
        assert resolve_channel_backend(net, DENSE) == "dense"
        assert resolve_channel_backend(net, SPARSE) == "sparse"

    def test_auto_uses_the_density_threshold(self):
        # Disable the size floor to isolate the density rule.
        auto = FAST.with_overrides(sparse_min_n=0)
        sparse_net = line(64)  # density ~2/n, far below any threshold
        dense_net = star(4)  # density 6/16 = 0.375, above the default 0.25
        assert resolve_channel_backend(sparse_net, auto) == "sparse"
        assert resolve_channel_backend(dense_net, auto) == "dense"
        # The threshold itself is a knob: widen it and the star flips.
        wide = auto.with_overrides(sparse_density_threshold=0.5)
        assert resolve_channel_backend(dense_net, wide) == "sparse"

    def test_auto_keeps_small_networks_dense(self):
        # Below the size floor the matmul wins even on very sparse graphs,
        # so auto stays dense regardless of density.
        assert resolve_channel_backend(line(64), FAST) == "dense"
        floor = FAST.with_overrides(sparse_min_n=64)
        assert resolve_channel_backend(line(64), floor) == "sparse"
        assert resolve_channel_backend(line(63), floor) == "dense"

    def test_select_builds_the_matching_operand(self):
        net = line(32)
        assert isinstance(select_kernel_operand(net, SPARSE), SparseOperand)
        assert isinstance(select_kernel_operand(net, DENSE), DenseOperand)

    def test_engine_exposes_its_backend(self):
        engine = ArrayEngine(line(16), DecayArrayProtocol(), params=SPARSE)
        assert engine.backend == "sparse"
        assert isinstance(engine.kernel_operand, SparseOperand)

    def test_sparse_engine_never_builds_the_dense_matrix(self):
        # The whole point of the CSR backend is staying free of n²
        # allocations; any adjacency_matrix() call would defeat it.
        net = line(32)
        net.adjacency_matrix = None  # any access would raise TypeError
        engine = ArrayEngine(net, DecayArrayProtocol(), params=SPARSE)
        engine.run(20)
        assert engine.backend == "sparse"


class TestBatchMixedBackends:
    def test_mixed_backend_items_do_not_share_an_operand(self):
        net = from_spec("grid", 16, seed=0)
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=200,
                seed=s,
                collision_detection=False,
                params=params,
            )
            for s, params in enumerate([DENSE, SPARSE, DENSE, SPARSE])
        ]
        engine = BatchEngine(items)
        backends = [e.backend for e in engine.engines]
        assert backends == ["dense", "sparse", "dense", "sparse"]
        # One shared operand per backend, not per item.
        assert len({id(e.kernel_operand) for e in engine.engines}) == 2

    def test_mixed_backend_batch_results_are_identical_per_seed(self):
        net = from_spec("grid", 16, seed=0)
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=200,
                seed=7,
                collision_detection=False,
                params=params,
            )
            for params in (DENSE, SPARSE)
        ]
        dense_out, sparse_out = BatchEngine(items).run()
        assert dense_out.completed == sparse_out.completed
        assert dense_out.sim == sparse_out.sim
        assert np.array_equal(
            dense_out.item.protocol.informed_round,
            sparse_out.item.protocol.informed_round,
        )
