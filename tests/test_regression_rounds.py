"""Regression pins: exact rounds-to-delivery for fixed (topology, seed) pairs.

These values are ground truth for the engine's channel semantics plus both
protocols' coin-consumption order.  Any engine or protocol refactor that
silently changes channel resolution, feedback ordering, or per-node stream
usage will move at least one of these numbers — if a change here is
intentional, update the pins and say why in the commit.
"""

import pytest

from repro.params import ProtocolParams
from repro.sim.decay import run_decay
from repro.sim.ghk_broadcast import run_ghk_broadcast
from repro.sim.topology import dumbbell, gnp, grid2d, line, ring

FAST = ProtocolParams.fast()

#: (network factory, seed, pinned Decay rounds, pinned GHK rounds)
PINS = [
    (lambda: line(33), 7, 187, 32),
    (lambda: ring(24), 1, 57, 18),
    (lambda: grid2d(6, 6), 3, 57, 19),
    (lambda: gnp(40, 0.12, seed=5), 5, 39, 11),
    (lambda: dumbbell(20, 3), 9, 31, 6),
]
IDS = ["line-33", "ring-24", "grid-6x6", "gnp-40", "dumbbell-20+3+20"]


@pytest.mark.parametrize("make_net,seed,decay_rounds,ghk_rounds", PINS, ids=IDS)
def test_decay_rounds_to_delivery_is_pinned(make_net, seed, decay_rounds, ghk_rounds):
    result = run_decay(make_net(), FAST, seed=seed)
    assert result.rounds_to_delivery == decay_rounds


@pytest.mark.parametrize("make_net,seed,decay_rounds,ghk_rounds", PINS, ids=IDS)
def test_ghk_rounds_to_delivery_is_pinned(make_net, seed, decay_rounds, ghk_rounds):
    result = run_ghk_broadcast(make_net(), FAST, seed=seed)
    assert result.rounds_to_delivery == ghk_rounds
