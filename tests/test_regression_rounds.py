"""Regression pins: exact rounds-to-delivery for fixed (topology, seed) pairs.

These values are ground truth for the engine's channel semantics plus both
protocols' coin-consumption order.  Any engine or protocol refactor that
silently changes channel resolution, feedback ordering, or per-node stream
usage will move at least one of these numbers — if a change here is
intentional, update the pins and say why in the commit.
"""

import pytest

from repro.params import ProtocolParams
from repro.sim.decay import run_decay
from repro.sim.ghk_broadcast import run_ghk_broadcast
from repro.sim.runners import run_broadcast
from repro.sim.topology import dumbbell, gnp, grid2d, line, ring, star

FAST = ProtocolParams.fast()

#: (network factory, seed, pinned Decay rounds, pinned GHK rounds)
#: The gnp pins were re-baselined when the generator switched to edge
#: sampling (same G(n, p) distribution, different per-seed graphs); the
#: deterministic and unit-disk families are byte-identical across that
#: change, so their pins still guard the engine/protocol semantics.
PINS = [
    (lambda: line(33), 7, 187, 32),
    (lambda: ring(24), 1, 57, 18),
    (lambda: grid2d(6, 6), 3, 57, 19),
    (lambda: gnp(40, 0.12, seed=5), 5, 37, 17),
    (lambda: dumbbell(20, 3), 9, 31, 6),
]
IDS = ["line-33", "ring-24", "grid-6x6", "gnp-40", "dumbbell-20+3+20"]


@pytest.mark.parametrize("make_net,seed,decay_rounds,ghk_rounds", PINS, ids=IDS)
def test_decay_rounds_to_delivery_is_pinned(make_net, seed, decay_rounds, ghk_rounds):
    result = run_decay(make_net(), FAST, seed=seed)
    assert result.rounds_to_delivery == decay_rounds


@pytest.mark.parametrize("make_net,seed,decay_rounds,ghk_rounds", PINS, ids=IDS)
def test_ghk_rounds_to_delivery_is_pinned(make_net, seed, decay_rounds, ghk_rounds):
    result = run_ghk_broadcast(make_net(), FAST, seed=seed)
    assert result.rounds_to_delivery == ghk_rounds


#: (protocol, options, pinned rounds-to-delivery, pinned informed rounds)
SOURCE_ZERO_PINS = [
    ("decay", None, 1, (0,) * 8),
    ("ghk", None, 1, (0,) * 8),
    ("multimessage", {"k_messages": 2}, 4, (0,) + (3,) * 7),
]


@pytest.mark.parametrize(
    "protocol,options,rounds,informed",
    SOURCE_ZERO_PINS,
    ids=[p[0] for p in SOURCE_ZERO_PINS],
)
@pytest.mark.parametrize("backend", ["dense", "sparse"])
def test_clean_delivery_from_node_id_zero_is_pinned(
    protocol, options, rounds, informed, backend
):
    # Source = node 0 on a star: every leaf's *only* clean receipt carries
    # sender id 0, the same value `ChannelRound.senders` uses as its
    # outside-the-clean-mask placeholder.  A consumer that read `senders`
    # without masking by `clean` (or treated "senders == 0" as "nothing
    # arrived") would mis-handle exactly this run, so pin it end-to-end
    # for every protocol on both channel backends.
    params = FAST.with_overrides(channel_backend=backend)
    net = star(8, source=0)
    result = run_broadcast(protocol, net, params, seed=4, options=options)
    assert result.rounds_to_delivery == rounds
    assert result.informed_rounds == informed
