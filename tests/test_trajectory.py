"""The trajectory report must follow a record across commits faithfully."""

import json
import subprocess

import pytest

from repro.errors import AnalysisError
from repro.experiments import trajectory
from repro.experiments.record import SCHEMA_VERSION, bench_record
from repro.experiments.trajectory import (
    build_trajectory,
    harvest_history,
    record_metrics,
)


class TestRecordMetrics:
    def test_engine_record(self):
        record = bench_record(
            "engine",
            results=[
                {
                    "protocol": "ghk",
                    "topology": "grid",
                    "n": 256,
                    "object": {"rounds_per_sec": 1500.0},
                    "array": {"rounds_per_sec": 7000.0},
                    "speedup_rounds_per_sec": 4.67,
                }
            ],
        )
        assert record_metrics(record) == {
            "ghk/grid/n=256/object_rounds_per_sec": 1500.0,
            "ghk/grid/n=256/array_rounds_per_sec": 7000.0,
            "ghk/grid/n=256/speedup": 4.67,
        }

    def test_scale_record_skips_skipped_cells(self):
        record = bench_record(
            "scale",
            results=[
                {
                    "topology": "line",
                    "n": 1024,
                    "backend": "sparse",
                    "rounds_per_sec": 8000.0,
                    "peak_mib": 1.5,
                    "speedup_vs_dense": 6.7,
                },
                {"topology": "line", "n": 16384, "backend": "dense", "skipped": "x"},
            ],
        )
        metrics = record_metrics(record)
        assert metrics["line/n=1024/sparse/rounds_per_sec"] == 8000.0
        assert metrics["line/n=1024/sparse/peak_mib"] == 1.5
        assert metrics["line/n=1024/sparse/speedup_vs_dense"] == 6.7
        assert not any("16384" in key for key in metrics)

    def test_broadcast_and_multimessage_records(self):
        broadcast = bench_record(
            "broadcast",
            results=[
                {
                    "topology": "grid",
                    "protocol": "ghk",
                    "n": 64,
                    "rounds": {"mean": 30.5},
                    "energy_mean": 900.0,
                    "speedup_vs_decay": 1.4,
                    "sweep_rounds_per_sec": 5000.0,
                }
            ],
        )
        metrics = record_metrics(broadcast)
        assert metrics["grid/ghk/n=64/rounds_mean"] == 30.5
        assert metrics["grid/ghk/n=64/energy_mean"] == 900.0
        assert metrics["grid/ghk/n=64/speedup_vs_decay"] == 1.4
        multi = bench_record(
            "multimessage",
            results=[
                {
                    "topology": "line",
                    "k_messages": 4,
                    "n": 64,
                    "rounds": {"mean": 120.0},
                    "pipelining_speedup": 2.1,
                }
            ],
        )
        metrics = record_metrics(multi)
        assert metrics["line/k=4/n=64/rounds_mean"] == 120.0
        assert metrics["line/k=4/n=64/pipelining_speedup"] == 2.1

    def test_unknown_bench_yields_no_metrics(self):
        assert record_metrics({"bench": "mystery", "results": [{"x": 1}]}) == {}


@pytest.fixture
def bench_repo(tmp_path):
    """A throwaway git repo with two committed versions of one record."""
    def git(*args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=tmp_path, check=True, capture_output=True,
        )

    git("init", "-q")
    path = tmp_path / "BENCH_engine.json"
    versions = []
    for rps in (5000.0, 7000.0):
        record = bench_record(
            "engine",
            results=[
                {
                    "protocol": "ghk",
                    "topology": "grid",
                    "n": 256,
                    "array": {"rounds_per_sec": rps},
                }
            ],
        )
        path.write_text(json.dumps(record) + "\n")
        git("add", "BENCH_engine.json")
        git("commit", "-q", "-m", f"record at {rps}")
        versions.append(rps)
    return tmp_path, path, versions


class TestHarvestHistory:
    def test_snapshots_are_oldest_first(self, bench_repo):
        repo, path, versions = bench_repo
        history = harvest_history(path, repo)
        assert len(history) == 2
        key = "ghk/grid/n=256/array_rounds_per_sec"
        assert [s["metrics"][key] for s in history] == versions
        assert all(s["commit"] for s in history)
        assert all(s["schema_version"] == SCHEMA_VERSION for s in history)

    def test_dirty_worktree_appends_snapshot(self, bench_repo):
        repo, path, _ = bench_repo
        record = json.loads(path.read_text())
        record["results"][0]["array"]["rounds_per_sec"] = 9000.0
        path.write_text(json.dumps(record) + "\n")
        history = harvest_history(path, repo)
        assert len(history) == 3
        assert history[-1]["commit"] is None
        key = "ghk/grid/n=256/array_rounds_per_sec"
        assert history[-1]["metrics"][key] == 9000.0

    def test_unparsable_committed_blob_is_skipped_not_fatal(self, bench_repo, tmp_path):
        repo, path, _ = bench_repo
        path.write_text("{broken")
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "add", "BENCH_engine.json"],
            cwd=repo, check=True, capture_output=True,
        )
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "-m", "corrupt"],
            cwd=repo, check=True, capture_output=True,
        )
        history = harvest_history(path, repo)
        assert "skipped" in history[-1]
        assert "metrics" in history[0]

    def test_record_outside_repo_root_is_an_error(self, bench_repo, tmp_path):
        repo, _, _ = bench_repo
        outside = tmp_path.parent / "elsewhere.json"
        with pytest.raises(AnalysisError, match="outside"):
            harvest_history(outside, repo)


class TestBuildTrajectory:
    def test_report_shape(self, bench_repo):
        repo, _, _ = bench_repo
        report = build_trajectory(("BENCH_engine.json",), repo)
        assert report["report"] == "trajectory"
        assert set(report["records"]) == {"BENCH_engine.json"}

    def test_missing_records_are_an_error(self, bench_repo):
        repo, _, _ = bench_repo
        with pytest.raises(AnalysisError, match="no history"):
            build_trajectory(("BENCH_nothing.json",), repo)
        with pytest.raises(AnalysisError, match="at least one"):
            build_trajectory((), repo)


class TestMain:
    def test_cli_prints_movers_and_writes_report(self, bench_repo, capsys):
        repo, _, _ = bench_repo
        out = repo / "TRAJECTORY.json"
        code = trajectory.main(
            [
                "--records", "BENCH_engine.json",
                "--repo-root", str(repo),
                "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "2 snapshot(s)" in printed
        assert "5000.0 -> 7000.0" in printed
        report = json.loads(out.read_text())
        assert len(report["records"]["BENCH_engine.json"]) == 2

    def test_cli_error_on_missing_record(self, tmp_path, capsys):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        code = trajectory.main(
            ["--records", "BENCH_none.json", "--repo-root", str(tmp_path)]
        )
        assert code == 2
        assert "trajectory error" in capsys.readouterr().err

    def test_against_this_repository(self):
        # The repo's own committed records must harvest cleanly.
        report = build_trajectory(repo_root=".")
        assert report["records"]
        for history in report["records"].values():
            assert any(s.get("metrics") for s in history)
