"""Tests for the array engines: ArrayEngine semantics and BatchEngine batching."""

import numpy as np
import pytest

from repro.errors import BroadcastFailure, ConfigurationError, SimulationError
from repro.params import ProtocolParams
from repro.sim import (
    ArrayEngine,
    BatchEngine,
    BatchItem,
    DecayArrayProtocol,
    RoundPlan,
    array_protocol_class,
    available_array_protocols,
    register_array_protocol,
    run_broadcast,
    run_broadcast_batch,
)
from repro.sim.core.array_protocol import ArrayProtocol, CoinDeck
from repro.sim.rng import SeededStreams
from repro.sim.topology import from_spec, line, star

FAST = ProtocolParams.fast()


class SourceBeacon(ArrayProtocol):
    """The source transmits every round; everyone else listens forever."""

    def setup(self, ctx):
        super().setup(ctx)
        self.n = ctx.n_nodes
        self.source = ctx.source
        self.heard = np.zeros(ctx.n_nodes, dtype=bool)

    def act(self, round_index):
        transmit = np.zeros(self.n, dtype=bool)
        transmit[self.source] = True
        listen = ~transmit
        return RoundPlan(transmit=transmit, listen=listen)

    def on_feedback(self, round_index, channel):
        self.heard |= channel.clean

    def done(self):
        return False


class TestArrayEngine:
    def test_rejects_n_bound_below_network_size(self):
        with pytest.raises(SimulationError, match="n_bound"):
            ArrayEngine(line(4), SourceBeacon(), n_bound=2)

    def test_round_zero_plan_validation(self):
        class Overlapping(SourceBeacon):
            def act(self, round_index):
                both = np.ones(self.n, dtype=bool)
                return RoundPlan(transmit=both, listen=both)

        engine = ArrayEngine(line(3), Overlapping())
        with pytest.raises(SimulationError, match="half-duplex"):
            engine.step()

    def test_fused_batch_overlap_error_names_the_items(self):
        # In a fused batch the kernel only sees stacked rows of the live
        # subset; the batch engine must append the row->item mapping so the
        # culprit is identifiable as the caller's item.
        class Overlapping(SourceBeacon):
            def act(self, round_index):
                both = np.ones(self.n, dtype=bool)
                return RoundPlan(transmit=both, listen=both)

        net = line(3)
        items = [
            BatchItem(network=net, protocol=proto, budget=5, seed=s, params=FAST)
            for s, proto in enumerate([SourceBeacon(), Overlapping()])
        ]
        with pytest.raises(
            SimulationError, match=r"batch row 1.*batch rows are items \[0, 1\]"
        ):
            BatchEngine(items).run()

    def test_rejects_non_plan_return(self):
        class Broken(SourceBeacon):
            def act(self, round_index):
                return "transmit"

        engine = ArrayEngine(line(3), Broken())
        with pytest.raises(SimulationError, match="expected a RoundPlan"):
            engine.step()

    def test_rejects_wrong_shape(self):
        class WrongShape(SourceBeacon):
            def act(self, round_index):
                return RoundPlan(
                    transmit=np.zeros(2, dtype=bool), listen=np.zeros(2, dtype=bool)
                )

        engine = ArrayEngine(line(3), WrongShape())
        with pytest.raises(SimulationError, match="shape"):
            engine.step()

    def test_run_semantics_match_object_engine(self):
        proto = SourceBeacon()
        engine = ArrayEngine(line(3), proto, trace=True)
        result = engine.run(5, stop_when=lambda eng: bool(proto.heard[1]))
        assert result.stopped_early
        assert result.rounds_run == 1
        assert result.total_deliveries == 1  # node 1 hears the source
        assert result.history[0].transmitters == (0,)

    def test_negative_max_rounds_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            ArrayEngine(line(3), SourceBeacon()).run(-1)

    def test_complete_round_requires_begin_round(self):
        engine = ArrayEngine(line(3), SourceBeacon())
        with pytest.raises(SimulationError, match="begin_round"):
            engine.complete_round(None)

    def test_totals_accumulate_without_trace(self):
        engine = ArrayEngine(star(4, source=0), SourceBeacon())
        assert engine.step() is None  # no per-round record unless tracing
        sim = engine.snapshot()
        assert sim.rounds_run == 1
        assert sim.total_transmissions == 1
        assert sim.total_deliveries == 3
        assert sim.history == ()


class TestBatchEngine:
    def test_early_exit_is_per_instance(self):
        # Same protocol, very different budgets: each instance retires on
        # its own schedule and the cheap one's totals stay untouched.
        nets = [line(8), line(8)]
        items = [
            BatchItem(
                network=nets[0],
                protocol=DecayArrayProtocol(),
                budget=1,
                seed=0,
                collision_detection=False,
                params=FAST,
            ),
            BatchItem(
                network=nets[1],
                protocol=DecayArrayProtocol(),
                budget=500,
                seed=0,
                collision_detection=False,
                params=FAST,
            ),
        ]
        outcomes = BatchEngine(items).run()
        assert not outcomes[0].completed
        assert outcomes[0].sim.rounds_run == 1
        assert outcomes[1].completed
        assert outcomes[1].sim.rounds_run > 1
        assert outcomes[1].sim.stopped_early

    def test_zero_budget_item_retires_without_stepping(self):
        item = BatchItem(
            network=line(4),
            protocol=DecayArrayProtocol(),
            budget=0,
            collision_detection=False,
            params=FAST,
        )
        (outcome,) = BatchEngine([item]).run()
        assert not outcome.completed
        assert outcome.sim.rounds_run == 0

    def test_already_done_item_costs_zero_rounds(self):
        item = BatchItem(
            network=line(1),
            protocol=DecayArrayProtocol(),
            budget=10,
            collision_detection=False,
            params=FAST,
        )
        (outcome,) = BatchEngine([item]).run()
        assert outcome.completed
        assert outcome.sim.rounds_run == 0
        assert outcome.sim.stopped_early

    def test_negative_budget_rejected(self):
        item = BatchItem(
            network=line(2), protocol=DecayArrayProtocol(), budget=-1, params=FAST
        )
        with pytest.raises(SimulationError, match="non-negative"):
            BatchEngine([item])

    def test_same_topology_instances_share_the_kernel_operand(self):
        nets = [from_spec("grid", 9, seed=s) for s in range(3)]  # identical graphs
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=50,
                seed=s,
                collision_detection=False,
                params=FAST,
            )
            for s, net in enumerate(nets)
        ]
        engine = BatchEngine(items)
        operands = {id(e.kernel_operand) for e in engine.engines}
        assert len(operands) == 1

    def test_grouping_uses_the_cached_adjacency_key(self):
        # BatchEngine must group by the network-cached key instead of
        # re-serializing the O(n^2) matrix (twice) for every item: with the
        # key warm, the matrix is touched exactly once — to build the one
        # shared kernel operand — no matter how many items share the graph.
        net = from_spec("grid", 9, seed=0)
        net.adjacency_key()  # warm the cache
        calls = {"matrix": 0}
        original = net.adjacency_matrix

        def counting_matrix():
            calls["matrix"] += 1
            return original()

        net.adjacency_matrix = counting_matrix
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=10,
                seed=s,
                collision_detection=False,
                params=FAST,
            )
            for s in range(5)
        ]
        BatchEngine(items)
        assert calls["matrix"] == 1

    def test_adjacency_mutation_raises_instead_of_corrupting_the_batch(self):
        # Regression: the cached adjacency used to be writable, so a caller
        # mutating it silently corrupted every later run and the grouping.
        net = line(4)
        with pytest.raises(ValueError, match="read-only"):
            net.adjacency_matrix()[0, 1] = 0  # simlint: disable=SL004

    def test_batching_does_not_change_results(self):
        # Mixed topologies and seeds in one batch vs the same runs alone.
        nets = [from_spec("grid", 16, seed=0), from_spec("line", 12, seed=1),
                from_spec("grid", 16, seed=2)]
        seeds = [0, 1, 2]
        batched = run_broadcast_batch("decay", nets, seeds=seeds, params=FAST)
        for net, seed, got in zip(nets, seeds, batched):
            alone = run_broadcast("decay", net, FAST, seed=seed)
            assert got == alone


class TestRunBroadcastAPI:
    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="one seed per network"):
            run_broadcast_batch("decay", [line(4)], seeds=[0, 1])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown broadcast protocol"):
            run_broadcast_batch("gossip", [line(4)])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_broadcast("decay", line(4), engine="quantum")

    def test_collision_blind_ghk_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="requires collision detection"):
            run_broadcast_batch("ghk", [line(4)], collision_detection=False)

    def test_failures_are_returned_not_raised(self):
        results = run_broadcast_batch(
            "decay", [line(16)], seeds=[0], params=FAST, budget=2, trace=True
        )
        assert isinstance(results[0], BroadcastFailure)
        assert results[0].undelivered  # carries the undelivered set
        # ... and the executed rounds, for post-mortem inspection
        assert results[0].sim.rounds_run == 2
        assert len(results[0].sim.history) == 2

    def test_single_run_raises_on_failure(self):
        with pytest.raises(BroadcastFailure, match="uninformed"):
            run_broadcast("decay", line(16), FAST, budget=2)


class TestPrepareBroadcastEngine:
    def test_requires_collision_detection_guard(self):
        from repro.sim.ghk_broadcast import GHK_SPEC
        from repro.sim.runners import prepare_broadcast_engine

        with pytest.raises(ConfigurationError, match="requires collision detection"):
            prepare_broadcast_engine(GHK_SPEC, line(4), FAST, collision_detection=False)

    def test_defaults_resolve_from_the_spec(self):
        from repro.sim.decay import DECAY_SPEC
        from repro.sim.runners import prepare_broadcast_engine

        prepared = prepare_broadcast_engine(DECAY_SPEC, line(4), FAST, seed=1)
        assert prepared.collision_detection is False  # Decay's default
        assert prepared.budget == FAST.decay_broadcast_rounds(3, 4)
        assert len(prepared.protocols) == 4
        assert prepared.engine.network.n == 4


class TestCoinDeck:
    def test_draws_match_per_node_streams(self):
        a = SeededStreams(9, 5)
        b = SeededStreams(9, 5)
        deck = CoinDeck(a, chunk=3)  # tiny chunk to force refills
        seen = {i: [] for i in range(5)}
        rng = np.random.default_rng(0)
        for _ in range(40):
            nodes = np.nonzero(rng.random(5) < 0.6)[0]
            coins = deck.draw(nodes)
            for node, coin in zip(nodes.tolist(), coins.tolist()):
                seen[node].append(coin)
        for node in range(5):
            expected = [b.nodes[node].random() for _ in range(len(seen[node]))]
            assert seen[node] == expected

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(ConfigurationError, match="chunk"):
            CoinDeck(SeededStreams(0, 2), chunk=0)


class TestArrayRegistry:
    def test_builtin_protocols_are_registered(self):
        assert {"decay", "beepwave", "ghk"} <= set(available_array_protocols())
        assert array_protocol_class("decay") is DecayArrayProtocol

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown array protocol"):
            array_protocol_class("no-such-protocol")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register_array_protocol("decay")(SourceBeacon)

    def test_non_protocol_registration_rejected(self):
        with pytest.raises(SimulationError, match="not an ArrayProtocol"):
            register_array_protocol("bogus")(dict)
