"""Tests for RadioNetwork and the topology generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.sim import topology
from repro.sim.topology import (
    RadioNetwork,
    dumbbell,
    from_spec,
    gnp,
    grid2d,
    line,
    ring,
    star,
    unit_disk,
)


def assert_valid(net: RadioNetwork):
    """Structural invariants every generator must satisfy."""
    mat = net.adjacency_matrix()
    assert mat.shape == (net.n, net.n)
    assert (mat == mat.T).all(), "adjacency must be symmetric"
    assert (np.diag(mat) == 0).all(), "no self-loops"
    assert sum(len(layer) for layer in net.bfs_layers()) == net.n, "connected"
    assert 0 <= net.source < net.n


class TestRadioNetwork:
    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            RadioNetwork([])

    def test_rejects_bad_source(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[1], [0]], source=5)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[0, 1], [0]])

    def test_rejects_asymmetric_edges(self):
        with pytest.raises(TopologyError, match="not symmetric"):
            RadioNetwork([[1], []])

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            RadioNetwork([[1], [0], [3], [2]])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[7], [0]])

    def test_single_node(self):
        net = RadioNetwork([[]])
        assert net.n == 1
        assert net.diameter() == 0
        assert net.bfs_layers() == ((0,),)

    def test_bfs_layers_and_distances(self):
        net = line(5)
        layers = net.bfs_layers()
        assert layers == ((0,), (1,), (2,), (3,), (4,))
        assert net.eccentricity() == 4
        assert net.bfs_layers(2) == ((2,), (1, 3), (0, 4))
        assert net.eccentricity(2) == 2

    def test_adjacency_matrix_is_read_only(self):
        # The cached matrix is handed out directly; a writable cache would
        # let one careless caller corrupt every later run and the batch
        # engine's topology grouping.
        net = line(5)
        mat = net.adjacency_matrix()
        with pytest.raises(ValueError, match="read-only"):
            mat[0, 1] = 0
        with pytest.raises(ValueError, match="read-only"):
            net.adjacency_matrix()[:] = 1
        # The cache itself is intact.
        assert net.adjacency_matrix()[0, 1] == 1
        assert net.adjacency_matrix()[0, 3] == 0

    def test_adjacency_key_matches_matrix_bytes_and_is_cached(self):
        net = line(5)
        assert net.adjacency_key() == net.adjacency_matrix().tobytes()
        assert net.adjacency_key() is net.adjacency_key()  # cached, not rebuilt

    def test_adjacency_key_distinguishes_topologies(self):
        assert line(5).adjacency_key() == line(5).adjacency_key()
        assert line(5).adjacency_key() != ring(5).adjacency_key()


class TestGenerators:
    @pytest.mark.parametrize(
        ("net", "n", "edges", "diameter"),
        [
            (line(10), 10, 9, 9),
            (ring(10), 10, 10, 5),
            (star(10), 10, 9, 2),
            (grid2d(4, 5), 20, 31, 7),
        ],
    )
    def test_deterministic_families(self, net, n, edges, diameter):
        assert_valid(net)
        assert net.n == n
        assert net.num_edges == edges
        assert net.diameter() == diameter

    def test_grid_truncated_to_n(self):
        net = grid2d(n=11)
        assert_valid(net)
        assert net.n == 11

    def test_grid_truncation_stays_connected_for_every_small_n(self):
        # Property sweep: row-major truncation must keep the grid connected
        # (and exactly n nodes) for every size, not just the perfect squares.
        for n in range(1, 65):
            net = grid2d(n=n)
            assert net.n == n, n
            assert sum(len(layer) for layer in net.bfs_layers()) == n, n

    @pytest.mark.parametrize("n", list(range(4, 21)) + [33, 34, 63, 64])
    def test_from_spec_dumbbell_has_exactly_n_nodes(self, n):
        # Property sweep over odd and even n: the bridge-length arithmetic
        # must land on exactly n nodes either way.
        net = from_spec("dumbbell", n)
        assert_valid(net)
        assert net.n == n

    def test_grid_rejects_ambiguous_or_missing_dims(self):
        with pytest.raises(TopologyError, match="not both"):
            grid2d(3, n=9)
        with pytest.raises(TopologyError, match="rows/cols or n"):
            grid2d()

    def test_dumbbell_structure(self):
        net = dumbbell(8, 4)
        assert_valid(net)
        assert net.n == 20
        # clique nodes see each other
        assert net.degree(0) == 7
        # far clique is beyond the bridge
        assert net.eccentricity(0) == 1 + 4 + 1 + 1

    def test_dumbbell_zero_bridge(self):
        net = dumbbell(3, 0)
        assert_valid(net)
        assert net.n == 6

    def test_gnp_connected_and_deterministic(self):
        a = gnp(50, 0.15, seed=3)
        b = gnp(50, 0.15, seed=3)
        assert_valid(a)
        assert a.num_edges == b.num_edges
        assert (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_gnp_seed_changes_graph(self):
        a = gnp(50, 0.15, seed=3)
        b = gnp(50, 0.15, seed=4)
        assert not (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_gnp_gives_up_when_hopeless(self):
        with pytest.raises(TopologyError, match="disconnected"):
            gnp(30, 0.0, seed=0, max_tries=3)

    def test_gnp_bad_source_fails_fast_not_as_disconnection(self):
        # An always-connected graph with an invalid source must report the
        # source problem, not burn retries and claim disconnection.
        with pytest.raises(TopologyError, match="source 999 out of range"):
            gnp(50, 0.9, source=999)

    def test_unit_disk_connected_and_deterministic(self):
        a = unit_disk(40, 0.35, seed=1)
        b = unit_disk(40, 0.35, seed=1)
        assert_valid(a)
        assert (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_unit_disk_gives_up_when_hopeless(self):
        with pytest.raises(TopologyError):
            unit_disk(30, 0.001, seed=0, max_tries=3)

    @pytest.mark.parametrize("bad_call", [
        lambda: line(0),
        lambda: ring(2),
        lambda: star(1),
        lambda: grid2d(0, 3),
        lambda: dumbbell(1),
        lambda: dumbbell(4, -1),
        lambda: gnp(10, 1.5),
        lambda: unit_disk(10, -0.1),
        lambda: gnp(10, 0.9, source=99),
        lambda: unit_disk(10, 0.9, source=-1),
    ])
    def test_invalid_arguments(self, bad_call):
        with pytest.raises(TopologyError):
            bad_call()


class TestFromSpec:
    @pytest.mark.parametrize("name", topology.TOPOLOGY_NAMES)
    def test_every_family_buildable(self, name):
        net = from_spec(name, 24, seed=0)
        assert_valid(net)
        assert net.n == 24

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            from_spec("torus", 16)
