"""Tests for RadioNetwork and the topology generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.sim import topology
from repro.sim.topology import (
    RadioNetwork,
    dumbbell,
    from_spec,
    gnp,
    grid2d,
    line,
    ring,
    star,
    unit_disk,
)


def assert_valid(net: RadioNetwork):
    """Structural invariants every generator must satisfy."""
    mat = net.adjacency_matrix()
    assert mat.shape == (net.n, net.n)
    assert (mat == mat.T).all(), "adjacency must be symmetric"
    assert (np.diag(mat) == 0).all(), "no self-loops"
    assert sum(len(layer) for layer in net.bfs_layers()) == net.n, "connected"
    assert 0 <= net.source < net.n


class TestRadioNetwork:
    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            RadioNetwork([])

    def test_rejects_bad_source(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[1], [0]], source=5)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[0, 1], [0]])

    def test_rejects_asymmetric_edges(self):
        with pytest.raises(TopologyError, match="not symmetric"):
            RadioNetwork([[1], []])

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            RadioNetwork([[1], [0], [3], [2]])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            RadioNetwork([[7], [0]])

    def test_single_node(self):
        net = RadioNetwork([[]])
        assert net.n == 1
        assert net.diameter() == 0
        assert net.bfs_layers() == ((0,),)

    def test_bfs_layers_and_distances(self):
        net = line(5)
        layers = net.bfs_layers()
        assert layers == ((0,), (1,), (2,), (3,), (4,))
        assert net.eccentricity() == 4
        assert net.bfs_layers(2) == ((2,), (1, 3), (0, 4))
        assert net.eccentricity(2) == 2

    def test_adjacency_matrix_is_read_only(self):
        # The cached matrix is handed out directly; a writable cache would
        # let one careless caller corrupt every later run and the batch
        # engine's topology grouping.
        net = line(5)
        mat = net.adjacency_matrix()
        with pytest.raises(ValueError, match="read-only"):
            mat[0, 1] = 0  # simlint: disable=SL004
        with pytest.raises(ValueError, match="read-only"):
            net.adjacency_matrix()[:] = 1  # simlint: disable=SL004
        # The cache itself is intact.
        assert net.adjacency_matrix()[0, 1] == 1
        assert net.adjacency_matrix()[0, 3] == 0

    def test_adjacency_key_is_csr_based_and_cached(self):
        net = line(5)
        indptr, indices = net.csr()
        expected = (
            np.int64(net.n).tobytes() + indptr.tobytes() + indices.tobytes()
        )
        assert net.adjacency_key() == expected
        assert net.adjacency_key() is net.adjacency_key()  # cached, not rebuilt

    def test_adjacency_key_never_builds_the_dense_matrix(self):
        # The key exists so the batch engine can group huge sparse graphs;
        # deriving it from the matrix would defeat the point at large n.
        net = line(6)
        net.adjacency_matrix = None  # any access would raise
        assert isinstance(net.adjacency_key(), bytes)

    def test_adjacency_key_distinguishes_topologies(self):
        assert line(5).adjacency_key() == line(5).adjacency_key()
        assert line(5).adjacency_key() != ring(5).adjacency_key()

    def test_csr_matches_the_dense_matrix(self):
        for net in (line(7), ring(6), star(5), grid2d(3, 4), dumbbell(3, 2)):
            indptr, indices = net.csr()
            assert indptr[0] == 0 and indptr[-1] == indices.size == 2 * net.num_edges
            mat = net.adjacency_matrix()
            for v in range(net.n):
                row = indices[indptr[v] : indptr[v + 1]]
                assert row.tolist() == sorted(np.nonzero(mat[v])[0].tolist())
                assert row.tolist() == list(net.neighbors(v))

    def test_csr_is_read_only_and_cached(self):
        net = line(5)
        indptr, indices = net.csr()
        with pytest.raises(ValueError, match="read-only"):
            indices[0] = 3  # simlint: disable=SL004
        with pytest.raises(ValueError, match="read-only"):
            indptr[0] = 1  # simlint: disable=SL004
        assert net.csr()[0] is indptr  # cached, not rebuilt

    def test_csr_single_node(self):
        indptr, indices = RadioNetwork([[]]).csr()
        assert indptr.tolist() == [0, 0]
        assert indices.size == 0


class TestFromEdges:
    def test_matches_the_neighbor_list_constructor(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        u, v = zip(*edges)
        by_edges = RadioNetwork.from_edges(4, u, v, name="x")
        by_lists = RadioNetwork([[1, 3, 2], [0, 2], [1, 3, 0], [2, 0]], name="x")
        assert by_edges.n == by_lists.n
        assert all(
            by_edges.neighbors(i) == by_lists.neighbors(i) for i in range(4)
        )
        assert by_edges.adjacency_key() == by_lists.adjacency_key()
        assert (by_edges.adjacency_matrix() == by_lists.adjacency_matrix()).all()

    def test_duplicate_and_reversed_edges_are_deduplicated(self):
        net = RadioNetwork.from_edges(3, [0, 1, 1, 2], [1, 0, 2, 1])
        assert net.num_edges == 2
        assert net.neighbors(1) == (0, 2)

    def test_rejects_bad_input(self):
        with pytest.raises(TopologyError, match="at least one node"):
            RadioNetwork.from_edges(0, [], [])
        with pytest.raises(TopologyError, match="matching length"):
            RadioNetwork.from_edges(3, [0, 1], [1])
        with pytest.raises(TopologyError, match="out of range"):
            RadioNetwork.from_edges(3, [0], [7])
        with pytest.raises(TopologyError, match="self-loop at node 1"):
            RadioNetwork.from_edges(3, [0, 1], [1, 1])
        with pytest.raises(TopologyError, match="disconnected"):
            RadioNetwork.from_edges(4, [0, 2], [1, 3])
        with pytest.raises(TopologyError, match="source"):
            RadioNetwork.from_edges(2, [0], [1], source=5)

    def test_no_edges_single_node_is_valid(self):
        net = RadioNetwork.from_edges(1, [], [])
        assert net.n == 1
        assert net.diameter() == 0


class TestGenerators:
    @pytest.mark.parametrize(
        ("net", "n", "edges", "diameter"),
        [
            (line(10), 10, 9, 9),
            (ring(10), 10, 10, 5),
            (star(10), 10, 9, 2),
            (grid2d(4, 5), 20, 31, 7),
        ],
    )
    def test_deterministic_families(self, net, n, edges, diameter):
        assert_valid(net)
        assert net.n == n
        assert net.num_edges == edges
        assert net.diameter() == diameter

    def test_grid_truncated_to_n(self):
        net = grid2d(n=11)
        assert_valid(net)
        assert net.n == 11

    def test_grid_truncation_stays_connected_for_every_small_n(self):
        # Property sweep: row-major truncation must keep the grid connected
        # (and exactly n nodes) for every size, not just the perfect squares.
        for n in range(1, 65):
            net = grid2d(n=n)
            assert net.n == n, n
            assert sum(len(layer) for layer in net.bfs_layers()) == n, n

    @pytest.mark.parametrize("n", list(range(4, 21)) + [33, 34, 63, 64])
    def test_from_spec_dumbbell_has_exactly_n_nodes(self, n):
        # Property sweep over odd and even n from the n=4 boundary up: the
        # bridge-length arithmetic must land on exactly n nodes either way.
        net = from_spec("dumbbell", n)
        assert_valid(net)
        assert net.n == n

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_from_spec_dumbbell_small_n_structure(self, n):
        # The bridge = min(4, n-4) / clique = (n-bridge)//2 interplay at the
        # boundary: two 2-cliques plus an (n-4)-node bridge, connected,
        # exactly n nodes, and the cliques really are cliques.
        net = from_spec("dumbbell", n)
        assert_valid(net)
        assert net.n == n
        assert 1 in net.neighbors(0)
        # Far corner is clique-hop + bridge + clique-hop away.
        assert net.eccentricity(0) == (n - 4) + 3

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_from_spec_dumbbell_below_four_is_a_clear_error(self, n):
        # Below n=4 there is no room for two 2-cliques; the spec must say
        # so instead of emitting a wrong-sized or disconnected graph.
        with pytest.raises(TopologyError, match="dumbbell needs n >= 4"):
            from_spec("dumbbell", n)

    def test_grid_rejects_ambiguous_or_missing_dims(self):
        with pytest.raises(TopologyError, match="not both"):
            grid2d(3, n=9)
        with pytest.raises(TopologyError, match="rows/cols or n"):
            grid2d()

    def test_dumbbell_structure(self):
        net = dumbbell(8, 4)
        assert_valid(net)
        assert net.n == 20
        # clique nodes see each other
        assert net.degree(0) == 7
        # far clique is beyond the bridge
        assert net.eccentricity(0) == 1 + 4 + 1 + 1

    def test_dumbbell_zero_bridge(self):
        net = dumbbell(3, 0)
        assert_valid(net)
        assert net.n == 6

    def test_gnp_connected_and_deterministic(self):
        a = gnp(50, 0.15, seed=3)
        b = gnp(50, 0.15, seed=3)
        assert_valid(a)
        assert a.num_edges == b.num_edges
        assert (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_gnp_seed_changes_graph(self):
        a = gnp(50, 0.15, seed=3)
        b = gnp(50, 0.15, seed=4)
        assert not (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_gnp_gives_up_when_hopeless(self):
        with pytest.raises(TopologyError, match="disconnected"):
            gnp(30, 0.0, seed=0, max_tries=3)

    def test_gnp_bad_source_fails_fast_not_as_disconnection(self):
        # An always-connected graph with an invalid source must report the
        # source problem, not burn retries and claim disconnection.
        with pytest.raises(TopologyError, match="source 999 out of range"):
            gnp(50, 0.9, source=999)

    def test_unit_disk_connected_and_deterministic(self):
        a = unit_disk(40, 0.35, seed=1)
        b = unit_disk(40, 0.35, seed=1)
        assert_valid(a)
        assert (a.adjacency_matrix() == b.adjacency_matrix()).all()

    def test_unit_disk_gives_up_when_hopeless(self):
        with pytest.raises(TopologyError):
            unit_disk(30, 0.001, seed=0, max_tries=3)

    @pytest.mark.parametrize(
        ("n", "radius", "seed"),
        [(40, 0.35, 1), (60, 0.25, 3), (7, 1.5, 0), (25, 0.3, 2), (30, 0.28, 7)],
    )
    def test_unit_disk_cell_binning_matches_all_pairs_reference(self, n, radius, seed):
        # The cell-binned generator must keep the exact seeds-to-graph map
        # of the all-pairs version it replaced: same point stream, same
        # retry loop, same float comparison — so reimplement that version
        # here (including retries) and compare adjacency byte-for-byte.
        from repro.sim.rng import stream

        def all_pairs_reference():
            for attempt in range(50):
                rng = stream(seed, 2, attempt)
                pts = rng.random((n, 2))
                delta = pts[:, None, :] - pts[None, :, :]
                close = (delta**2).sum(axis=2) <= radius * radius
                np.fill_diagonal(close, False)
                nbrs = [np.nonzero(close[u])[0].tolist() for u in range(n)]
                try:
                    return RadioNetwork(nbrs, name="ref")
                except TopologyError:
                    continue
            raise AssertionError("reference never connected")

        net = unit_disk(n, radius, seed=seed)
        ref = all_pairs_reference()
        assert (net.adjacency_matrix() == ref.adjacency_matrix()).all()

    def test_gnp_edge_count_tracks_the_expectation(self):
        # Edge sampling must still *be* G(n, p): the binomial edge count
        # concentrates around p·C(n,2) (wide tolerance, deterministic seed).
        n, p = 200, 0.1
        expected = p * n * (n - 1) / 2
        counts = [gnp(n, p, seed=s).num_edges for s in range(5)]
        for count in counts:
            assert 0.8 * expected < count < 1.2 * expected
        assert len(set(counts)) > 1  # seeds actually vary the graph

    def test_gnp_p_one_is_the_complete_graph(self):
        net = gnp(12, 1.0, seed=0)
        assert net.num_edges == 12 * 11 // 2

    def test_gnp_dense_p_stays_fast_via_complement_sampling(self):
        # Rejection sampling alone hits the coupon-collector tail as p -> 1
        # (minutes at n=1000, p=0.99); the complement branch keeps dense
        # requests O(pairs).  Generous wall-clock bound so CI noise never
        # flakes it, but the pre-fix behaviour exceeded it by orders of
        # magnitude.
        import time

        pairs = 300 * 299 // 2
        start = time.perf_counter()
        net = gnp(300, 0.97, seed=0)
        assert time.perf_counter() - start < 5.0
        assert 0.95 * pairs < net.num_edges <= pairs

    @pytest.mark.parametrize("bad_call", [
        lambda: line(0),
        lambda: ring(2),
        lambda: star(1),
        lambda: grid2d(0, 3),
        lambda: dumbbell(1),
        lambda: dumbbell(4, -1),
        lambda: gnp(10, 1.5),
        lambda: unit_disk(10, -0.1),
        lambda: gnp(10, 0.9, source=99),
        lambda: unit_disk(10, 0.9, source=-1),
    ])
    def test_invalid_arguments(self, bad_call):
        with pytest.raises(TopologyError):
            bad_call()


class TestFromSpec:
    @pytest.mark.parametrize("name", topology.TOPOLOGY_NAMES)
    def test_every_family_buildable(self, name):
        net = from_spec(name, 24, seed=0)
        assert_valid(net)
        assert net.n == 24

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            from_spec("torus", 16)
