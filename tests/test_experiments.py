"""Tests for the sweep harnesses and their bench records."""

import json
from typing import ClassVar

import pytest

from repro.errors import AnalysisError
from repro.experiments import (
    DEFAULT_K_VALUES,
    DEFAULT_TOPOLOGIES,
    bench_engines,
    bench_kernel,
    bench_scale,
    merge_records,
    sweep_broadcast,
    sweep_multimessage,
    write_bench,
)
from repro.experiments.broadcast_bench import main
from repro.experiments.record import SCHEMA_VERSION
from repro.experiments.engine_bench import main as engine_main
from repro.experiments.multimessage_bench import main as multimessage_main
from repro.experiments.kernel_bench import main as kernel_main
from repro.experiments.scale_bench import main as scale_main


class TestSweep:
    @pytest.fixture(scope="class")
    def record(self):
        return sweep_broadcast(
            topologies=("line", "gnp"), n=16, seeds=3, preset="fast"
        )

    def test_record_header(self, record):
        assert record["bench"] == "broadcast"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["n"] == 16
        assert record["seeds"] == 3
        assert record["topologies"] == ["line", "gnp"]
        assert record["protocols"] == ["decay", "ghk"]
        assert "created_utc" in record

    def test_entries_carry_traffic_and_sweep_telemetry(self, record):
        for entry in record["results"]:
            assert entry["sweep_seconds"] >= 0.0
            if "rounds" in entry:
                assert entry["energy_mean"] > 0
                assert entry["collisions_mean"] >= 0

    def test_one_entry_per_family_protocol_pair(self, record):
        keys = {(e["topology"], e["protocol"]) for e in record["results"]}
        assert keys == {(t, p) for t in ("line", "gnp") for p in ("decay", "ghk")}

    def test_entries_aggregate_the_full_batch(self, record):
        for entry in record["results"]:
            assert entry["runs"] == 3
            assert entry["failures"] == 0
            rounds = entry["rounds"]
            assert rounds["min"] <= rounds["median"] <= rounds["max"]
            assert len(entry["rounds_all"]) == 3
            assert entry["transmissions_mean"] > 0

    def test_ghk_entries_carry_speedup(self, record):
        ghk = [e for e in record["results"] if e["protocol"] == "ghk"]
        assert all("speedup_vs_decay" in e for e in ghk)
        line_entry = next(e for e in ghk if e["topology"] == "line")
        assert line_entry["speedup_vs_decay"] > 1

    def test_default_topology_suite_is_the_issue_suite(self):
        assert DEFAULT_TOPOLOGIES == (
            "line",
            "ring",
            "grid",
            "gnp",
            "dumbbell",
            "unit_disk",
        )


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(AnalysisError, match="at least one node"):
            sweep_broadcast(n=0)
        with pytest.raises(AnalysisError, match="at least one seed"):
            sweep_broadcast(seeds=0)

    def test_rejects_unknown_names(self):
        with pytest.raises(AnalysisError, match="unknown topologies"):
            sweep_broadcast(topologies=("moebius",))
        with pytest.raises(AnalysisError, match="unknown protocols"):
            sweep_broadcast(protocols=("gossip",))
        with pytest.raises(AnalysisError, match="unknown preset"):
            sweep_broadcast(preset="slow")

    def test_rejects_unbuildable_family_size(self):
        with pytest.raises(AnalysisError, match="cannot build"):
            sweep_broadcast(topologies=("ring",), n=2, seeds=1)


class TestCLI:
    def test_writes_valid_json_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_broadcast.json"
        rc = main(
            ["--n", "12", "--seeds", "2", "--topologies", "line", "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "broadcast"
        assert len(record["results"]) == 2
        stdout = capsys.readouterr().out
        assert "speedup-vs-decay" in stdout
        assert str(out) in stdout

    def test_reports_sweep_errors(self, tmp_path, capsys):
        rc = main(["--n", "0", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "sweep error" in capsys.readouterr().err

    def test_write_bench_roundtrip(self, tmp_path):
        path = write_bench({"bench": "broadcast", "results": []}, tmp_path / "b.json")
        assert json.loads(path.read_text()) == {"bench": "broadcast", "results": []}

    def test_multi_size_sweep_merges_into_one_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_broadcast.json"
        rc = main(
            ["--n", "12", "16", "--seeds", "2", "--topologies", "line", "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["n"] == [12, 16]
        assert [e["n"] for e in record["results"]] == [12, 12, 16, 16]
        stdout = capsys.readouterr().out
        assert "n=12" in stdout and "n=16" in stdout


class TestMergeRecords:
    def test_single_record_keeps_scalar_n(self):
        record = {"n": 8, "results": [{"n": 8}]}
        assert merge_records([record])["n"] == 8

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError, match="at least one"):
            merge_records([])

    HEADER: ClassVar[dict] = {
        "bench": "broadcast",
        "paper": "conf_podc_GhaffariHK13",
        "preset": "fast",
        "seeds": 2,
        "protocols": ["decay", "ghk"],
        "topologies": ["line"],
    }

    def test_merges_records_with_matching_headers(self):
        a = dict(self.HEADER, n=8, results=[{"n": 8}])
        b = dict(self.HEADER, n=16, results=[{"n": 16}])
        merged = merge_records([a, b])
        assert merged["n"] == [8, 16]
        assert merged["preset"] == "fast"
        assert [entry["n"] for entry in merged["results"]] == [8, 16]

    @pytest.mark.parametrize(
        ("key", "other"),
        [
            ("preset", "paper"),
            ("seeds", 30),
            ("protocols", ["decay"]),
            ("topologies", ["line", "grid"]),
        ],
    )
    def test_mismatched_headers_rejected(self, key, other):
        # Regression: the merged record used to take the first record's
        # header even when sub-records disagreed, silently misdescribing
        # the merged data.
        a = dict(self.HEADER, n=8, results=[])
        b = dict(self.HEADER, n=16, results=[], **{key: other})
        with pytest.raises(AnalysisError, match=f"mismatched {key!r}"):
            merge_records([a, b])

    def test_mismatch_detected_beyond_the_first_pair(self):
        a = dict(self.HEADER, n=8, results=[])
        b = dict(self.HEADER, n=16, results=[])
        c = dict(self.HEADER, n=32, results=[], preset="paper")
        with pytest.raises(AnalysisError, match="record 2"):
            merge_records([a, b, c])

    def test_missing_header_key_counts_as_mismatch(self):
        a = dict(self.HEADER, n=8, results=[])
        b = dict(self.HEADER, n=16, results=[])
        del b["preset"]
        with pytest.raises(AnalysisError, match="mismatched 'preset'"):
            merge_records([a, b])


class TestEngineBench:
    @pytest.fixture(scope="class")
    def record(self):
        return bench_engines(n=16, seeds=2, topology="line", preset="fast")

    def test_record_header(self, record):
        assert record["bench"] == "engine"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["topology"] == "line"
        assert record["protocols"] == ["decay", "ghk"]

    def test_paths_execute_identical_rounds(self, record):
        for entry in record["results"]:
            assert "paths_diverged" not in entry
            assert entry["object"]["rounds"] == entry["array"]["rounds"]
            assert entry["object"]["completed"] == entry["array"]["completed"]
            assert entry["object"]["rounds"] > 0
            assert entry["speedup_rounds_per_sec"] > 0

    def test_array_entries_carry_phase_timers(self, record):
        for entry in record["results"]:
            phases = entry["array"]["phase_seconds"]
            assert set(phases) == {"act", "channel", "feedback"}
            assert all(v >= 0.0 for v in phases.values())

    def test_validation(self):
        with pytest.raises(AnalysisError, match="at least one node"):
            bench_engines(n=0)
        with pytest.raises(AnalysisError, match="at least one seed"):
            bench_engines(seeds=0)
        with pytest.raises(AnalysisError, match="unknown topology"):
            bench_engines(topology="moebius")
        with pytest.raises(AnalysisError, match="unknown protocols"):
            bench_engines(protocols=("gossip",))
        with pytest.raises(AnalysisError, match="unknown preset"):
            bench_engines(preset="slow")
        with pytest.raises(AnalysisError, match="cannot build"):
            bench_engines(n=2, topology="ring")

    def test_cli_writes_record_and_smoke_ceiling_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        rc = engine_main(
            [
                "--n", "12", "--seeds", "2", "--topology", "line",
                "--protocols", "decay", "--out", str(out), "--max-seconds", "120",
            ]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["results"][0]["protocol"] == "decay"
        stdout = capsys.readouterr().out
        assert "smoke OK" in stdout
        assert str(out) in stdout

    def test_cli_smoke_ceiling_failure(self, tmp_path, capsys):
        rc = engine_main(
            [
                "--n", "12", "--seeds", "2", "--topology", "line",
                "--protocols", "decay", "--out", str(tmp_path / "b.json"),
                "--max-seconds", "0",
            ]
        )
        assert rc == 1
        assert "SMOKE FAIL" in capsys.readouterr().err

    def test_cli_reports_bench_errors(self, tmp_path, capsys):
        rc = engine_main(["--n", "0", "--out", str(tmp_path / "b.json")])
        assert rc == 2
        assert "bench error" in capsys.readouterr().err


class TestMultiMessageBench:
    @pytest.fixture(scope="class")
    def record(self):
        return sweep_multimessage(
            topologies=("line", "grid"), k_values=(1, 2), n=16, seeds=3, preset="fast"
        )

    def test_record_header(self, record):
        assert record["bench"] == "multimessage"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["n"] == 16
        assert record["seeds"] == 3
        assert record["k_values"] == [1, 2]
        assert record["protocols"] == ["multimessage"]
        assert record["topologies"] == ["line", "grid"]
        assert "created_utc" in record

    def test_one_entry_per_family_k_pair(self, record):
        keys = {(e["topology"], e["k_messages"]) for e in record["results"]}
        assert keys == {(t, k) for t in ("line", "grid") for k in (1, 2)}

    def test_entries_aggregate_the_full_batch(self, record):
        for entry in record["results"]:
            assert entry["protocol"] == "multimessage"
            assert entry["runs"] == 3
            assert entry["failures"] == 0
            rounds = entry["rounds"]
            assert rounds["min"] <= rounds["median"] <= rounds["max"]
            assert len(entry["rounds_all"]) == 3
            assert entry["transmissions_mean"] > 0

    def test_k_above_one_entries_carry_pipelining_speedup(self, record):
        for entry in record["results"]:
            if entry["k_messages"] == 1:
                assert "pipelining_speedup" not in entry
            else:
                assert entry["pipelining_speedup"] > 0

    def test_default_axes(self):
        assert DEFAULT_K_VALUES == (1, 4, 16)

    def test_validation(self):
        with pytest.raises(AnalysisError, match="at least one node"):
            sweep_multimessage(n=0)
        with pytest.raises(AnalysisError, match="at least one seed"):
            sweep_multimessage(seeds=0)
        with pytest.raises(AnalysisError, match="at least one k"):
            sweep_multimessage(k_values=())
        with pytest.raises(AnalysisError, match="positive integers"):
            sweep_multimessage(k_values=(1, 0))
        with pytest.raises(AnalysisError, match="unknown topologies"):
            sweep_multimessage(topologies=("moebius",))
        with pytest.raises(AnalysisError, match="unknown preset"):
            sweep_multimessage(preset="slow")
        with pytest.raises(AnalysisError, match="cannot build"):
            sweep_multimessage(topologies=("ring",), n=2, seeds=1)

    def test_cli_writes_valid_json_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_multimessage.json"
        rc = multimessage_main(
            ["--n", "12", "--seeds", "2", "--k", "1", "2", "--topologies", "line",
             "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "multimessage"
        assert len(record["results"]) == 2
        stdout = capsys.readouterr().out
        assert "pipelining-speedup" in stdout
        assert str(out) in stdout

    def test_cli_multi_size_merges(self, tmp_path, capsys):
        out = tmp_path / "BENCH_multimessage.json"
        rc = multimessage_main(
            ["--n", "12", "16", "--seeds", "2", "--k", "1", "--topologies", "line",
             "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["n"] == [12, 16]
        assert [e["n"] for e in record["results"]] == [12, 16]

    def test_cli_reports_sweep_errors(self, tmp_path, capsys):
        rc = multimessage_main(["--n", "0", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "sweep error" in capsys.readouterr().err

    def test_pipelining_speedup_is_k_order_independent(self):
        # Regression: the baseline used to be picked up only if k=1 was
        # processed first, so a reordered --k axis silently dropped the
        # record's headline metric.
        record = sweep_multimessage(
            topologies=("line",), k_values=(2, 1), n=12, seeds=2, preset="fast"
        )
        by_k = {entry["k_messages"]: entry for entry in record["results"]}
        assert "pipelining_speedup" in by_k[2]
        assert "pipelining_speedup" not in by_k[1]


class TestScaleBench:
    @pytest.fixture(scope="class")
    def record(self):
        return bench_scale(
            sizes=(16, 32), topologies=("line", "grid"), seeds=2, preset="fast"
        )

    def test_record_header(self, record):
        assert record["bench"] == "scale"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["sizes"] == [16, 32]
        assert record["backends"] == ["dense", "sparse"]
        assert record["protocol"] == "ghk"

    def test_one_entry_per_family_size_backend(self, record):
        keys = {(e["topology"], e["n"], e["backend"]) for e in record["results"]}
        assert len(keys) == len(record["results"]) == 2 * 2 * 2

    def test_executed_cells_report_throughput_and_memory(self, record):
        for entry in record["results"]:
            assert "skipped" not in entry  # nothing hits ceilings this small
            assert entry["rounds"] > 0
            assert entry["rounds_per_sec"] > 0
            assert entry["peak_mib"] > 0
            assert entry["completed"] == entry["runs"] == 2

    def test_sparse_entries_certify_equivalence_with_dense(self, record):
        sparse = [e for e in record["results"] if e["backend"] == "sparse"]
        assert sparse
        for entry in sparse:
            assert entry["results_match_dense"] is True
            assert "speedup_vs_dense" in entry
            assert "memory_ratio_vs_dense" in entry

    def test_memory_ceiling_skips_dense_cells(self):
        record = bench_scale(
            sizes=(24,),
            topologies=("line",),
            seeds=1,
            max_dense_bytes=0,  # every dense cell exceeds a zero ceiling
        )
        by_backend = {e["backend"]: e for e in record["results"]}
        assert "skipped" in by_backend["dense"]
        assert "MiB ceiling" in by_backend["dense"]["skipped"]
        # The sparse cell still runs — that is the whole point.
        assert by_backend["sparse"]["rounds"] > 0
        assert "results_match_dense" not in by_backend["sparse"]

    def test_bitpacked_entries_certify_equivalence_with_dense(self):
        record = bench_scale(
            sizes=(24,),
            topologies=("grid",),
            seeds=1,
            backends=("dense", "sparse", "bitpacked"),
        )
        by_backend = {e["backend"]: e for e in record["results"]}
        assert by_backend["bitpacked"]["results_match_dense"] is True
        assert "speedup_vs_dense" in by_backend["bitpacked"]
        assert "memory_ratio_vs_dense" in by_backend["bitpacked"]

    def test_memory_ceiling_also_skips_bitpacked_cells(self):
        record = bench_scale(
            sizes=(24,),
            topologies=("line",),
            seeds=1,
            backends=("sparse", "bitpacked"),
            max_dense_bytes=0,  # packed operand also exceeds a zero ceiling
        )
        by_backend = {e["backend"]: e for e in record["results"]}
        assert "MiB ceiling" in by_backend["bitpacked"]["skipped"]
        assert by_backend["sparse"]["rounds"] > 0

    def test_time_ceiling_skips_larger_sizes(self):
        record = bench_scale(
            sizes=(16, 32),
            topologies=("line",),
            seeds=1,
            backends=("sparse",),
            max_cell_seconds=0.0,  # everything exceeds a zero ceiling
        )
        small, large = record["results"]
        assert small["n"] == 16 and "rounds" in small
        assert large["n"] == 32 and "cell ceiling at n=16" in large["skipped"]

    def test_validation(self):
        with pytest.raises(AnalysisError, match="sizes"):
            bench_scale(sizes=(0,))
        with pytest.raises(AnalysisError, match="seed"):
            bench_scale(sizes=(8,), seeds=0)
        with pytest.raises(AnalysisError, match="topologies"):
            bench_scale(sizes=(8,), topologies=("torus",))
        with pytest.raises(AnalysisError, match="backends"):
            bench_scale(sizes=(8,), backends=("csr",))
        with pytest.raises(AnalysisError, match="protocol"):
            bench_scale(sizes=(8,), protocol="gossip")
        with pytest.raises(AnalysisError, match="preset"):
            bench_scale(sizes=(8,), preset="slow")
        with pytest.raises(AnalysisError, match="cannot build"):
            bench_scale(sizes=(2,), topologies=("ring",))

    def test_cli_writes_record_and_smoke_ceiling_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scale.json"
        rc = scale_main(
            [
                "--n", "16",
                "--topologies", "line",
                "--seeds", "1",
                "--max-seconds", "120",
                "--out", str(out),
            ]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "scale"
        stdout = capsys.readouterr().out
        assert "smoke OK" in stdout
        assert "speedup-vs-dense" in stdout

    def test_cli_smoke_ceiling_failure(self, tmp_path, capsys):
        rc = scale_main(
            [
                "--n", "16",
                "--topologies", "line",
                "--seeds", "1",
                "--max-seconds", "0",
                "--out", str(tmp_path / "x.json"),
            ]
        )
        assert rc == 1
        assert "SMOKE FAIL" in capsys.readouterr().err

    def test_cli_reports_bench_errors(self, tmp_path, capsys):
        rc = scale_main(["--n", "0", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "bench error" in capsys.readouterr().err


class TestKernelBench:
    @pytest.fixture(scope="class")
    def record(self):
        return bench_kernel(sizes=(64, 128), topology="gnp", repeats=2, seed=3)

    def test_record_header(self, record):
        assert record["bench"] == "kernel"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["sizes"] == [64, 128]
        assert record["backends"] == ["dense", "sparse", "bitpacked"]
        assert record["tx_fraction"] > 0

    def test_one_entry_per_size_backend(self, record):
        keys = {(e["n"], e["backend"]) for e in record["results"]}
        assert len(keys) == len(record["results"]) == 2 * 3

    def test_executed_cells_report_both_reductions(self, record):
        for entry in record["results"]:
            assert "skipped" not in entry  # nothing hits ceilings this small
            assert entry["counts_seconds"] > 0
            assert entry["senders_seconds"] > 0
            assert entry["counts_per_sec"] > 0
            assert entry["operand_mib"] >= 0
            assert entry["clean_listeners"] >= 0

    def test_non_dense_cells_certify_counts_against_dense(self, record):
        others = [e for e in record["results"] if e["backend"] != "dense"]
        assert others
        for entry in others:
            assert entry["counts_match_dense"] is True
            assert "counts_speedup_vs_dense" in entry

    def test_bitpacked_operand_is_64x_denser_than_dense(self, record):
        bit = [e for e in record["results"] if e["backend"] == "bitpacked"]
        # n=64 and n=128 are word-aligned, so the ratio is exactly 64.
        assert [e["operand_ratio_vs_dense"] for e in bit] == [64.0, 64.0]

    def test_operand_ceiling_skips_dense_but_not_bitpacked(self):
        # 8·64² = 32 KiB dense vs 8·64·1 = 512 B packed: a 1 KiB ceiling
        # separates them — the density win the record exists to show.
        record = bench_kernel(
            sizes=(64,), repeats=1, max_operand_bytes=1 << 10
        )
        by_backend = {e["backend"]: e for e in record["results"]}
        assert "MiB ceiling" in by_backend["dense"]["skipped"]
        assert "counts_seconds" in by_backend["bitpacked"]
        # No dense baseline ran, so there is nothing to certify against.
        assert "counts_match_dense" not in by_backend["bitpacked"]

    def test_validation(self):
        with pytest.raises(AnalysisError, match="sizes"):
            bench_kernel(sizes=(0,))
        with pytest.raises(AnalysisError, match="repeat"):
            bench_kernel(sizes=(16,), repeats=0)
        with pytest.raises(AnalysisError, match="topology"):
            bench_kernel(sizes=(16,), topology="torus")
        with pytest.raises(AnalysisError, match="backends"):
            bench_kernel(sizes=(16,), backends=("csr",))
        with pytest.raises(AnalysisError, match="cannot build"):
            bench_kernel(sizes=(2,), topology="ring")

    def test_cli_writes_record_and_smoke_ceiling_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        rc = kernel_main(
            ["--n", "64", "--repeats", "2", "--max-seconds", "60",
             "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "kernel"
        stdout = capsys.readouterr().out
        assert "smoke OK" in stdout
        assert "counts-speedup" in stdout

    def test_cli_smoke_ceiling_failure(self, tmp_path, capsys):
        rc = kernel_main(
            ["--n", "64", "--repeats", "1", "--max-seconds", "0",
             "--out", str(tmp_path / "x.json")]
        )
        assert rc == 1
        assert "SMOKE FAIL" in capsys.readouterr().err

    def test_cli_reports_bench_errors(self, tmp_path, capsys):
        rc = kernel_main(["--n", "0", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "bench error" in capsys.readouterr().err
