"""Tests for the sweep harnesses and their bench records."""

import json

import pytest

from repro.errors import AnalysisError
from repro.experiments import (
    DEFAULT_TOPOLOGIES,
    bench_engines,
    merge_records,
    sweep_broadcast,
    write_bench,
)
from repro.experiments.broadcast_bench import main
from repro.experiments.engine_bench import main as engine_main


class TestSweep:
    @pytest.fixture(scope="class")
    def record(self):
        return sweep_broadcast(
            topologies=("line", "gnp"), n=16, seeds=3, preset="fast"
        )

    def test_record_header(self, record):
        assert record["bench"] == "broadcast"
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["n"] == 16
        assert record["seeds"] == 3
        assert record["topologies"] == ["line", "gnp"]
        assert record["protocols"] == ["decay", "ghk"]
        assert "created_utc" in record

    def test_one_entry_per_family_protocol_pair(self, record):
        keys = {(e["topology"], e["protocol"]) for e in record["results"]}
        assert keys == {(t, p) for t in ("line", "gnp") for p in ("decay", "ghk")}

    def test_entries_aggregate_the_full_batch(self, record):
        for entry in record["results"]:
            assert entry["runs"] == 3
            assert entry["failures"] == 0
            rounds = entry["rounds"]
            assert rounds["min"] <= rounds["median"] <= rounds["max"]
            assert len(entry["rounds_all"]) == 3
            assert entry["transmissions_mean"] > 0

    def test_ghk_entries_carry_speedup(self, record):
        ghk = [e for e in record["results"] if e["protocol"] == "ghk"]
        assert all("speedup_vs_decay" in e for e in ghk)
        line_entry = next(e for e in ghk if e["topology"] == "line")
        assert line_entry["speedup_vs_decay"] > 1

    def test_default_topology_suite_is_the_issue_suite(self):
        assert DEFAULT_TOPOLOGIES == (
            "line",
            "ring",
            "grid",
            "gnp",
            "dumbbell",
            "unit_disk",
        )


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(AnalysisError, match="at least one node"):
            sweep_broadcast(n=0)
        with pytest.raises(AnalysisError, match="at least one seed"):
            sweep_broadcast(seeds=0)

    def test_rejects_unknown_names(self):
        with pytest.raises(AnalysisError, match="unknown topologies"):
            sweep_broadcast(topologies=("moebius",))
        with pytest.raises(AnalysisError, match="unknown protocols"):
            sweep_broadcast(protocols=("gossip",))
        with pytest.raises(AnalysisError, match="unknown preset"):
            sweep_broadcast(preset="slow")

    def test_rejects_unbuildable_family_size(self):
        with pytest.raises(AnalysisError, match="cannot build"):
            sweep_broadcast(topologies=("ring",), n=2, seeds=1)


class TestCLI:
    def test_writes_valid_json_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_broadcast.json"
        rc = main(
            ["--n", "12", "--seeds", "2", "--topologies", "line", "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "broadcast"
        assert len(record["results"]) == 2
        stdout = capsys.readouterr().out
        assert "speedup-vs-decay" in stdout
        assert str(out) in stdout

    def test_reports_sweep_errors(self, tmp_path, capsys):
        rc = main(["--n", "0", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "sweep error" in capsys.readouterr().err

    def test_write_bench_roundtrip(self, tmp_path):
        path = write_bench({"bench": "broadcast", "results": []}, tmp_path / "b.json")
        assert json.loads(path.read_text()) == {"bench": "broadcast", "results": []}

    def test_multi_size_sweep_merges_into_one_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_broadcast.json"
        rc = main(
            ["--n", "12", "16", "--seeds", "2", "--topologies", "line", "--out", str(out)]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["n"] == [12, 16]
        assert [e["n"] for e in record["results"]] == [12, 12, 16, 16]
        stdout = capsys.readouterr().out
        assert "n=12" in stdout and "n=16" in stdout


class TestMergeRecords:
    def test_single_record_keeps_scalar_n(self):
        record = {"n": 8, "results": [{"n": 8}]}
        assert merge_records([record])["n"] == 8

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError, match="at least one"):
            merge_records([])


class TestEngineBench:
    @pytest.fixture(scope="class")
    def record(self):
        return bench_engines(n=16, seeds=2, topology="line", preset="fast")

    def test_record_header(self, record):
        assert record["bench"] == "engine"
        assert record["paper"] == "conf_podc_GhaffariHK13"
        assert record["topology"] == "line"
        assert record["protocols"] == ["decay", "ghk"]

    def test_paths_execute_identical_rounds(self, record):
        for entry in record["results"]:
            assert "paths_diverged" not in entry
            assert entry["object"]["rounds"] == entry["array"]["rounds"]
            assert entry["object"]["completed"] == entry["array"]["completed"]
            assert entry["object"]["rounds"] > 0
            assert entry["speedup_rounds_per_sec"] > 0

    def test_validation(self):
        with pytest.raises(AnalysisError, match="at least one node"):
            bench_engines(n=0)
        with pytest.raises(AnalysisError, match="at least one seed"):
            bench_engines(seeds=0)
        with pytest.raises(AnalysisError, match="unknown topology"):
            bench_engines(topology="moebius")
        with pytest.raises(AnalysisError, match="unknown protocols"):
            bench_engines(protocols=("gossip",))
        with pytest.raises(AnalysisError, match="unknown preset"):
            bench_engines(preset="slow")
        with pytest.raises(AnalysisError, match="cannot build"):
            bench_engines(n=2, topology="ring")

    def test_cli_writes_record_and_smoke_ceiling_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        rc = engine_main(
            [
                "--n", "12", "--seeds", "2", "--topology", "line",
                "--protocols", "decay", "--out", str(out), "--max-seconds", "120",
            ]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["results"][0]["protocol"] == "decay"
        stdout = capsys.readouterr().out
        assert "smoke OK" in stdout
        assert str(out) in stdout

    def test_cli_smoke_ceiling_failure(self, tmp_path, capsys):
        rc = engine_main(
            [
                "--n", "12", "--seeds", "2", "--topology", "line",
                "--protocols", "decay", "--out", str(tmp_path / "b.json"),
                "--max-seconds", "0",
            ]
        )
        assert rc == 1
        assert "SMOKE FAIL" in capsys.readouterr().err

    def test_cli_reports_bench_errors(self, tmp_path, capsys):
        rc = engine_main(["--n", "0", "--out", str(tmp_path / "b.json")])
        assert rc == 2
        assert "bench error" in capsys.readouterr().err
