"""Tests for the GHK collision-detection broadcast protocol."""

import pytest

from repro.errors import BroadcastFailure, ConfigurationError
from repro.params import ProtocolParams
from repro.sim.ghk_broadcast import GHKBroadcastProtocol, run_ghk_broadcast
from repro.sim.topology import dumbbell, from_spec, gnp, grid2d, line, ring, star

FAST = ProtocolParams.fast()


class TestDelivery:
    @pytest.mark.parametrize(
        "net",
        [
            line(256),
            grid2d(16, 16),
            gnp(256, 0.05, seed=2),
            dumbbell(126, 4),
        ],
        ids=["line-256", "grid-16x16", "gnp-256", "dumbbell-256"],
    )
    def test_delivers_on_acceptance_topologies_n256(self, net):
        result = run_ghk_broadcast(net, FAST, seed=0)
        assert result.n == 256
        assert result.rounds_to_delivery <= result.budget
        assert result.informed_rounds[net.source] == 0
        assert max(result.informed_rounds) < result.rounds_to_delivery + 1

    @pytest.mark.parametrize(
        "net",
        [
            line(2),
            ring(17, source=5),
            star(64),
            star(64, source=9),
            from_spec("unit_disk", 48, seed=4),
            grid2d(n=50),
        ],
        ids=["line-2", "ring-17", "star-hub-src", "star-leaf-src", "udg-48", "grid-50"],
    )
    def test_delivers_on_small_topologies(self, net):
        result = run_ghk_broadcast(net, FAST, seed=1)
        assert result.rounds_to_delivery <= result.budget

    def test_single_node_is_trivially_delivered(self):
        result = run_ghk_broadcast(line(1), FAST, seed=0)
        assert result.rounds_to_delivery == 0
        assert result.informed_rounds == (0,)

    def test_path_is_informed_by_the_wave_itself(self):
        # On a path every pulse is uncontended and carries the message, so
        # delivery completes with the sync wave: exactly ecc rounds — the
        # O(D) regime, against Decay's one-phase-per-hop Θ(D log n).
        for n in (8, 33, 64):
            net = line(n)
            result = run_ghk_broadcast(net, FAST, seed=0)
            assert result.rounds_to_delivery == net.eccentricity()
            # Each node is informed the round the wavefront passes it.
            assert result.informed_rounds == tuple(max(0, d - 1) for d in range(n))

    def test_wave_distances_match_bfs_layers(self):
        net = grid2d(9, 6)
        result = run_ghk_broadcast(net, FAST, seed=2)
        truth = [None] * net.n
        for d, layer in enumerate(net.bfs_layers()):
            for v in layer:
                truth[v] = d
        assert list(result.wave_distances) == truth


class TestMessageInjection:
    def test_custom_message_arrives_verbatim_at_every_node(self):
        # Regression: the payload is injected at construction, so a custom
        # message must reach every node by identity, not by setup() ordering.
        payload = {"k": ("nested", 7)}
        net = grid2d(5, 5)
        protocols = [GHKBroadcastProtocol(message=payload) for _ in range(net.n)]
        from repro.sim.engine import Engine

        engine = Engine(net, protocols, seed=0, collision_detection=True, params=FAST)
        engine.run(
            FAST.ghk_broadcast_rounds(net.eccentricity(), net.n),
            stop_when=lambda eng: all(p.informed for p in protocols),
        )
        assert all(p.informed for p in protocols)
        assert all(p.message is payload for p in protocols)

    def test_none_message_rejected_at_both_boundaries(self):
        with pytest.raises(ConfigurationError, match="non-None message"):
            run_ghk_broadcast(grid2d(3, 3), FAST, message=None)
        with pytest.raises(ConfigurationError, match="non-None"):
            GHKBroadcastProtocol(message=None)

    def test_wave_pulse_sentinel_rejected_as_message(self):
        # The sentinel payload means "content-free pulse": a broadcast of
        # the sentinel itself could never be recognised as delivered, so it
        # must be rejected up front, not burn the budget into a misleading
        # BroadcastFailure.
        from repro.sim.beepwave import WAVE_PULSE

        with pytest.raises(ConfigurationError, match="reserved"):
            run_ghk_broadcast(grid2d(3, 3), FAST, message=WAVE_PULSE)
        with pytest.raises(ConfigurationError, match="reserved"):
            GHKBroadcastProtocol(message=WAVE_PULSE)


class TestCollisionDetectionRequirement:
    def test_driver_rejects_collision_blind_channel(self):
        with pytest.raises(ConfigurationError, match="collision-detection"):
            run_ghk_broadcast(line(4), FAST, collision_detection=False)

    def test_protocol_rejects_collision_blind_engine(self):
        from repro.sim.engine import Engine

        net = line(3)
        protocols = [GHKBroadcastProtocol() for _ in range(net.n)]
        with pytest.raises(ConfigurationError, match="requires collision detection"):
            Engine(net, protocols, collision_detection=False, params=FAST)


class TestFailureAndReproducibility:
    def test_budget_expiry_raises_with_undelivered_set(self):
        net = line(64)
        with pytest.raises(BroadcastFailure) as excinfo:
            run_ghk_broadcast(net, FAST, seed=0, budget=10)
        undelivered = excinfo.value.undelivered
        assert len(undelivered) > 0
        assert set(undelivered) <= set(range(1, 64))

    def test_same_seed_same_trace(self):
        net = gnp(40, 0.15, seed=6)
        a = run_ghk_broadcast(net, FAST, seed=11, trace=True)
        b = run_ghk_broadcast(net, FAST, seed=11, trace=True)
        assert a.rounds_to_delivery == b.rounds_to_delivery
        assert a.informed_rounds == b.informed_rounds
        assert a.sim.history == b.sim.history

    def test_ghk_is_registered(self):
        from repro.sim.protocol import available_protocols, protocol_class

        assert "ghk" in available_protocols()
        assert protocol_class("ghk") is GHKBroadcastProtocol

    def test_uses_collision_feedback_on_contended_topologies(self):
        # On a grid from the corner, every interior diagonal node hears two
        # simultaneous pulse relays — a guaranteed collision that the wave
        # *uses* as a beep (the same configuration stalls the wave entirely
        # when detection is off, see test_beepwave).  The ground truth must
        # show the collisions GHK turned into synchronization.
        net = grid2d(8, 8)
        result = run_ghk_broadcast(net, FAST, seed=0, trace=True)
        assert result.sim.total_collisions > 0
        first_wave_collisions = [
            s for s in result.sim.history if s.collisions and s.round_index < 14
        ]
        assert first_wave_collisions, "the sync wave itself must collide on a grid"
