def oops(:
    pass
