"""Tooling outside sim/ constructs operands freely (benches, simsan)."""

from repro.sim.core.channel import BitOperand


def bench_operand(indptr, indices):
    return BitOperand(indptr, indices)
