"""Sim code that routes operand construction through the factories."""

from repro.sim.core.batch import select_kernel_operand
from repro.sim.core.channel import DenseOperand, operand_from_csr


def build(network, params):
    return select_kernel_operand(network, params)


def rebuild(indptr, indices):
    return operand_from_csr("sparse", indptr, indices)


def is_dense(operand):
    # Referencing the class without calling it (isinstance dispatch) is fine.
    return isinstance(operand, DenseOperand)
