"""The factory functions themselves are exempt — they own the policy."""

from repro.sim.core.channel import BitOperand, DenseOperand, SparseOperand


def select_kernel_operand(network, params):
    if params.channel_backend == "sparse":
        return SparseOperand(*network.csr())
    return DenseOperand(network.adjacency_matrix())


def operand_from_csr(backend, indptr, indices):
    return BitOperand(indptr, indices)
