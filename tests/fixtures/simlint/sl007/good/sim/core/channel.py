"""The kernel module is exempt by file: it defines the operand classes."""

from repro.sim.core.channel import DenseOperand


def as_kernel_operand(operand):
    return DenseOperand(operand)
