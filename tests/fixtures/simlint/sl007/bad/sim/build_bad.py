"""Direct operand constructions in sim/ code — every import flavor SL007 flags."""

import repro.sim.core.channel as channel
from repro.sim.core.channel import BitOperand, DenseOperand, SparseOperand

OPERAND = SparseOperand([0], [])


def build_dense(network):
    return DenseOperand(network.adjacency_matrix())


def build_bit(indptr, indices):
    return channel.BitOperand(indptr, indices)
