"""Equivalence fixture covering an unrelated protocol only."""

COVERED = ["SomethingElseEntirely"]
