"""Bad: both forms registered but no equivalence test mentions the name."""


def register_protocol(name):
    def deco(cls):
        return cls
    return deco


def register_array_protocol(name):
    def deco(cls):
        return cls
    return deco


@register_protocol("ghost")
class GhostProtocol:
    pass


@register_array_protocol("ghost")
class GhostArrayProtocol:
    pass
