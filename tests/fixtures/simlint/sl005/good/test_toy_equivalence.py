"""Equivalence fixture: mentions ToyProtocol / ToyArrayProtocol by name."""

COVERED = ["ToyProtocol", "ToyArrayProtocol"]
