"""Good: object + array registration for the same name."""


def register_protocol(name):
    def deco(cls):
        return cls
    return deco


def register_array_protocol(name):
    def deco(cls):
        return cls
    return deco


@register_protocol("toy")
class ToyProtocol:
    pass


@register_array_protocol("toy")
class ToyArrayProtocol:
    pass
