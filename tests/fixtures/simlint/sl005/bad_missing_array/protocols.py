"""Bad: object form registered with no array counterpart."""


def register_protocol(name):
    def deco(cls):
        return cls
    return deco


@register_protocol("orphan")
class OrphanProtocol:
    pass
