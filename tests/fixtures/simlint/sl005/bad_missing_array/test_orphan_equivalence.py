"""Equivalence fixture that does mention OrphanProtocol (parity still fails)."""

COVERED = ["OrphanProtocol"]
