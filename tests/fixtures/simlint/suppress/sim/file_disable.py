"""Two SL001 violations, suppressed for the whole file."""
# simlint: disable-file=SL001
import numpy as np


def first() -> float:
    return float(np.random.rand())


def second() -> None:
    np.random.seed(0)
