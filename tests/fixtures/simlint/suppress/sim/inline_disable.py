"""A real SL001 violation, suppressed inline."""
import numpy as np


def tolerated() -> float:
    return float(np.random.rand())  # simlint: disable=SL001
