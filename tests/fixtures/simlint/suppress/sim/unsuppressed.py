"""A violation with an unrelated disable comment: must still fire."""
import numpy as np


def still_bad() -> float:
    return float(np.random.rand())  # simlint: disable=SL006
