"""Good: a conforming channel operand."""
import numpy as np


class ToyOperand:
    backend = "toy"

    def __init__(self, adjacency: np.ndarray):
        self.adj = adjacency

    @property
    def n(self) -> int:
        return self.adj.shape[0]

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        return transmit.astype(np.float64)

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        return (tx @ self.adj).astype(np.int64)

    def sender_ids(self, tx: np.ndarray, clean: np.ndarray) -> np.ndarray:
        return np.zeros_like(clean, dtype=np.int64)
