"""Bad: missing sender_ids, wrong transmit_counts arity, no n."""
import numpy as np


class BrokenOperand:
    backend = "broken"

    def __init__(self, adjacency: np.ndarray):
        self.adj = adjacency

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        return transmit

    def transmit_counts(self, tx: np.ndarray, extra: np.ndarray) -> np.ndarray:
        return tx
