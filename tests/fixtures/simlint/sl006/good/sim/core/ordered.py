"""Good: set order never materialized — sorted() or order-free reductions."""


def retire_all(live: set) -> list:
    out = []
    for i in sorted(live):
        out.append(i)
    return out


def summary(live: set) -> tuple:
    return (len(live), min(live), max(live), 3 in live)
