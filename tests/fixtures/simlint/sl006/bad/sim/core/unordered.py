"""Bad: set iteration order reaches downstream consumers."""


def retire_all(live: set) -> list:
    out = []
    for i in live:
        out.append(i)
    return out


def snapshot(live: set) -> list:
    return list(live)


def drain(live: set) -> int:
    return live.pop()


def squares() -> list:
    pending = {3, 1, 2}
    return [i * i for i in pending]
