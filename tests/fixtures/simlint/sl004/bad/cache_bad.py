"""Bad: producer skips setflags; callers write into accessor results."""
import numpy as np


class Cache:
    def __init__(self, n: int):
        self.n = n
        self._mat = None

    def adjacency_matrix(self) -> np.ndarray:
        if self._mat is None:
            self._mat = np.zeros((self.n, self.n), dtype=np.int8)
        return self._mat


def writes_direct(cache: Cache) -> None:
    cache.adjacency_matrix()[0, 1] = 1


def writes_alias(cache: Cache) -> None:
    mat = cache.adjacency_matrix()
    mat[0, 1] = 1
    mat.fill(0)
