"""Good: cached arrays frozen by the producer, copied by the caller."""
import numpy as np


class Cache:
    def __init__(self, n: int):
        self.n = n
        self._mat = None

    def adjacency_matrix(self) -> np.ndarray:
        if self._mat is None:
            mat = np.zeros((self.n, self.n), dtype=np.int8)
            mat.setflags(write=False)
            self._mat = mat
        return self._mat


def caller(cache: Cache) -> np.ndarray:
    mat = cache.adjacency_matrix().copy()
    mat[0, 0] = 1
    return mat
