"""Good: the telemetry allowlist permits monotonic timers in batch.py."""
import time


def timed() -> float:
    t0 = time.perf_counter()
    return time.perf_counter() - t0
