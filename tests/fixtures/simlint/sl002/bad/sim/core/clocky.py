"""Bad: wall-clock reads inside sim/core result code."""
import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def when() -> str:
    return datetime.now().isoformat()
