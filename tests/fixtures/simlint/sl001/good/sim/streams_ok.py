"""Good: randomness only via seeded numpy Generators."""
import numpy as np
from numpy.random import PCG64, Generator, SeedSequence


def make_rng(seed: int) -> Generator:
    return Generator(PCG64(SeedSequence(seed)))


def draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())
