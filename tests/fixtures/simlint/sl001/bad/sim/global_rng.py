"""Bad: every flavor of global RNG."""
import random

import numpy as np


def bad_stdlib() -> float:
    return random.random()


def bad_np_module() -> float:
    np.random.seed(7)
    return float(np.random.rand())


def bad_seedless():
    return np.random.default_rng()
