"""Tests for the beep-wave synchronization layer."""

import pytest

from repro.errors import BroadcastFailure
from repro.params import ProtocolParams
from repro.sim.beepwave import (
    WAVE_PULSE,
    BeepWaveProtocol,
    in_layer_slot,
    is_beep,
    run_beep_wave,
)
from repro.sim.protocol import Feedback, FeedbackKind
from repro.sim.topology import dumbbell, from_spec, grid2d, line, star

FAST = ProtocolParams.fast()


def true_layers(net) -> list[int]:
    dist = [None] * net.n
    for d, layer in enumerate(net.bfs_layers()):
        for v in layer:
            dist[v] = d
    return dist


class TestWaveDistances:
    @pytest.mark.parametrize(
        "family", ["line", "ring", "star", "grid", "gnp", "dumbbell", "unit_disk"]
    )
    def test_wave_learns_exact_bfs_layers(self, family):
        net = from_spec(family, 48, seed=3)
        result = run_beep_wave(net, FAST, seed=3)
        assert list(result.wave_distances) == true_layers(net)

    def test_wave_advances_one_hop_per_round(self):
        # The last layer relays in round ecc, so the run is exactly ecc + 1
        # rounds — the defining property of the wave.
        net = line(20)
        result = run_beep_wave(net, FAST)
        assert result.rounds_run == net.eccentricity() + 1
        assert result.budget == net.eccentricity() + 1

    def test_wave_is_deterministic_and_coin_free(self):
        # The wave uses no randomness: any two seeds give identical traces.
        net = grid2d(7, 7)
        a = run_beep_wave(net, FAST, seed=0, trace=True)
        b = run_beep_wave(net, FAST, seed=99, trace=True)
        assert a.wave_distances == b.wave_distances
        assert a.sim.history == b.sim.history

    def test_single_node_wave(self):
        result = run_beep_wave(line(1), FAST)
        assert result.wave_distances == (0,)


class TestCollisionDetectionIsEssential:
    def test_wave_survives_collisions_with_detection(self):
        # Star from a leaf: the hub's relay reaches all leaves at once; the
        # dumbbell's clique relays collide massively.  With detection the
        # wave still sweeps cleanly.
        for net in (star(32, source=5), dumbbell(12, 2)):
            result = run_beep_wave(net, FAST, collision_detection=True)
            assert list(result.wave_distances) == true_layers(net)

    def test_wave_stalls_without_detection(self):
        # On a grid from the corner, layer 1's two relays collide at the
        # diagonal node, which then never hears a clean first beep in time:
        # collision-as-silence kills the wave.
        net = grid2d(8, 8)
        with pytest.raises(BroadcastFailure, match="unsynchronized"):
            run_beep_wave(net, FAST, collision_detection=False)

    def test_uncontended_wave_works_even_without_detection(self):
        # A path never has two simultaneous relays in range of a listener.
        net = line(12)
        result = run_beep_wave(net, FAST, collision_detection=False)
        assert list(result.wave_distances) == true_layers(net)


class TestFailureModes:
    def test_budget_expiry_reports_unsynchronized_nodes(self):
        net = line(16)
        with pytest.raises(BroadcastFailure) as excinfo:
            run_beep_wave(net, FAST, budget=4)
        # Nodes beyond the wavefront at round 4 are exactly 5..15.
        assert excinfo.value.undelivered == tuple(range(5, 16))


class TestPrimitives:
    def test_is_beep_predicate(self):
        assert is_beep(Feedback(FeedbackKind.MESSAGE, round_index=0, message="x"))
        assert is_beep(Feedback(FeedbackKind.COLLISION, round_index=0))
        assert not is_beep(Feedback(FeedbackKind.SILENCE, round_index=0))

    def test_in_layer_slot_spacing_arithmetic(self):
        # Layer 2, spacing 3: owns rounds 2, 5, 8, ...; the first (the sync
        # relay itself) is not a repeat slot.
        assert not in_layer_slot(2, 2, 3)
        assert in_layer_slot(5, 2, 3)
        assert in_layer_slot(8, 2, 3)
        assert not in_layer_slot(6, 2, 3)
        assert not in_layer_slot(1, 2, 3)

    def test_adjacent_layers_never_share_a_slot(self):
        spacing = 3
        for d in range(6):
            for r in range(40):
                owners = [
                    layer
                    for layer in (d - 1, d, d + 1)
                    if layer >= 0 and in_layer_slot(r, layer, spacing)
                ]
                assert len(owners) <= 1

    def test_wave_pulse_is_a_singleton_sentinel(self):
        assert repr(WAVE_PULSE) == "WAVE_PULSE"
        from repro.sim import beepwave

        assert beepwave.WAVE_PULSE is WAVE_PULSE

    def test_beepwave_is_registered(self):
        from repro.sim.protocol import available_protocols, protocol_class

        assert "beepwave" in available_protocols()
        assert protocol_class("beepwave") is BeepWaveProtocol
