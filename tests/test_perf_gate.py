"""The perf gate must pass on healthy records and trip on regressions."""

import json

import pytest

from repro.errors import AnalysisError
from repro.experiments import perf_gate
from repro.experiments.perf_gate import (
    gate_engine,
    gate_kernel,
    gate_scale,
    load_record,
)
from repro.experiments.record import SCHEMA_VERSION, bench_record, write_bench


def _engine_record(object_rps=1000.0, array_rps=8000.0, n=16):
    return bench_record(
        "engine",
        preset="fast",
        channel_backend="auto",
        topology="grid",
        n=n,
        seeds=4,
        protocols=["ghk"],
        results=[
            {
                "protocol": "ghk",
                "topology": "grid",
                "n": n,
                "object": {"rounds_per_sec": object_rps},
                "array": {"rounds_per_sec": array_rps},
            }
        ],
    )


def _scale_record(rps=5000.0, peak_mib=2.0, n=16, probe_rounds=32):
    return bench_record(
        "scale",
        preset="fast",
        protocol="ghk",
        seeds=1,
        sizes=[n],
        topologies=["line"],
        backends=["sparse"],
        max_dense_mib=1024,
        probe_rounds=probe_rounds,
        results=[
            {
                "topology": "line",
                "n": n,
                "backend": "sparse",
                "rounds_per_sec": rps,
                "peak_mib": peak_mib,
            }
        ],
    )


def _kernel_record(counts_per_sec=5000.0, operand_mib=0.125, n=16):
    return bench_record(
        "kernel",
        topology="gnp",
        seed=0,
        repeats=3,
        tx_fraction=0.05,
        sizes=[n],
        backends=["bitpacked"],
        max_operand_mib=1024,
        results=[
            {
                "topology": "gnp",
                "n": n,
                "backend": "bitpacked",
                "operand_mib": operand_mib,
                "counts_per_sec": counts_per_sec,
                "counts_seconds": 1.0 / counts_per_sec,
                "senders_seconds": 1.0 / counts_per_sec,
            }
        ],
    )


class TestLoadRecord:
    def test_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            load_record(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            load_record(path)

    def test_schema_version_mismatch(self, tmp_path):
        record = _engine_record()
        record["schema_version"] = SCHEMA_VERSION - 1
        path = write_bench(record, tmp_path / "old.json")
        with pytest.raises(AnalysisError, match="schema_version"):
            load_record(path)

    def test_missing_schema_version(self, tmp_path):
        record = _engine_record()
        del record["schema_version"]
        path = write_bench(record, tmp_path / "v1.json")
        with pytest.raises(AnalysisError, match="schema_version"):
            load_record(path)

    def test_roundtrip(self, tmp_path):
        path = write_bench(_engine_record(), tmp_path / "ok.json")
        assert load_record(path)["bench"] == "engine"

    def test_sanitized_record_rejected(self, tmp_path):
        # Sanitizer-on numbers measure the sanitizer, not the engine.
        record = _engine_record()
        record["sanitized"] = True
        path = write_bench(record, tmp_path / "sanitized.json")
        with pytest.raises(AnalysisError, match="sanitizer"):
            load_record(path)

    def test_legacy_record_without_sanitized_key_accepted(self, tmp_path):
        record = _engine_record()
        record.pop("sanitized", None)
        path = write_bench(record, tmp_path / "legacy.json")
        assert load_record(path)["bench"] == "engine"


class TestGateEngine:
    def test_identical_records_pass(self):
        committed = _engine_record()
        lines, violations = gate_engine(committed, _engine_record())
        assert violations == 0
        assert all(line.startswith("OK") for line in lines)

    def test_throughput_regression_trips(self):
        committed = _engine_record(array_rps=8000.0)
        fresh = _engine_record(array_rps=100.0)  # far below the 0.6 floor
        lines, violations = gate_engine(committed, fresh)
        assert violations == 1
        assert any("REGRESSION" in line and "array" in line for line in lines)

    def test_drop_within_tolerance_passes(self):
        committed = _engine_record(array_rps=8000.0)
        fresh = _engine_record(array_rps=8000.0 * 0.5)  # above the 0.4 floor
        _, violations = gate_engine(committed, fresh)
        assert violations == 0

    def test_both_paths_are_gated(self):
        committed = _engine_record(object_rps=1000.0, array_rps=8000.0)
        fresh = _engine_record(object_rps=10.0, array_rps=10.0)
        _, violations = gate_engine(committed, fresh)
        assert violations == 2

    def test_no_matching_cells_is_an_error(self):
        committed = _engine_record(n=16)
        fresh = _engine_record(n=64)
        with pytest.raises(AnalysisError, match="vacuous"):
            gate_engine(committed, fresh)


class TestGateScale:
    def test_identical_records_pass(self):
        _, violations = gate_scale(_scale_record(), _scale_record())
        assert violations == 0

    def test_memory_regression_trips(self):
        committed = _scale_record(peak_mib=2.0)
        fresh = _scale_record(peak_mib=4.0)  # x2 > the 1.25 ceiling
        lines, violations = gate_scale(committed, fresh)
        assert violations == 1
        assert any("REGRESSION" in line and "MiB" in line for line in lines)

    def test_memory_skipped_when_probes_differ(self):
        committed = _scale_record(probe_rounds=32)
        fresh = _scale_record(peak_mib=100.0, probe_rounds=8)
        lines, violations = gate_scale(committed, fresh)
        assert violations == 0
        assert any("probe_rounds differ" in line for line in lines)

    def test_skipped_cells_are_ignored(self):
        committed = _scale_record()
        committed["results"].append(
            {"topology": "line", "n": 99, "backend": "dense", "skipped": "ceiling"}
        )
        _, violations = gate_scale(committed, _scale_record())
        assert violations == 0

    def test_no_matching_cells_is_an_error(self):
        with pytest.raises(AnalysisError, match="vacuous"):
            gate_scale(_scale_record(n=16), _scale_record(n=1024))


class TestGateKernel:
    def test_identical_records_pass(self):
        _, violations = gate_kernel(_kernel_record(), _kernel_record())
        assert violations == 0

    def test_counts_regression_trips(self):
        lines, violations = gate_kernel(
            _kernel_record(counts_per_sec=5000.0),
            _kernel_record(counts_per_sec=100.0),
        )
        assert violations == 1
        assert any("REGRESSION" in line and "counts" in line for line in lines)

    def test_operand_size_drift_trips(self):
        # operand_mib is arithmetic, not a measurement: any change means
        # the operand layout itself changed and must be deliberate.
        lines, violations = gate_kernel(
            _kernel_record(operand_mib=0.125), _kernel_record(operand_mib=0.25)
        )
        assert violations == 1
        assert any("operand_mib changed" in line for line in lines)

    def test_no_matching_cells_is_an_error(self):
        with pytest.raises(AnalysisError, match="vacuous"):
            gate_kernel(_kernel_record(n=16), _kernel_record(n=4096))


class TestMain:
    def _write(self, tmp_path, engine=None, scale=None):
        engine_path = write_bench(
            engine or _engine_record(), tmp_path / "BENCH_engine.json"
        )
        scale_path = write_bench(
            scale or _scale_record(), tmp_path / "BENCH_scale.json"
        )
        return str(engine_path), str(scale_path)

    def _run(self, tmp_path, committed_engine, committed_scale,
             fresh_engine, fresh_scale, extra=()):
        engine_path, scale_path = self._write(
            tmp_path, committed_engine, committed_scale
        )
        fresh_engine_path = write_bench(fresh_engine, tmp_path / "fresh_engine.json")
        fresh_scale_path = write_bench(fresh_scale, tmp_path / "fresh_scale.json")
        return perf_gate.main(
            [
                "--engine-record", engine_path,
                "--scale-record", scale_path,
                "--fresh-engine", str(fresh_engine_path),
                "--fresh-scale", str(fresh_scale_path),
                *extra,
            ]
        )

    def test_passes_on_identical_fresh_records(self, tmp_path, capsys):
        code = self._run(
            tmp_path, _engine_record(), _scale_record(),
            _engine_record(), _scale_record(),
        )
        assert code == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_exits_nonzero_on_synthetic_regression(self, tmp_path, capsys):
        code = self._run(
            tmp_path, _engine_record(array_rps=8000.0), _scale_record(),
            _engine_record(array_rps=50.0), _scale_record(),
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "PERF GATE FAIL" in captured.err
        assert "REGRESSION" in captured.out

    def test_exits_two_on_schema_mismatch(self, tmp_path, capsys):
        old = _engine_record()
        old["schema_version"] = 1
        engine_path, scale_path = self._write(tmp_path, old, _scale_record())
        code = perf_gate.main(
            ["--engine-record", engine_path, "--scale-record", scale_path]
        )
        assert code == 2
        assert "schema_version" in capsys.readouterr().err

    def test_exits_two_on_bad_tolerance(self, tmp_path):
        assert perf_gate.main(["--speed-tolerance", "1.5"]) == 2

    def test_kernel_record_is_gated_when_given(self, tmp_path, capsys):
        engine_path, scale_path = self._write(tmp_path)
        fresh_engine = write_bench(_engine_record(), tmp_path / "fe.json")
        fresh_scale = write_bench(_scale_record(), tmp_path / "fs.json")
        kernel_path = write_bench(_kernel_record(), tmp_path / "BENCH_kernel.json")
        fresh_kernel = write_bench(
            _kernel_record(counts_per_sec=10.0), tmp_path / "fk.json"
        )
        code = perf_gate.main(
            [
                "--engine-record", engine_path,
                "--scale-record", scale_path,
                "--fresh-engine", str(fresh_engine),
                "--fresh-scale", str(fresh_scale),
                "--kernel-record", str(kernel_path),
                "--fresh-kernel", str(fresh_kernel),
                "--kernel-n", "16",
            ]
        )
        assert code == 1
        assert "kernel gnp/n=16/bitpacked" in capsys.readouterr().out

    def test_out_dir_writes_fresh_records(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = self._run(
            tmp_path, _engine_record(), _scale_record(),
            _engine_record(), _scale_record(),
            extra=["--out-dir", str(out_dir)],
        )
        assert code == 0
        for name in ("BENCH_engine.fresh.json", "BENCH_scale.fresh.json"):
            assert json.loads((out_dir / name).read_text())["schema_version"] == (
                SCHEMA_VERSION
            )

    def test_remeasures_when_no_fresh_injected(self, tmp_path, capsys):
        # End-to-end at toy scale: the gate really re-runs both benches.
        from repro.experiments.engine_bench import bench_engines
        from repro.experiments.scale_bench import bench_scale

        committed_engine = bench_engines(n=16, seeds=2)
        committed_scale = bench_scale(
            sizes=(16,), topologies=("line",), seeds=1, backends=("sparse",)
        )
        engine_path, scale_path = self._write(
            tmp_path, committed_engine, committed_scale
        )
        code = perf_gate.main(
            [
                "--engine-record", engine_path,
                "--scale-record", scale_path,
                "--seeds", "2",
                "--scale-n", "16",
                # Toy cells finish in microseconds, so throughput is pure
                # noise; only the memory gate is meaningful here.
                "--speed-tolerance", "0.99",
            ]
        )
        assert code == 0, capsys.readouterr()

    def test_scale_n_must_be_a_committed_size(self, tmp_path, capsys):
        engine_path, scale_path = self._write(tmp_path)
        fresh_engine = write_bench(_engine_record(), tmp_path / "fe.json")
        code = perf_gate.main(
            [
                "--engine-record", engine_path,
                "--scale-record", scale_path,
                "--fresh-engine", str(fresh_engine),
                "--scale-n", "4096",
            ]
        )
        assert code == 2
        assert "not a committed size" in capsys.readouterr().err
