"""Property-based engine invariants under seeded randomized action sequences.

Each case drives the engine with ``RandomActor`` protocols that pick
TRANSMIT / LISTEN / SLEEP at random from their private node streams, then
replays the traced ground truth against the recorded per-node feedback and
checks the channel-model invariants:

* half-duplex — a transmitting node never receives feedback;
* sleeping nodes never receive feedback;
* ``counts == 1  ⇔  delivery``: a listener with exactly one transmitting
  neighbour receives exactly that neighbour's message, and every recorded
  delivery corresponds to such a listener;
* ``counts >= 2`` is reported as COLLISION with detection and SILENCE
  without, and is always recorded in the omniscient ground truth;
* trace history totals equal the aggregate counters of the result.

The "generator" is a seeded grid of configurations rather than an external
property-testing dependency, so every failure is reproducible from the
printed (graph seed, run seed, collision_detection) triple.
"""

import numpy as np
import pytest

from repro.sim.engine import Engine
from repro.sim.protocol import Action, FeedbackKind, Protocol
from repro.sim.topology import gnp

N_ROUNDS = 25


class RandomActor(Protocol):
    """Transmits/listens/sleeps at random; records everything it hears."""

    def setup(self, ctx):
        super().setup(ctx)
        self.sent: dict[int, object] = {}
        self.chose: dict[int, str] = {}
        self.heard: dict[int, object] = {}

    def act(self, round_index):
        roll = self.ctx.rng.random()
        if roll < 0.35:
            message = (self.ctx.node, round_index)
            self.sent[round_index] = message
            self.chose[round_index] = "transmit"
            return Action.transmit(message)
        if roll < 0.85:
            self.chose[round_index] = "listen"
            return Action.listen()
        self.chose[round_index] = "sleep"
        return Action.sleep()

    def on_feedback(self, round_index, feedback):
        assert round_index not in self.heard, "at most one feedback per round"
        self.heard[round_index] = feedback


CONFIGS = [
    (graph_seed, run_seed, cd)
    for graph_seed in (0, 1, 2)
    for run_seed in (10, 11)
    for cd in (True, False)
]


@pytest.mark.parametrize("graph_seed,run_seed,cd", CONFIGS)
def test_channel_invariants_hold_on_random_runs(graph_seed, run_seed, cd):
    n = 12 + 5 * graph_seed
    net = gnp(n, 0.25, seed=graph_seed)
    adj = net.adjacency_matrix()
    protocols = [RandomActor() for _ in range(n)]
    engine = Engine(net, protocols, seed=run_seed, collision_detection=cd, trace=True)
    result = engine.run(N_ROUNDS)

    assert len(result.history) == N_ROUNDS
    for stats in result.history:
        r = stats.round_index
        transmit = np.zeros(n, dtype=bool)
        transmit[list(stats.transmitters)] = True
        counts = adj @ transmit
        deliveries = dict(stats.deliveries)

        for node, proto in enumerate(protocols):
            choice = proto.chose[r]
            # Ground truth must agree with what each node chose to do.
            assert (node in stats.transmitters) == (choice == "transmit")
            if choice != "listen":
                # Half-duplex transmitters and sleepers hear nothing.
                assert r not in proto.heard
                continue
            feedback = proto.heard[r]
            if counts[node] == 0:
                assert feedback.kind is FeedbackKind.SILENCE
                assert node not in deliveries
            elif counts[node] == 1:
                # counts == 1  ⇔  delivery of the unique neighbour's message.
                sender = deliveries[node]
                assert feedback.kind is FeedbackKind.MESSAGE
                assert feedback.sender == sender
                assert adj[node, sender] == 1
                assert feedback.message == protocols[sender].sent[r]
            else:
                assert node in stats.collisions
                assert node not in deliveries
                expected = FeedbackKind.COLLISION if cd else FeedbackKind.SILENCE
                assert feedback.kind is expected
                assert feedback.message is None

        # Every recorded delivery is a listener with exactly one
        # transmitting neighbour (the ⇐ direction of counts == 1 ⇔ delivery).
        for recv, send in stats.deliveries:
            assert protocols[recv].chose[r] == "listen"
            assert counts[recv] == 1
            assert send in stats.transmitters
        # Recorded collisions are exactly the listeners with counts >= 2.
        expected_collisions = sorted(
            node
            for node in range(n)
            if protocols[node].chose[r] == "listen" and counts[node] >= 2
        )
        assert sorted(stats.collisions) == expected_collisions


@pytest.mark.parametrize("graph_seed,run_seed,cd", CONFIGS[:4])
def test_history_totals_equal_aggregate_counters(graph_seed, run_seed, cd):
    net = gnp(15, 0.3, seed=graph_seed)
    protocols = [RandomActor() for _ in range(net.n)]
    engine = Engine(net, protocols, seed=run_seed, collision_detection=cd, trace=True)
    result = engine.run(N_ROUNDS)
    assert result.total_transmissions == sum(
        len(s.transmitters) for s in result.history
    )
    assert result.total_deliveries == sum(len(s.deliveries) for s in result.history)
    assert result.total_collisions == sum(len(s.collisions) for s in result.history)
    # ... and the per-node feedback volume matches the ground truth too.
    heard_messages = sum(
        1
        for p in protocols
        for fb in p.heard.values()
        if fb.kind is FeedbackKind.MESSAGE
    )
    assert heard_messages == result.total_deliveries


def test_node_context_reports_collision_detection_setting():
    net = gnp(8, 0.4, seed=0)
    for cd in (True, False):
        protocols = [RandomActor() for _ in range(net.n)]
        Engine(net, protocols, collision_detection=cd)
        assert all(p.ctx.collision_detection is cd for p in protocols)
