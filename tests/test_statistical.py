"""Statistical delivery suite: >= 30 seeds per family for both protocols.

These are the headline acceptance tests of ISSUE 2: with ``fast``
constants, both the Decay baseline and the GHK collision-detection
broadcast must deliver on every topology family across a full seed batch
(the w.h.p. guarantee, checked empirically but deterministically — the
seeds are fixed, so a pass is reproducible), and GHK must beat Decay's
mean rounds-to-delivery on the high-diameter families where the paper's
``O(D + log^2 n)`` bound separates from Decay's ``O((D + log n) log n)``.

Everything here is marked ``statistical`` so CI can run it as a separate
non-blocking job; the fixed-seed design keeps it deterministic anyway.
"""

import statistics

import pytest

from repro.params import ProtocolParams
from repro.sim.decay import run_decay
from repro.sim.ghk_broadcast import run_ghk_broadcast
from repro.sim.topology import from_spec

pytestmark = pytest.mark.statistical

FAST = ProtocolParams.fast()
FAMILIES = ("line", "ring", "grid", "gnp", "dumbbell", "unit_disk")
SEEDS = range(30)
N = 64
#: families where the source eccentricity grows with n, so the paper's
#: bound must win; the dense families (gnp, unit_disk) have D <= 4 at
#: n = 64 and the two protocols are expected to be comparable there.
HIGH_DIAMETER = ("line", "ring", "grid", "dumbbell")

RUNNERS = {"decay": run_decay, "ghk": run_ghk_broadcast}


def batch_rounds(family: str, protocol: str) -> list[int]:
    """Rounds-to-delivery for the full seed batch; failures propagate."""
    runner = RUNNERS[protocol]
    rounds = []
    for seed in SEEDS:
        net = from_spec(family, N, seed=seed)
        rounds.append(runner(net, FAST, seed=seed).rounds_to_delivery)
    return rounds


@pytest.fixture(scope="module")
def sweep():
    """One shared sweep: {(family, protocol): [rounds per seed]}."""
    return {
        (family, protocol): batch_rounds(family, protocol)
        for family in FAMILIES
        for protocol in RUNNERS
    }


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("protocol", sorted(RUNNERS))
def test_whp_delivery_across_seed_batch(sweep, family, protocol):
    # batch_rounds raises BroadcastFailure on any failed run, so reaching
    # the assertions means 30/30 deliveries.
    rounds = sweep[(family, protocol)]
    assert len(rounds) == len(SEEDS)
    assert all(r > 0 for r in rounds)


@pytest.mark.parametrize("family", HIGH_DIAMETER)
def test_ghk_beats_decay_on_high_diameter_families(sweep, family):
    ghk = statistics.mean(sweep[(family, "ghk")])
    decay = statistics.mean(sweep[(family, "decay")])
    assert ghk <= decay, f"{family}: GHK mean {ghk} vs Decay mean {decay}"


@pytest.mark.parametrize("family", ("line", "grid"))
def test_ghk_beats_decay_seed_for_seed_on_line_and_grid(sweep, family):
    # The acceptance bar: on line/grid with n >= 64 GHK wins outright, not
    # just in the mean — every seed, strictly.
    pairs = zip(sweep[(family, "ghk")], sweep[(family, "decay")])
    assert all(g < d for g, d in pairs)


def test_ghk_line_matches_the_wave_bound(sweep):
    # On a path the message rides the uncontended wave: exactly D rounds,
    # every seed (the protocol is deterministic there).
    assert set(sweep[("line", "ghk")]) == {N - 1}


def test_dense_families_stay_within_small_factor(sweep):
    # On D <= 4 graphs GHK may lose its slot-period overhead to Decay but
    # must stay within a small constant factor — catches pathological
    # regressions in the slot schedule without over-pinning the constants.
    for family in ("gnp", "unit_disk"):
        ghk = statistics.mean(sweep[(family, "ghk")])
        decay = statistics.mean(sweep[(family, "decay")])
        assert ghk <= 3 * decay, f"{family}: GHK mean {ghk} vs Decay mean {decay}"
