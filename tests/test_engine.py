"""Tests for the round-synchronous engine and its channel model."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.protocol import (
    Action,
    Feedback,
    FeedbackKind,
    Protocol,
    available_protocols,
    protocol_class,
    register_protocol,
)
from repro.sim.topology import line, star


class Scripted(Protocol):
    """Plays a fixed list of actions and records every feedback."""

    def __init__(self, script):
        self.script = list(script)
        self.heard: list[Feedback] = []

    def act(self, round_index):
        if round_index < len(self.script):
            return self.script[round_index]
        return Action.sleep()

    def on_feedback(self, round_index, feedback):
        self.heard.append(feedback)


def test_clean_receipt_delivers_message_and_sender():
    net = line(3, source=0)  # 0 - 1 - 2
    protos = [
        Scripted([Action.transmit("hello")]),
        Scripted([Action.listen()]),
        Scripted([Action.listen()]),
    ]
    engine = Engine(net, protos, trace=True)
    stats = engine.step()
    assert stats.transmitters == (0,)
    assert stats.deliveries == ((1, 0),)
    assert stats.collisions == ()
    (fb,) = protos[1].heard
    assert fb.kind is FeedbackKind.MESSAGE
    assert fb.message == "hello"
    assert fb.sender == 0
    # node 2 is out of range of node 0: hears silence
    (fb2,) = protos[2].heard
    assert fb2.kind is FeedbackKind.SILENCE


def test_collision_with_detection_is_observable():
    net = star(3, source=0)  # hub 0, leaves 1 and 2
    protos = [
        Scripted([Action.listen()]),
        Scripted([Action.transmit("a")]),
        Scripted([Action.transmit("b")]),
    ]
    engine = Engine(net, protos, collision_detection=True)
    stats = engine.step()
    assert stats.collisions == (0,)
    assert stats.deliveries == ()
    (fb,) = protos[0].heard
    assert fb.kind is FeedbackKind.COLLISION
    assert fb.message is None


def test_collision_without_detection_reads_as_silence():
    net = star(3, source=0)
    protos = [
        Scripted([Action.listen()]),
        Scripted([Action.transmit("a")]),
        Scripted([Action.transmit("b")]),
    ]
    engine = Engine(net, protos, collision_detection=False)
    stats = engine.step()
    # ground truth still records the collision ...
    assert stats.collisions == (0,)
    # ... but the node cannot distinguish it from silence
    (fb,) = protos[0].heard
    assert fb.kind is FeedbackKind.SILENCE


def test_transmitters_are_half_duplex():
    net = line(2, source=0)
    protos = [Scripted([Action.transmit("x")]), Scripted([Action.transmit("y")])]
    engine = Engine(net, protos)
    engine.step()
    assert protos[0].heard == []
    assert protos[1].heard == []


def test_sleeping_nodes_hear_nothing():
    net = line(2, source=0)
    protos = [Scripted([Action.transmit("x")]), Scripted([Action.sleep()])]
    engine = Engine(net, protos)
    stats = engine.step()
    assert protos[1].heard == []
    assert stats.deliveries == ()


def test_run_stops_early_and_reports_totals():
    net = line(3, source=0)
    protos = [
        Scripted([Action.transmit("m")] * 5),
        Scripted([Action.listen()] * 5),
        Scripted([Action.listen()] * 5),
    ]
    engine = Engine(net, protos)
    result = engine.run(5, stop_when=lambda eng: len(protos[1].heard) >= 2)
    assert result.stopped_early
    assert result.rounds_run == 2
    assert result.total_deliveries == 2
    assert result.total_transmissions == 2


def test_run_result_covers_only_that_run():
    # A manual step() before run() must not leak into the run's result.
    net = line(2, source=0)
    protos = [Scripted([Action.transmit("m")] * 4), Scripted([Action.listen()] * 4)]
    engine = Engine(net, protos, trace=True)
    engine.step()
    result = engine.run(3)
    assert result.rounds_run == 3
    assert result.total_deliveries == 3
    assert result.total_transmissions == 3
    assert [s.round_index for s in result.history] == [1, 2, 3]


def test_trace_history_collected_only_when_requested():
    net = line(2, source=0)

    def make():
        return [Scripted([Action.transmit("m")]), Scripted([Action.listen()])]

    no_trace = Engine(net, make()).run(1)
    assert no_trace.history == ()
    traced = Engine(net, make(), trace=True).run(1)
    assert len(traced.history) == 1
    assert traced.history[0].deliveries == ((1, 0),)


def test_engine_rejects_wrong_protocol_count():
    with pytest.raises(SimulationError, match="one protocol per node"):
        Engine(line(3), [Scripted([]), Scripted([])])


def test_engine_rejects_shared_protocol_instance():
    proto = Scripted([])
    with pytest.raises(SimulationError, match="same Protocol instance"):
        Engine(line(2), [proto, proto])


def test_engine_rejects_n_bound_below_network_size():
    with pytest.raises(SimulationError, match="n_bound"):
        Engine(line(4), [Scripted([]) for _ in range(4)], n_bound=2)


def test_engine_rejects_invalid_action():
    class Broken(Protocol):
        def act(self, round_index):
            return "transmit"

        def on_feedback(self, round_index, feedback):
            pass

    engine = Engine(line(2), [Broken(), Broken()])
    with pytest.raises(SimulationError, match="expected an Action"):
        engine.step()


def test_action_transmit_requires_message():
    with pytest.raises(SimulationError):
        Action.transmit(None)


def test_node_context_wiring():
    net = star(4, source=0)
    protos = [Scripted([]) for _ in range(4)]
    Engine(net, protos, n_bound=16, seed=5)
    assert protos[0].ctx.is_source
    assert not protos[1].ctx.is_source
    assert protos[2].ctx.n_bound == 16
    assert protos[3].ctx.n_nodes == 4
    # per-node streams are distinct objects with independent draws
    assert protos[0].ctx.rng is not protos[1].ctx.rng


def test_registry_roundtrip():
    @register_protocol("scripted-test")
    class Registered(Scripted):  # simlint: disable=SL005
        pass

    assert "scripted-test" in available_protocols()
    assert protocol_class("scripted-test") is Registered
    assert Registered.name == "scripted-test"
    with pytest.raises(SimulationError, match="unknown protocol"):
        protocol_class("no-such-protocol")
    with pytest.raises(SimulationError, match="already registered"):
        register_protocol("scripted-test")(Scripted)


def test_run_until_all_informed_rejects_protocols_without_informed_flag():
    # A non-broadcast protocol used to die with a bare AttributeError deep
    # inside the stop predicate; now the misuse is named up front.
    from repro.sim.engine import run_until_all_informed

    engine = Engine(line(3), [Scripted([]) for _ in range(3)])
    with pytest.raises(SimulationError, match="'informed' flag"):
        run_until_all_informed(engine, 10, label="Scripted", seed=0)


def test_run_until_all_informed_names_the_offending_protocol():
    from repro.sim.decay import DecayProtocol
    from repro.sim.engine import run_until_all_informed

    protos = [DecayProtocol(), DecayProtocol(), Scripted([])]
    engine = Engine(line(3), protos)
    with pytest.raises(SimulationError, match="Scripted at node 2"):
        run_until_all_informed(engine, 10, label="mixed", seed=0)


def test_determinism_same_seed_same_trace():
    from repro.sim.decay import run_decay
    from repro.sim.topology import gnp

    net = gnp(30, 0.2, seed=8)
    a = run_decay(net, seed=11, trace=True)
    b = run_decay(net, seed=11, trace=True)
    assert a.rounds_to_delivery == b.rounds_to_delivery
    assert a.sim.history == b.sim.history
