"""Tests for the simsan runtime sanitizer and the divergence bisector.

Three layers: clean sanitized runs across backends, engines, and fault
schedules must pass with zero violations; deliberately corrupted engines
must be caught with the right check id and round number; and the
bisector must localize an injected wrong-feedback backend to exactly the
injected round, dumping a well-formed repro bundle.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.simsan import (
    CHECKS,
    Sanitizer,
    SanitizerConfig,
    cache_discipline_violation,
    crashed_plan_violation,
    mask_contract_violation,
    sanitize_from_env,
)
from repro.analysis.simsan.bisect import (
    ReplaySpec,
    WrongFeedbackOperand,
    bisect_run,
    first_divergent_round,
    write_bundle,
)
from repro.analysis.simsan.bisect import main as bisect_main
from repro.errors import BroadcastFailure, SanitizerError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import RoundPlan
from repro.sim.core.batch import ArrayEngine, select_kernel_operand
from repro.sim.core.stats import conservation_violation
from repro.sim.engine import Engine
from repro.sim.faults import sample_fault_schedule
from repro.sim.runners import broadcast_spec, run_broadcast, run_broadcast_batch
from repro.sim.topology import from_spec

BACKENDS = ("dense", "sparse", "bitpacked")


def _params(backend, **overrides):
    return ProtocolParams.fast().with_overrides(channel_backend=backend, **overrides)


def _decay_engine(net, *, seed=0, sanitize=None, backend="dense", **kwargs):
    return ArrayEngine(
        net,
        broadcast_spec("decay").array_factory(message="broadcast"),
        seed=seed,
        collision_detection=False,
        params=_params(backend),
        sanitize=sanitize,
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Clean sanitized runs: every backend, both engines, every fault family
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", ("array", "object"))
def test_sanitized_fault_runs_pass_clean(backend, engine):
    net = from_spec("gnp", 60, seed=3, p=0.15)
    for knobs in (
        {"crash_rate": 0.1},
        {"loss_rate": 0.2},
        {"jammers": 2},
        {"edge_flip_rate": 0.02},
    ):
        faults = sample_fault_schedule(net, seed=3, horizon=400, **knobs)
        params = _params(backend, fault_budget_slack=4.0)
        result = run_broadcast(
            "ghk", net, params, seed=3, engine=engine, sanitize=True, faults=faults
        )
        assert result.sim.rounds_run > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_sanitized_runs_match_unsanitized(backend):
    net = from_spec("grid", 49, seed=1)
    params = _params(backend)
    on = run_broadcast("decay", net, params, seed=5, sanitize=True)
    off = run_broadcast("decay", net, params, seed=5, sanitize=False)
    assert on.rounds_to_delivery == off.rounds_to_delivery
    assert on.sim.total_transmissions == off.sim.total_transmissions
    assert on.informed_rounds == off.informed_rounds


def test_batch_fused_path_is_sanitized_and_clean():
    nets = [from_spec("grid", 36, seed=s) for s in range(3)]
    results = run_broadcast_batch(
        "decay", nets, seeds=[0, 1, 2], params=ProtocolParams.fast(), sanitize=True
    )
    assert len(results) == 3
    assert not any(isinstance(r, BroadcastFailure) for r in results)


def test_sampled_differential_mode_runs_clean():
    # Tiny full_diff_max_n forces the sampled-row path on a small network.
    net = from_spec("grid", 49, seed=2)
    config = SanitizerConfig(full_diff_max_n=8, diff_sample_rows=16)
    engine = _decay_engine(net, seed=2, sanitize=config, backend="bitpacked")
    result = engine.run(500, stop_when=lambda eng: eng.protocol.done())
    assert result.rounds_run > 0


# --------------------------------------------------------------------- #
# Enablement: parameter, environment variable, and the off switch
# --------------------------------------------------------------------- #

def test_sanitize_from_env_parsing():
    assert not sanitize_from_env({})
    for value in ("", "0", "false", "NO", "off"):
        assert not sanitize_from_env({"REPRO_SANITIZE": value})
    for value in ("1", "true", "YES", "on", "anything-else"):
        assert sanitize_from_env({"REPRO_SANITIZE": value})


def test_env_variable_opts_engines_in(monkeypatch):
    net = from_spec("grid", 16, seed=0)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert _decay_engine(net).sanitized
    # An explicit sanitize=False beats the environment.
    assert not _decay_engine(net, sanitize=False).sanitized
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not _decay_engine(net).sanitized
    assert _decay_engine(net, sanitize=True).sanitized


def test_object_engine_exposes_sanitized_flag():
    net = from_spec("grid", 16, seed=0)
    protocols = [
        broadcast_spec("decay").protocol_factory(message="m") for _ in range(net.n)
    ]
    engine = Engine(net, protocols, params=ProtocolParams.fast(), sanitize=True)
    assert engine.sanitized
    protocols = [
        broadcast_spec("decay").protocol_factory(message="m") for _ in range(net.n)
    ]
    assert not Engine(net, protocols, params=ProtocolParams.fast()).sanitized


# --------------------------------------------------------------------- #
# Detection: corrupted engines are caught with check id + round number
# --------------------------------------------------------------------- #

class _BadPlanProtocol:
    """Emits one configurable bad plan; honest listening otherwise."""

    def __init__(self, bad_round, make_plan):
        self._bad_round = bad_round
        self._make_plan = make_plan
        self._n = 0

    def setup(self, ctx):
        self._n = ctx.n_nodes

    def act(self, round_index):
        if round_index == self._bad_round:
            return self._make_plan(self._n)
        return RoundPlan(
            transmit=np.zeros(self._n, dtype=bool),
            listen=np.ones(self._n, dtype=bool),
        )

    def on_feedback(self, round_index, channel):
        pass

    def done(self):
        return False


def _engine_with_protocol(protocol, *, n=16, sanitize=True):
    net = from_spec("grid", n, seed=0)
    return ArrayEngine(
        net,
        protocol,
        seed=0,
        collision_detection=True,
        params=ProtocolParams.fast(),
        sanitize=sanitize,
    )


def test_overlapping_masks_raise_kernel_disjoint_with_round():
    def overlap(n):
        everyone = np.ones(n, dtype=bool)
        return RoundPlan(transmit=everyone, listen=everyone)

    engine = _engine_with_protocol(_BadPlanProtocol(2, overlap))
    engine.step()
    engine.step()
    with pytest.raises(SanitizerError) as excinfo:
        engine.step()
    err = excinfo.value
    assert err.check == "kernel.disjoint"
    assert err.round_index == 2
    assert err.backend in BACKENDS
    assert "round=2" in str(err)


def test_non_boolean_masks_raise_mask_shape():
    def int_masks(n):
        return RoundPlan(
            transmit=np.zeros(n, dtype=np.int8),
            listen=np.ones(n, dtype=np.int8),
        )

    engine = _engine_with_protocol(_BadPlanProtocol(0, int_masks))
    with pytest.raises(SanitizerError) as excinfo:
        engine.step()
    assert excinfo.value.check == "kernel.mask-shape"
    assert excinfo.value.round_index == 0


def test_skewed_traffic_counter_raises_conserve_traffic():
    net = from_spec("grid", 36, seed=1)
    engine = _decay_engine(net, seed=1, sanitize=True)
    for _ in range(3):
        engine.step()
    engine._traffic[0, 5] += 1  # corrupt node 5's transmissions counter
    with pytest.raises(SanitizerError) as excinfo:
        engine.step()
    err = excinfo.value
    assert err.check == "conserve.traffic"
    assert err.round_index == 3
    assert err.details["node"] == 5
    assert err.details["row"] == "transmissions"


def test_post_resolve_mask_mutation_raises_differential_check():
    net = from_spec("grid", 36, seed=4)
    engine = _decay_engine(net, seed=4, sanitize=True)
    plan = engine.begin_round()
    channel = engine.resolve_round()
    # Corrupt the already-resolved plan: flip a non-listening node's
    # transmit bit, so the dense reference recomputation disagrees with
    # the channel the kernel actually produced.
    victim = int(np.flatnonzero(~plan.listen)[0])
    plan.transmit[victim] = not plan.transmit[victim]
    with pytest.raises(SanitizerError) as excinfo:
        engine.complete_round(channel)
    assert excinfo.value.check.startswith("diff.")
    assert excinfo.value.round_index == 0


def test_wrong_feedback_operand_caught_at_injected_round():
    net = from_spec("grid", 36, seed=2)
    params = _params("sparse")
    operand = WrongFeedbackOperand(select_kernel_operand(net, params), wrong_from=4)
    engine = ArrayEngine(
        net,
        broadcast_spec("ghk").array_factory(message="broadcast"),
        seed=2,
        collision_detection=True,
        params=params,
        kernel_operand=operand,  # type: ignore[arg-type]
        sanitize=True,
    )
    with pytest.raises(SanitizerError) as excinfo:
        engine.run(500, stop_when=lambda eng: eng.protocol.done())
    err = excinfo.value
    assert err.check.startswith("diff.")
    assert err.round_index == 4
    assert err.backend == "sparse"


def test_unsanitized_engine_accepts_the_same_corruption():
    # The control: without the sanitizer the skewed counter goes unnoticed,
    # which is exactly why the detection tests above prove anything.
    net = from_spec("grid", 36, seed=1)
    engine = _decay_engine(net, seed=1, sanitize=False)
    assert not engine.sanitized
    for _ in range(3):
        engine.step()
    engine._traffic[0, 5] += 1
    engine.step()  # no error


# --------------------------------------------------------------------- #
# The pure check predicates
# --------------------------------------------------------------------- #

def test_mask_contract_violation_predicate():
    ok_t = np.array([True, False, False])
    ok_l = np.array([False, True, False])
    assert mask_contract_violation(3, ok_t, ok_l) is None
    check, _ = mask_contract_violation(3, ok_t.astype(np.int8), ok_l)
    assert check == "kernel.mask-shape"
    check, _ = mask_contract_violation(4, ok_t, ok_l)
    assert check == "kernel.mask-shape"
    check, message = mask_contract_violation(3, ok_t, np.array([True, True, False]))
    assert check == "kernel.disjoint"
    assert "node 0" in message


def test_crashed_plan_violation_predicate():
    transmit = np.array([True, False, False])
    listen = np.array([False, True, False])
    crashed = np.array([False, False, True])
    assert crashed_plan_violation(transmit, listen, crashed) is None
    problem = crashed_plan_violation(transmit, listen, np.array([True, False, False]))
    assert problem is not None and "node 0" in problem and "transmits" in problem


def test_cache_discipline_detects_thawed_cache():
    net = from_spec("grid", 16, seed=0)
    indptr, _ = net.csr()
    assert cache_discipline_violation(net, check_dense=False) is None
    indptr.setflags(write=True)  # simlint: disable=SL004
    try:
        problem = cache_discipline_violation(net, check_dense=False)
        assert problem is not None and "indptr" in problem
        with pytest.raises(SanitizerError) as excinfo:
            Sanitizer(
                SanitizerConfig(differential=False),
                network=net,
                operand=select_kernel_operand(net, _params("sparse")),
                seed=0,
            )
        assert excinfo.value.check == "cache.readonly"
        assert excinfo.value.round_index == -1
    finally:
        indptr.setflags(write=False)


def test_conservation_violation_predicate():
    net = from_spec("grid", 25, seed=0)
    result = run_broadcast("decay", net, ProtocolParams.fast(), seed=1).sim
    assert conservation_violation(result) is None
    skewed = dataclasses.replace(
        result, total_transmissions=result.total_transmissions + 1
    )
    problem = conservation_violation(skewed)
    assert problem is not None and "total_transmissions" in problem


# --------------------------------------------------------------------- #
# The divergence bisector
# --------------------------------------------------------------------- #

def test_first_divergent_round_helper():
    a = [b"a", b"b", b"c"]
    assert first_divergent_round(a, list(a)) is None
    assert first_divergent_round(a, [b"a", b"x", b"c"]) == 1
    assert first_divergent_round(a, [b"x", b"b", b"c"]) == 0
    assert first_divergent_round(a, a[:2]) == 2  # shorter run diverges at its end
    assert first_divergent_round([], []) is None


def test_backends_agree_without_injection():
    spec = ReplaySpec(protocol="ghk", topology="grid", n=36, seed=4, backend="sparse")
    outcome = bisect_run(spec)
    assert outcome.divergent_round is None
    assert outcome.active_rounds == outcome.reference_rounds > 0


@pytest.mark.parametrize("inject_at", [0, 5])
def test_bisector_pinpoints_injected_round_exactly(inject_at):
    spec = ReplaySpec(protocol="ghk", topology="grid", n=36, seed=4, backend="sparse")
    outcome = bisect_run(spec, inject_wrong_at=inject_at)
    assert outcome.divergent_round == inject_at


def test_bundle_contents(tmp_path):
    spec = ReplaySpec(
        protocol="ghk", topology="grid", n=36, seed=4, backend="bitpacked"
    )
    outcome = bisect_run(spec, inject_wrong_at=3)
    assert outcome.divergent_round == 3
    path = write_bundle(spec, 3, tmp_path, inject_wrong_at=3)
    bundle = json.loads(path.read_text())
    assert bundle["schema"] == "simsan-bundle-1"
    assert bundle["spec"]["backend"] == "bitpacked"
    assert bundle["reference_backend"] == "dense"
    assert bundle["divergent_round"] == 3
    for side in ("active", "reference"):
        capture = bundle[side]
        assert capture["round"] == 3
        assert capture["transmit_packed"] and capture["listen_packed"]
        assert capture["adjacency_version"] == 0
        assert capture["coin_cursor"]["engine_stream_state"]
        assert capture["coin_cursor"]["node_streams_sha256"]
    # Same seed, same protocol: the divergence is in the channel feedback,
    # visible in the digests, while the round-3 plans still agree (the
    # corruption only lands when round 3 resolves).
    assert bundle["active"]["digest"] != bundle["reference"]["digest"]
    assert bundle["active"]["transmit_packed"] == bundle["reference"]["transmit_packed"]


def test_bisect_cli_exit_codes(tmp_path, capsys):
    base = [
        "--protocol", "decay", "--topology", "grid", "--n", "25",
        "--seed", "1", "--backend", "bitpacked", "--out-dir", str(tmp_path),
    ]
    assert bisect_main(base) == 0
    assert "no divergence" in capsys.readouterr().out
    assert bisect_main([*base, "--inject-wrong-at", "2"]) == 1
    out = capsys.readouterr().out
    assert "first divergent round: 2" in out
    assert "simsan-bundle-decay-grid-n25-seed1-bitpacked-round2.json" in out


def test_bisect_cli_rejects_injection_with_edge_flips(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        bisect_main(
            [
                "--topology", "grid", "--n", "25", "--backend", "sparse",
                "--edge-flip-rate", "0.1", "--inject-wrong-at", "1",
                "--out-dir", str(tmp_path),
            ]
        )
    assert excinfo.value.code == 2


# --------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------- #

def test_simsan_module_main_lists_every_check(capsys):
    from repro.analysis.simsan.__main__ import main as simsan_main

    assert simsan_main([]) == 0
    out = capsys.readouterr().out
    for check in CHECKS:
        assert check.id in out
    assert "REPRO_SANITIZE" in out


def test_demo_cli_sanitize_flag(capsys):
    from repro.sim.demo import main as demo_main

    code = demo_main(
        ["--topology", "grid", "--n", "25", "--protocol", "decay", "--json",
         "--sanitize"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["sanitized"] is True
    assert payload["status"] == "delivered"
