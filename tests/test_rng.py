"""Tests for seeded per-node random streams."""

import pytest

from repro.sim.rng import SeededStreams, node_streams, stream


def test_same_seed_same_draws():
    a = node_streams(42, 5)
    b = node_streams(42, 5)
    for ga, gb in zip(a, b):
        assert ga.random(8).tolist() == gb.random(8).tolist()


def test_different_seeds_differ():
    a = node_streams(1, 3)
    b = node_streams(2, 3)
    assert a[0].random(8).tolist() != b[0].random(8).tolist()


def test_node_streams_are_mutually_independent():
    a, b = node_streams(7, 2)
    assert a.random(8).tolist() != b.random(8).tolist()


def test_stream_domain_separation():
    assert stream(0, 1).random(4).tolist() != stream(0, 2).random(4).tolist()
    assert stream(0, 1).random(4).tolist() == stream(0, 1).random(4).tolist()


def test_seeded_streams_shape_and_reproducibility():
    s = SeededStreams(9, 4)
    assert len(s) == 4
    assert s.seed == 9
    t = SeededStreams(9, 4)
    assert s.engine.random(4).tolist() == t.engine.random(4).tolist()
    assert s.nodes[3].random(4).tolist() == t.nodes[3].random(4).tolist()


def test_invalid_counts_rejected():
    with pytest.raises(ValueError):
        node_streams(0, -1)
    with pytest.raises(ValueError):
        SeededStreams(0, 0)
