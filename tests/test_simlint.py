"""Self-tests for the simlint static-analysis suite.

Fixture-driven: every rule has a good/bad corpus under
``tests/fixtures/simlint/`` (laid out with ``sim/`` / ``sim/core/`` path
segments so the path-scoped rules engage), plus suppression, parse-error
and cache behaviour checks and a smoke run over the real tree.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.core import RuleEngine, path_has_segments
from repro.analysis.simlint import DEFAULT_RULES, build_engine, main
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"
REPO = Path(__file__).parent.parent


def rules_hit(*paths):
    report = build_engine().run(paths)
    return sorted({f.rule for f in report.findings}), report


# --------------------------------------------------------------------- #
# Per-rule fixtures: each rule fires on its bad corpus, stays silent on
# its good corpus.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize(
    "rule, corpus",
    [
        ("SL001", "sl001"),
        ("SL002", "sl002"),
        ("SL003", "sl003"),
        ("SL004", "sl004"),
        ("SL006", "sl006"),
        ("SL007", "sl007"),
    ],
)
def test_rule_fires_on_bad_and_passes_good(rule, corpus):
    hit_bad, bad_report = rules_hit(FIXTURES / corpus / "bad")
    assert hit_bad == [rule]
    assert not bad_report.clean
    hit_good, good_report = rules_hit(FIXTURES / corpus / "good")
    assert hit_good == []
    assert good_report.clean


def test_sl001_counts_every_violation_flavor():
    # stdlib import, np.random.seed, np.random.rand, seedless default_rng.
    _, report = rules_hit(FIXTURES / "sl001" / "bad")
    assert len(report.findings) == 4


def test_sl002_allowlists_batch_telemetry_timers():
    _, report = rules_hit(FIXTURES / "sl002" / "good")
    assert report.clean  # perf_counter in batch.py is telemetry, allowed
    hit, _ = rules_hit(FIXTURES / "sl002" / "bad")
    assert hit == ["SL002"]


def test_sl003_reports_missing_method_arity_and_n():
    _, report = rules_hit(FIXTURES / "sl003" / "bad")
    messages = " | ".join(f.message for f in report.findings)
    assert "sender_ids" in messages          # missing method
    assert "transmit_counts" in messages     # wrong arity
    assert "`n`" in messages                 # missing n


def test_sl007_flags_every_construction_flavor():
    _, report = rules_hit(FIXTURES / "sl007" / "bad")
    # Module-level SparseOperand, in-function DenseOperand, and the
    # module-attribute channel.BitOperand spelling all fire.
    assert len(report.findings) == 3
    messages = " | ".join(f.message for f in report.findings)
    for name in ("SparseOperand", "DenseOperand", "BitOperand"):
        assert name in messages
    assert "select_kernel_operand" in messages


def test_sl007_exempts_factories_kernel_module_and_non_sim_code():
    hit, _ = rules_hit(FIXTURES / "sl007" / "good")
    assert hit == []


def test_sl005_missing_array_counterpart():
    hit, report = rules_hit(FIXTURES / "sl005" / "bad_missing_array")
    assert hit == ["SL005"]
    assert "no array counterpart" in report.findings[0].message


def test_sl005_uncovered_by_equivalence_tests():
    hit, report = rules_hit(FIXTURES / "sl005" / "bad_uncovered")
    assert hit == ["SL005"]
    assert "equivalence" in report.findings[0].message


def test_sl005_clean_when_paired_and_covered():
    hit, _ = rules_hit(FIXTURES / "sl005" / "good")
    assert hit == []


def test_sl005_coverage_check_skipped_without_equivalence_module():
    # Linting just the registering file must not demand coverage proof.
    hit, _ = rules_hit(FIXTURES / "sl005" / "bad_uncovered" / "protocols.py")
    assert hit == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #

def test_inline_and_file_suppressions():
    _, report = rules_hit(FIXTURES / "suppress")
    # Only the file whose disable comment names a *different* rule fires.
    assert [f.path for f in report.findings] == [
        str(FIXTURES / "suppress" / "sim" / "unsuppressed.py")
    ]
    assert report.findings[0].rule == "SL001"


def test_suppression_applies_to_project_level_findings():
    engine = build_engine()
    source = textwrap.dedent(
        """
        def register_protocol(name):
            def deco(cls):
                return cls
            return deco

        @register_protocol("solo")
        class SoloProtocol:  # simlint: disable=SL005
            pass
        """
    )
    result = engine.analyze_source("protocols.py", source)
    registry_rule = next(r for r in engine.rules if r.id == "SL005")
    findings = registry_rule.finalize({"protocols.py": result.facts})
    assert findings, "sanity: the raw project finding exists"
    assert all(result.suppresses(f) for f in findings)


# --------------------------------------------------------------------- #
# Engine mechanics: parse errors, caching, path scoping
# --------------------------------------------------------------------- #

def test_parse_error_becomes_sl000_finding():
    hit, report = rules_hit(FIXTURES / "parse_error")
    assert hit == ["SL000"]
    assert "does not parse" in report.findings[0].message


def test_missing_path_is_a_usage_error():
    with pytest.raises(AnalysisError, match="no such file"):
        build_engine().run([FIXTURES / "does-not-exist"])


def test_cache_round_trip(tmp_path):
    cache = tmp_path / "cache.json"
    target = FIXTURES / "sl001" / "bad"
    first = build_engine().run([target], cache_path=cache)
    second = build_engine().run([target], cache_path=cache)
    assert first.files_from_cache == 0
    assert second.files_from_cache == second.files_checked > 0
    assert [f.as_dict() for f in second.findings] == [
        f.as_dict() for f in first.findings
    ]


def test_cache_invalidates_on_content_change(tmp_path):
    cache = tmp_path / "cache.json"
    target = tmp_path / "sim" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import numpy as np\nnp.random.seed(1)\n")
    first = build_engine().run([target], cache_path=cache)
    assert len(first.findings) == 1
    target.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
    second = build_engine().run([target], cache_path=cache)
    assert second.files_from_cache == 0
    assert second.clean


def test_cache_invalidates_when_rules_fingerprint_changes(tmp_path, monkeypatch):
    import repro.analysis.core as analysis_core

    cache = tmp_path / "cache.json"
    target = FIXTURES / "sl001" / "bad"
    build_engine().run([target], cache_path=cache)
    warm = build_engine().run([target], cache_path=cache)
    assert warm.files_from_cache == warm.files_checked > 0
    # Simulate a rule edit: a different fingerprint must reject both the
    # stored payload ("rules" field) and every per-file hash salt.
    monkeypatch.setattr(
        analysis_core, "rules_fingerprint", lambda: "different-ruleset"
    )
    cold = build_engine().run([target], cache_path=cache)
    assert cold.files_from_cache == 0
    assert [f.as_dict() for f in cold.findings] == [
        f.as_dict() for f in warm.findings
    ]


def test_cache_payload_carries_rules_fingerprint(tmp_path):
    from repro.analysis.core import rules_fingerprint

    cache = tmp_path / "cache.json"
    build_engine().run([FIXTURES / "sl001" / "bad"], cache_path=cache)
    payload = json.loads(cache.read_text())
    assert payload["rules"] == rules_fingerprint()


def test_fixture_dirs_excluded_from_directory_walks():
    files = RuleEngine.expand_paths([REPO / "tests"])
    assert files, "tests/ must contain python files"
    assert not any("fixtures" in Path(f).parts for f in files)


def test_path_scoping_helper():
    assert path_has_segments("src/repro/sim/core/batch.py", ("sim", "core"))
    assert not path_has_segments("src/repro/simulator/core.py", ("sim",))
    assert path_has_segments("tests/fixtures/simlint/sl001/bad/sim/x.py", ("sim",))


# --------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------- #

def test_cli_json_output_and_exit_code(capsys):
    code = main([str(FIXTURES / "sl006" / "bad"), "--no-cache", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert {f["rule"] for f in payload["findings"]} == {"SL006"}


def test_cli_github_format_emits_error_annotations(capsys):
    code = main([str(FIXTURES / "sl006" / "bad"), "--no-cache", "--format", "github"])
    assert code == 1
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines, "findings must produce annotations"
    for line in lines:
        assert line.startswith("::error file=")
        assert "title=simlint SL006" in line
        assert "::" in line.split("title=", 1)[1]
        properties = line[len("::error ") :].split("::", 1)[0]
        fields = dict(part.split("=", 1) for part in properties.split(","))
        assert int(fields["line"]) >= 1
        assert int(fields["col"]) >= 1  # ast columns are 0-based; annotations 1-based


def test_cli_github_format_clean_run_prints_nothing(capsys):
    code = main([str(FIXTURES / "sl006" / "good"), "--no-cache", "--format", "github"])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_github_escaping():
    from repro.analysis.core import Finding
    from repro.analysis.simlint import _github_annotation

    finding = Finding(
        rule="SL001", path="src/a,b:c.py", line=3, col=0, message="50% bad\nnews"
    )
    line = _github_annotation(finding)
    assert "file=src/a%2Cb%3Ac.py" in line
    assert line.endswith("::50%25 bad%0Anews")


def test_cli_select_filters_rules(capsys):
    code = main(
        [str(FIXTURES / "sl006" / "bad"), "--no-cache", "--select", "SL001"]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_list_rules_and_explain(capsys):
    assert main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for cls in DEFAULT_RULES:
        assert cls.id in listed
    assert main(["--explain", "SL004"]) == 0
    assert "setflags" in capsys.readouterr().out


def test_cli_usage_errors_exit_2(capsys):
    assert main(["--explain", "SL999"]) == 2
    assert main([str(FIXTURES / "nope"), "--no-cache"]) == 2
    assert main(["src", "--no-cache", "--select", "SLBOGUS"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err


# --------------------------------------------------------------------- #
# The real tree is clean — the repo's own determinism gate.
# --------------------------------------------------------------------- #

def test_real_tree_is_clean():
    report = build_engine().run([REPO / "src", REPO / "tests"])
    assert report.findings == []
