"""Bit-packed channel backend: bitwise-identical runs vs dense and sparse.

The bit-packed popcount backend must reproduce the other two backends
*exactly* — same informed sets, same round counts, same channel totals,
same per-round ground-truth traces — on every topology family, every
protocol, mixed-backend batches, and faulted runs whose edge flips force
the packed operand to be rebuilt mid-run.  Plus the packing layer's own
contract: ``pack_mask``/``unpack_mask`` round-trip for every n, including
sizes not divisible by 64 (tail-word masking).
"""

import numpy as np
import pytest

from repro.params import ProtocolParams
from repro.sim import ArrayEngine, BatchEngine, BatchItem, DecayArrayProtocol
from repro.sim.core import (
    BitOperand,
    DenseOperand,
    resolve_channel_backend,
    select_kernel_operand,
)
from repro.sim.core.channel import pack_mask, unpack_mask
from repro.sim.faults import EdgeFlip, FaultSchedule
from repro.sim.runners import run_broadcast
from repro.sim.topology import from_spec, gnp, line, star

FAST = ProtocolParams.fast()
DENSE = FAST.with_overrides(channel_backend="dense")
SPARSE = FAST.with_overrides(channel_backend="sparse")
BITPACKED = FAST.with_overrides(channel_backend="bitpacked")

#: The full topology suite: diameter-bound, contention-bound, geometric,
#: bottleneck, and both random regimes.
FAMILIES = ("line", "ring", "star", "grid", "gnp", "dumbbell", "unit_disk")


def run_three(protocol, family, seed, **kwargs):
    net = from_spec(family, 24, seed=seed)
    return tuple(
        run_broadcast(protocol, net, params, seed=seed, trace=True, **kwargs)
        for params in (DENSE, SPARSE, BITPACKED)
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", (0, 3))
@pytest.mark.parametrize("protocol", ["decay", "ghk"])
def test_broadcast_backends_are_bitwise_identical(family, seed, protocol):
    dense, sparse, bit = run_three(protocol, family, seed)
    assert bit.rounds_to_delivery == dense.rounds_to_delivery
    assert bit.informed_rounds == dense.informed_rounds
    assert bit.budget == dense.budget
    assert bit.sim.history == dense.sim.history  # per-round ground truth
    assert bit.sim == dense.sim  # channel totals and early-stop flag too
    assert bit == dense  # the full result dataclasses match field-for-field
    assert bit == sparse


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("k", [1, 3])
def test_multimessage_backends_are_bitwise_identical(family, k):
    dense, sparse, bit = run_three(
        "multimessage", family, seed=1, options={"k_messages": k}
    )
    assert bit.rounds_to_delivery == dense.rounds_to_delivery
    assert bit.informed_rounds == dense.informed_rounds
    assert bit.message_rounds == dense.message_rounds
    assert bit.sim.history == dense.sim.history
    assert bit == dense
    assert bit == sparse


class TestFaultedRuns:
    """Edge flips rebuild the operand mid-run; the packed rebuild must keep
    every backend on the same trajectory (same perceived rounds, same
    totals), fault schedule included."""

    #: Two structurally different schedules: pure topology churn, and
    #: churn combined with message loss (which consumes extra randomness).
    SCHEDULES = (
        FaultSchedule(
            edge_flips=(
                EdgeFlip(round_index=2, u=0, v=5),
                EdgeFlip(round_index=4, u=1, v=2),
                EdgeFlip(round_index=7, u=0, v=5),
            )
        ),
        FaultSchedule(
            edge_flips=(
                EdgeFlip(round_index=1, u=3, v=9),
                EdgeFlip(round_index=6, u=3, v=9),
            ),
            loss_rate=0.2,
        ),
    )

    @pytest.mark.parametrize("schedule_index", [0, 1])
    @pytest.mark.parametrize("family", ["grid", "gnp"])
    def test_faulted_runs_are_bitwise_identical(self, schedule_index, family):
        schedule = self.SCHEDULES[schedule_index]
        net = from_spec(family, 24, seed=2)
        results = [
            run_broadcast(
                "ghk", net, params, seed=2, trace=True, faults=schedule
            )
            for params in (DENSE, SPARSE, BITPACKED)
        ]
        dense, sparse, bit = results
        assert bit.sim.history == dense.sim.history
        assert bit.sim == dense.sim
        assert bit == dense
        assert bit == sparse

    def test_flip_rebuilds_a_bitpacked_operand(self):
        schedule = self.SCHEDULES[0]
        engine = ArrayEngine(
            from_spec("grid", 16, seed=0),
            DecayArrayProtocol(),
            params=BITPACKED,
            faults=schedule,
        )
        before = engine.round_operand()
        assert isinstance(before, BitOperand)
        engine.run(5)  # past the round-2 flip
        after = engine.round_operand()
        assert isinstance(after, BitOperand)
        assert after is not before
        assert not np.array_equal(after.words, before.words)


class TestPackRoundTrip:
    """pack/unpack are exact inverses, including tail-word masking."""

    @pytest.mark.parametrize(
        "n", [1, 3, 63, 64, 65, 127, 128, 129, 200, 1000]
    )
    def test_round_trip_all_sizes(self, n):
        rng = np.random.default_rng(n)
        for density in (0.0, 0.1, 0.5, 1.0):
            mask = rng.random(n) < density
            words = pack_mask(mask)
            assert words.dtype == np.uint64
            assert words.shape == (-(-n // 64),)
            assert np.array_equal(unpack_mask(words, n), mask)

    @pytest.mark.parametrize("n", [5, 64, 70, 130])
    def test_round_trip_batched(self, n):
        rng = np.random.default_rng(n)
        mask = rng.random((4, n)) < 0.4
        words = pack_mask(mask)
        assert words.shape == (4, -(-n // 64))
        assert np.array_equal(unpack_mask(words, n), mask)

    @pytest.mark.parametrize("n", [1, 65, 127, 190])
    def test_tail_bits_beyond_n_stay_zero(self, n):
        # The packed form must never carry stray bits past n: popcounts
        # would silently overcount neighbours on every AND against them.
        mask = np.ones(n, dtype=bool)
        words = pack_mask(mask)
        if n % 64:
            assert int(words[-1]) >> (n % 64) == 0
        total = int(sum(bin(int(w)).count("1") for w in words))
        assert total == n

    def test_adjacency_packing_matches_pack_mask(self):
        net = gnp(70, 0.3, seed=5)
        op = BitOperand(*net.csr())
        expected = pack_mask(net.adjacency_matrix().astype(bool))
        assert np.array_equal(op.words, expected)


class TestBackendSelection:
    def test_explicit_backend_always_wins(self):
        net = from_spec("grid", 16, seed=0)
        assert resolve_channel_backend(net, BITPACKED) == "bitpacked"

    def test_auto_picks_bitpacked_for_large_dense_graphs(self):
        # Isolate the density × size rule with the floors dialed down.
        auto = FAST.with_overrides(sparse_min_n=0, bitpacked_min_n=8)
        dense_net = gnp(8, 0.9, seed=0)  # density well above the 0.25 threshold
        assert resolve_channel_backend(dense_net, auto) == "bitpacked"
        # Below the bitpacked floor the matmul keeps dense-density graphs.
        assert (
            resolve_channel_backend(star(4), auto.with_overrides(bitpacked_min_n=8))
            == "dense"
        )
        # Sparse-density graphs still go to the CSR kernel, not bitpacked.
        assert resolve_channel_backend(line(64), auto) == "sparse"

    def test_select_builds_the_matching_operand(self):
        net = line(32)
        assert isinstance(select_kernel_operand(net, BITPACKED), BitOperand)

    def test_bitpacked_engine_never_builds_the_dense_matrix(self):
        # Like the CSR backend, the packed operand is built from CSR; any
        # adjacency_matrix() call would reintroduce the n² allocation.
        net = line(32)
        net.adjacency_matrix = None  # any access would raise TypeError
        engine = ArrayEngine(net, DecayArrayProtocol(), params=BITPACKED)
        engine.run(20)
        assert engine.backend == "bitpacked"


class TestBatchMixedBackends:
    def test_mixed_backend_items_do_not_share_an_operand(self):
        net = from_spec("grid", 16, seed=0)
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=200,
                seed=s,
                collision_detection=False,
                params=params,
            )
            for s, params in enumerate([DENSE, SPARSE, BITPACKED, BITPACKED])
        ]
        engine = BatchEngine(items)
        backends = [e.backend for e in engine.engines]
        assert backends == ["dense", "sparse", "bitpacked", "bitpacked"]
        # One shared operand per backend, not per item.
        assert len({id(e.kernel_operand) for e in engine.engines}) == 3

    def test_mixed_backend_batch_results_are_identical_per_seed(self):
        net = from_spec("grid", 16, seed=0)
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=200,
                seed=7,
                collision_detection=False,
                params=params,
            )
            for params in (DENSE, SPARSE, BITPACKED)
        ]
        dense_out, sparse_out, bit_out = BatchEngine(items).run()
        assert dense_out.completed == sparse_out.completed == bit_out.completed
        assert dense_out.sim == bit_out.sim
        assert sparse_out.sim == bit_out.sim
        assert np.array_equal(
            dense_out.item.protocol.informed_round,
            bit_out.item.protocol.informed_round,
        )
