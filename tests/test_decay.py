"""Acceptance tests: Decay broadcast on the topology suite.

The ISSUE's bar: Decay delivers the source message to all nodes on line,
grid, G(n,p), and dumbbell topologies (n up to 256) within
``ProtocolParams.fast()`` budgets, deterministically reproducible from a
seed, with collision events observable through the engine's feedback API.
"""

import pytest

from repro.errors import BroadcastFailure
from repro.params import ProtocolParams
from repro.sim.decay import DecayProtocol, run_decay
from repro.sim.engine import Engine
from repro.sim.topology import dumbbell, gnp, grid2d, line, ring, star, unit_disk

FAST = ProtocolParams.fast()


class TestDelivery:
    @pytest.mark.parametrize(
        "net",
        [
            line(256),
            grid2d(16, 16),
            gnp(256, 0.05, seed=2),
            dumbbell(126, 4),
        ],
        ids=["line-256", "grid-16x16", "gnp-256", "dumbbell-256"],
    )
    def test_delivers_on_acceptance_topologies_n256(self, net):
        result = run_decay(net, FAST, seed=0)
        assert result.n == 256
        assert result.rounds_to_delivery <= result.budget
        assert max(result.informed_rounds) < result.rounds_to_delivery + 1
        assert result.informed_rounds[net.source] == 0

    @pytest.mark.parametrize(
        "net",
        [
            line(2),
            ring(17, source=5),
            star(64),
            star(64, source=9),
            unit_disk(48, 0.35, seed=4),
            grid2d(n=50),
        ],
        ids=["line-2", "ring-17", "star-hub-src", "star-leaf-src", "udg-48", "grid-50"],
    )
    def test_delivers_on_small_topologies(self, net):
        result = run_decay(net, FAST, seed=1)
        assert result.rounds_to_delivery <= result.budget

    def test_single_node_is_trivially_delivered(self):
        result = run_decay(line(1), FAST, seed=0)
        assert result.rounds_to_delivery == 0
        assert result.informed_rounds == (0,)

    def test_line_advances_one_layer_per_phase(self):
        # On a path the frontier node has exactly one informed neighbour,
        # which transmits deterministically in the first round of each
        # phase, so delivery takes exactly (n-1) phases.
        net = line(32)
        result = run_decay(net, FAST, seed=0)
        assert result.phases_to_delivery == 31


class TestReproducibility:
    def test_same_seed_same_outcome(self):
        net = dumbbell(20, 3)
        a = run_decay(net, FAST, seed=7)
        b = run_decay(net, FAST, seed=7)
        assert a.rounds_to_delivery == b.rounds_to_delivery
        assert a.informed_rounds == b.informed_rounds

    def test_different_seeds_usually_differ(self):
        net = gnp(64, 0.1, seed=0)
        outcomes = {run_decay(net, FAST, seed=s).informed_rounds for s in range(5)}
        assert len(outcomes) > 1


class TestFailureAndObservability:
    def test_budget_expiry_raises_with_undelivered_set(self):
        net = line(64)
        with pytest.raises(BroadcastFailure) as excinfo:
            run_decay(net, FAST, seed=0, budget=10)
        undelivered = excinfo.value.undelivered
        assert len(undelivered) > 0
        assert set(undelivered) <= set(range(64))
        assert 0 not in undelivered  # the source itself is always informed

    def test_zero_budget_reports_everyone_but_source(self):
        net = line(8)
        with pytest.raises(BroadcastFailure) as excinfo:
            run_decay(net, FAST, seed=0, budget=0)
        assert excinfo.value.undelivered == tuple(range(1, 8))

    def test_collisions_are_observable_in_decay_run(self):
        # On a grid from a corner source, the diagonal frontier node (1,1)
        # has two informed neighbours — (0,1) and (1,0) — by the second
        # phase start, and both transmit deterministically in that round, so
        # a collision is guaranteed and recorded in the engine ground truth.
        net = grid2d(8, 8)
        result = run_decay(net, FAST, seed=0, trace=True)
        assert result.sim.total_collisions > 0
        rounds_with_collisions = [s for s in result.sim.history if s.collisions]
        assert rounds_with_collisions, "expected at least one collision event"

    def test_collision_feedback_reaches_listening_protocol(self):
        # Two informed neighbours of an uninformed listener transmit in the
        # first round of a phase -> with collision detection enabled, the
        # listener's on_feedback sees a COLLISION it can in principle use.
        from repro.sim.protocol import FeedbackKind
        from repro.sim.topology import RadioNetwork

        # triangle source plus a listener attached to both non-source nodes
        net = RadioNetwork(
            [[1, 2], [0, 2, 3], [0, 1, 3], [1, 2]], source=0, name="kite"
        )
        heard: list[FeedbackKind] = []

        class Eavesdropping(DecayProtocol):
            def on_feedback(self, round_index, feedback):
                if self.ctx.node == 3:
                    heard.append(feedback.kind)
                super().on_feedback(round_index, feedback)

        protocols = [Eavesdropping() for _ in range(net.n)]
        engine = Engine(net, protocols, seed=3, collision_detection=True, params=FAST)
        engine.run(
            FAST.decay_broadcast_rounds(net.eccentricity(), net.n),
            stop_when=lambda eng: all(p.informed for p in protocols),
        )
        assert all(p.informed for p in protocols)
        assert FeedbackKind.COLLISION in heard


class TestProtocolDetails:
    def test_decay_is_registered(self):
        from repro.sim.protocol import available_protocols, protocol_class

        assert "decay" in available_protocols()
        assert protocol_class("decay") is DecayProtocol

    def test_custom_payload_propagates(self):
        net = grid2d(4, 4)
        result = run_decay(net, FAST, seed=0, message={"k": "v"})
        assert result.rounds_to_delivery <= result.budget

    def test_custom_message_arrives_verbatim_at_every_node(self):
        # Regression for the injection-ordering bug: run_decay used to patch
        # protocols[source].message *after* setup() had already stored the
        # default, so a custom payload relied on call ordering.  It is now
        # injected at construction; the object must reach every node by
        # identity.
        payload = ("custom", {"nested": [1, 2, 3]})
        net = dumbbell(6, 2)
        protocols = [DecayProtocol(message=payload) for _ in range(net.n)]
        engine = Engine(net, protocols, seed=4, params=FAST)
        engine.run(
            FAST.decay_broadcast_rounds(net.eccentricity(), net.n),
            stop_when=lambda eng: all(p.informed for p in protocols),
        )
        assert all(p.informed for p in protocols)
        assert all(p.message is payload for p in protocols)

    def test_run_decay_injects_before_setup(self):
        # End-to-end: the driver itself must deliver the custom payload
        # verbatim without any post-setup patching.
        net = line(6)
        sentinel = object()

        received = []

        class Recording(DecayProtocol):
            def on_feedback(self, round_index, feedback):
                was_informed = self.informed
                super().on_feedback(round_index, feedback)
                if not was_informed and self.informed:
                    received.append(self.message)

        protocols = [Recording(message=sentinel) for _ in range(net.n)]
        engine = Engine(net, protocols, seed=0, params=FAST)
        engine.run(
            FAST.decay_broadcast_rounds(net.eccentricity(), net.n),
            stop_when=lambda eng: all(p.informed for p in protocols),
        )
        assert len(received) == net.n - 1
        assert all(msg is sentinel for msg in received)

    def test_protocol_constructor_rejects_none_message(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="non-None"):
            DecayProtocol(message=None)

    def test_none_message_rejected_at_api_boundary(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="non-None message"):
            run_decay(grid2d(4, 4), FAST, message=None)

    def test_collision_detection_flag_does_not_change_decay(self):
        # Decay ignores the channel feedback beyond clean receipts, so runs
        # with and without collision detection are identical coin-for-coin.
        net = gnp(48, 0.12, seed=5)
        a = run_decay(net, FAST, seed=2, collision_detection=False)
        b = run_decay(net, FAST, seed=2, collision_detection=True)
        assert a.informed_rounds == b.informed_rounds
