"""Tests for repro.params: derived quantities, edge cases, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.params import ProtocolParams, log2_ceil


class TestLog2Ceil:
    def test_edge_cases(self):
        assert log2_ceil(1) == 1
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2

    def test_powers_of_two(self):
        assert log2_ceil(4) == 2
        assert log2_ceil(256) == 8
        assert log2_ceil(257) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            log2_ceil(0)
        with pytest.raises(ConfigurationError):
            log2_ceil(-5)


DERIVED = [
    "log_n",
    "decay_phase_length",
    "decay_whp_phases",
    "decay_whp_rounds",
    "recruiting_hold",
    "recruiting_iterations",
    "recruiting_iteration_rounds",
    "recruiting_rounds",
    "assignment_epochs",
    "max_rank",
    "batch_size",
]


class TestDerivedQuantities:
    @pytest.mark.parametrize("method", DERIVED)
    @pytest.mark.parametrize("params", [ProtocolParams.paper(), ProtocolParams.fast()])
    def test_monotone_in_n_bound(self, method, params):
        values = [getattr(params, method)(n) for n in (2, 8, 64, 512, 4096)]
        assert values == sorted(values), f"{method} not monotone: {values}"
        assert all(v >= 1 for v in values)

    def test_budgets_monotone_in_n_bound(self):
        params = ProtocolParams.fast()
        for method in ("broadcast_budget", "decay_broadcast_rounds", "ghk_broadcast_rounds"):
            values = [getattr(params, method)(10, n) for n in (2, 8, 64, 512, 4096)]
            assert values == sorted(values), f"{method} not monotone: {values}"

    def test_budgets_monotone_in_diameter(self):
        params = ProtocolParams.fast()
        for method in ("broadcast_budget", "decay_broadcast_rounds", "ghk_broadcast_rounds"):
            values = [getattr(params, method)(d, 64) for d in (0, 1, 10, 100)]
            assert values == sorted(values)

    def test_decay_whp_rounds_composition(self):
        params = ProtocolParams.paper()
        assert params.decay_whp_rounds(100) == (
            params.decay_whp_phases(100) * params.decay_phase_length(100)
        )

    def test_decay_budget_rejects_negative_diameter(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams.fast().decay_broadcast_rounds(-1, 64)

    def test_beepwave_rounds_is_exact(self):
        # The wave is deterministic: eccentricity + 1 rounds, no slack.
        params = ProtocolParams.fast()
        assert params.beepwave_rounds(0) == 1
        assert params.beepwave_rounds(63) == 64
        with pytest.raises(ConfigurationError):
            params.beepwave_rounds(-1)

    def test_ghk_backoff_slots_scale_with_log_n(self):
        params = ProtocolParams.paper()
        assert params.ghk_backoff_slots(2) == 1
        assert params.ghk_backoff_slots(64) == 6
        assert params.ghk_backoff_slots(1024) == 10

    def test_ghk_budget_dominates_the_wave(self):
        # The GHK budget must always cover at least the sync wave plus one
        # full backoff cycle per layer slot — sanity floor, not exact form.
        params = ProtocolParams.fast()
        for d, n in ((0, 2), (14, 64), (255, 256)):
            assert params.ghk_broadcast_rounds(d, n) > params.wave_spacing * d

    def test_ghk_budget_rejects_negative_diameter(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams.fast().ghk_broadcast_rounds(-1, 64)

    def test_multi_message_budget_grows_linearly_in_k(self):
        # O(D + k log n + log^2 n): the k term is linear, everything else
        # fixed, so budget deltas per message are constant.
        params = ProtocolParams.fast()
        budgets = [params.ghk_multi_message_rounds(14, 64, k) for k in (1, 2, 3, 4)]
        assert budgets[0] < budgets[1] < budgets[2] < budgets[3]
        deltas = [b - a for a, b in zip(budgets, budgets[1:])]
        assert len(set(deltas)) == 1

    def test_multi_message_budget_monotone_in_diameter_and_n(self):
        params = ProtocolParams.fast()
        assert params.ghk_multi_message_rounds(20, 64, 4) > params.ghk_multi_message_rounds(
            10, 64, 4
        )
        assert params.ghk_multi_message_rounds(10, 256, 4) > params.ghk_multi_message_rounds(
            10, 64, 4
        )

    def test_multi_message_budget_rejects_bad_arguments(self):
        params = ProtocolParams.fast()
        with pytest.raises(ConfigurationError, match="diameter"):
            params.ghk_multi_message_rounds(-1, 64, 4)
        for bad_k in (0, -1, 1.5, "4"):
            with pytest.raises(ConfigurationError, match="k_messages"):
                params.ghk_multi_message_rounds(10, 64, bad_k)


POSITIVE_FIELDS = [
    "decay_phase_factor",
    "decay_whp_factor",
    "recruiting_hold_factor",
    "recruiting_sweeps",
    "assignment_epochs_factor",
    "schedule_slack",
    "fec_expansion",
    "batch_size_factor",
    "ghk_backoff_factor",
    "multi_message_pipeline_factor",
]


class TestValidation:
    @pytest.mark.parametrize("name", POSITIVE_FIELDS)
    @pytest.mark.parametrize("bad", [0, -1])
    def test_construction_rejects_non_positive(self, name, bad):
        with pytest.raises(ConfigurationError, match=name):
            ProtocolParams(**{name: bad})

    def test_construction_rejects_negative_additive_slack(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(schedule_slack_additive=-1)

    def test_construction_rejects_bad_ring_width_and_rank_offset(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(ring_width=0)
        with pytest.raises(ConfigurationError):
            ProtocolParams(max_rank_offset=-1)

    def test_with_overrides_validates(self):
        params = ProtocolParams.fast()
        with pytest.raises(ConfigurationError):
            params.with_overrides(schedule_slack=-2.0)

    def test_presets_are_valid(self):
        ProtocolParams.paper().validate()
        ProtocolParams.fast().validate()

    def test_with_overrides_replaces_field(self):
        params = ProtocolParams.paper().with_overrides(schedule_slack=7.5)
        assert params.schedule_slack == 7.5

    @pytest.mark.parametrize("bad", [0, 1, 2, -3, 3.0, "3"])
    def test_construction_rejects_bad_wave_spacing(self, bad):
        # Below 3 adjacent pipelined waves interfere; non-integers are
        # rejected outright since the value is a round count.
        with pytest.raises(ConfigurationError, match="wave_spacing"):
            ProtocolParams(wave_spacing=bad)

    def test_wave_spacing_accepts_wider_periods(self):
        assert ProtocolParams(wave_spacing=5).wave_spacing == 5

    @pytest.mark.parametrize("bad", ["csr", "", "Dense", 3])
    def test_construction_rejects_unknown_channel_backend(self, bad):
        with pytest.raises(ConfigurationError, match="channel_backend"):
            ProtocolParams(channel_backend=bad)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_construction_rejects_out_of_range_density_threshold(self, bad):
        with pytest.raises(ConfigurationError, match="sparse_density_threshold"):
            ProtocolParams(sparse_density_threshold=bad)

    @pytest.mark.parametrize("bad", [-1, 2.5, "big"])
    def test_construction_rejects_bad_sparse_min_n(self, bad):
        with pytest.raises(ConfigurationError, match="sparse_min_n"):
            ProtocolParams(sparse_min_n=bad)

    def test_channel_backend_knobs_default_and_override(self):
        params = ProtocolParams.paper()
        assert params.channel_backend == "auto"
        assert 0.0 <= params.sparse_density_threshold <= 1.0
        forced = params.with_overrides(
            channel_backend="sparse", sparse_density_threshold=1.0
        )
        assert forced.channel_backend == "sparse"
        assert forced.sparse_density_threshold == 1.0
