"""Fault-injection layer: schedules, state, path/backend equivalence.

The load-bearing contracts, in order of importance:

* an **empty schedule is a no-op** — attaching ``FaultSchedule()`` leaves
  a run bitwise-identical (``==`` on ``SimResult``) to not attaching one,
  on both channel backends, because fault coins live on their own stream;
* **faulted runs are path- and backend-independent** — object vs array
  and dense vs sparse agree bit for bit under every fault family;
* faults act on *perception*: crashes silence radios, jammers force
  collisions, loss drops clean receptions — and every injection is
  counted in ``SimResult.faults``.

Plus the two satellite regressions this PR pins: the batch fused path's
error attribution/plan hygiene, and the sparse segment-sum key cache
being bounded rather than grow-only.
"""

import json

import numpy as np
import pytest

from repro.errors import BroadcastFailure, ConfigurationError, SimulationError
from repro.params import ProtocolParams
from repro.sim import (
    BatchEngine,
    BatchItem,
    DecayArrayProtocol,
    EdgeFlip,
    FaultSchedule,
    FaultState,
    Jammer,
    NodeCrash,
    demo,
    run_broadcast,
    run_broadcast_batch,
    sample_fault_schedule,
)
from repro.sim.core import RoundPlan, select_kernel_operand
from repro.sim.decay import run_decay
from repro.sim.runners import broadcast_runner
from repro.sim.topology import from_spec, grid2d, line

FAST = ProtocolParams.fast()
DENSE = FAST.with_overrides(channel_backend="dense")
SPARSE = FAST.with_overrides(channel_backend="sparse")

#: One schedule per fault family, plus a combined one — node ids fit any
#: network of >= 8 nodes used below.
CRASH_ONLY = FaultSchedule(crashes=(NodeCrash(3, start=2, stop=9),))
LOSS_ONLY = FaultSchedule(loss_rate=0.3)
JAM_ONLY = FaultSchedule(jammers=(Jammer(5, start=1, stop=7),))
FLIP_ONLY = FaultSchedule(edge_flips=(EdgeFlip(2, 0, 1), EdgeFlip(6, 0, 1)))
COMBINED = FaultSchedule(
    crashes=(NodeCrash(3, start=2, stop=9), NodeCrash(6, start=4, stop=5)),
    edge_flips=(EdgeFlip(2, 0, 1), EdgeFlip(6, 0, 1), EdgeFlip(3, 2, 4)),
    loss_rate=0.2,
    jammers=(Jammer(5, start=1, stop=7),),
)
FAMILY_SCHEDULES = [
    ("crash", CRASH_ONLY),
    ("loss", LOSS_ONLY),
    ("jam", JAM_ONLY),
    ("flip", FLIP_ONLY),
    ("combined", COMBINED),
]
FAMILY_IDS = [name for name, _ in FAMILY_SCHEDULES]


class TestScheduleValidation:
    def test_negative_node_ids_are_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCrash(-1)
        with pytest.raises(ConfigurationError):
            Jammer(-2)
        with pytest.raises(ConfigurationError):
            EdgeFlip(0, -1, 2)

    def test_empty_windows_are_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCrash(0, start=5, stop=5)
        with pytest.raises(ConfigurationError):
            Jammer(0, start=3, stop=1)

    def test_edge_flip_self_loop_is_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeFlip(0, 4, 4)

    def test_loss_rate_outside_unit_interval_is_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSchedule(loss_rate=-0.1)

    def test_is_empty_and_max_node(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule().max_node() == -1
        assert not COMBINED.is_empty
        assert COMBINED.max_node() == 6

    def test_state_rejects_out_of_range_nodes(self):
        net = line(4)
        operand = select_kernel_operand(net, DENSE)
        rng = np.random.default_rng(0)
        schedule = FaultSchedule(crashes=(NodeCrash(7),))
        with pytest.raises(ConfigurationError, match="node 7"):
            FaultState(schedule, net, operand, rng)

    def test_sampler_validates_its_knobs(self):
        net = line(6)
        with pytest.raises(ConfigurationError):
            sample_fault_schedule(net, seed=0, horizon=0)
        with pytest.raises(ConfigurationError):
            sample_fault_schedule(net, seed=0, horizon=10, crash_rate=1.5)
        with pytest.raises(ConfigurationError):
            sample_fault_schedule(net, seed=0, horizon=10, jammers=-1)
        with pytest.raises(ConfigurationError):
            sample_fault_schedule(net, seed=0, horizon=10, jammers=6)

    def test_sampler_is_seed_deterministic_and_protects_source(self):
        net = from_spec("grid", 16, seed=0)
        a = sample_fault_schedule(
            net, seed=5, horizon=40, crash_rate=0.5, jammers=2, loss_rate=0.1
        )
        b = sample_fault_schedule(
            net, seed=5, horizon=40, crash_rate=0.5, jammers=2, loss_rate=0.1
        )
        assert a == b
        crashed = {c.node for c in a.crashes}
        jamming = {j.node for j in a.jammers}
        assert net.source not in crashed | jamming
        # Sampled jammers are windowed, never permanent.
        assert all(j.stop is not None for j in a.jammers)


class TestEmptyScheduleIdentity:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_empty_schedule_is_bitwise_identical(self, backend):
        params = FAST.with_overrides(channel_backend=backend)
        net = grid2d(6, 6)
        base = run_decay(net, params, seed=3)
        empty = run_decay(net, params, seed=3, faults=FaultSchedule())
        assert base.sim == empty.sim
        assert base == empty
        # The pinned regression value survives an attached-but-empty layer.
        assert empty.rounds_to_delivery == 57
        assert empty.sim.faults is None  # no state, no counters, no coins

    def test_faulted_result_carries_fault_totals(self):
        net = from_spec("grid", 16, seed=0)
        result = run_decay(net, FAST, seed=3, faults=LOSS_ONLY)
        assert result.sim.faults is not None
        totals = result.sim.faults.as_dict()
        assert set(totals) == {
            "dropped_receptions",
            "jammed_listens",
            "crashed_node_rounds",
            "edge_flips_applied",
        }


class TestFaultSemantics:
    def test_certain_loss_fails_delivery_and_counts_drops(self):
        net = line(5)
        with pytest.raises(BroadcastFailure) as exc:
            run_decay(net, FAST, seed=0, faults=FaultSchedule(loss_rate=1.0))
        sim = exc.value.sim
        assert sim.faults.dropped_receptions > 0
        # Nothing beyond the source ever hears the message.
        assert exc.value.undelivered == (1, 2, 3, 4)

    def test_permanent_edge_cut_partitions_the_line(self):
        # Cutting the only edge into node 2 before round 0 strands it.
        net = line(3)
        schedule = FaultSchedule(edge_flips=(EdgeFlip(0, 1, 2),))
        with pytest.raises(BroadcastFailure) as exc:
            run_decay(net, FAST, seed=0, faults=schedule, budget=40)
        assert exc.value.undelivered == (2,)
        assert exc.value.sim.faults.edge_flips_applied == 1

    def test_crash_windows_accrue_node_rounds_and_silence_radios(self):
        net = from_spec("grid", 16, seed=0)
        schedule = FaultSchedule(crashes=(NodeCrash(3, start=0, stop=5),))
        result = run_decay(net, FAST, seed=3, faults=schedule)
        # Exactly one node down for exactly five rounds.
        assert result.sim.faults.crashed_node_rounds == 5
        # A node crashed from round 0 cannot be informed before round 5.
        assert result.informed_rounds[3] >= 5

    def test_jammed_listeners_perceive_collisions(self):
        # Star centre 0 is the source; jam a leaf: while the jammer is
        # active every listener in its closed neighbourhood (here: the
        # whole star, via the centre) hears noise, and each forced
        # collision is counted.
        net = from_spec("grid", 16, seed=0)
        schedule = FaultSchedule(jammers=(Jammer(5, start=0, stop=4),))
        result = run_decay(net, FAST, seed=3, faults=schedule)
        assert result.sim.faults.jammed_listens > 0

    def test_fault_counters_window_like_traffic(self):
        # Two consecutive runs on one engine: the SimResult of the second
        # run must report only the drops of its own window.
        from repro.sim.core import ArrayEngine

        net = line(8)
        engine = ArrayEngine(
            net,
            DecayArrayProtocol(message="m"),
            seed=0,
            collision_detection=False,
            params=FAST,
            faults=FaultSchedule(loss_rate=1.0),
        )
        first = engine.run(5)
        second = engine.run(5)
        total = engine.fault_totals()
        assert (
            first.faults.dropped_receptions + second.faults.dropped_receptions
            == total.dropped_receptions
        )


class TestFaultedEquivalence:
    @pytest.mark.parametrize("name,schedule", FAMILY_SCHEDULES, ids=FAMILY_IDS)
    @pytest.mark.parametrize("protocol", ["decay", "ghk"])
    def test_object_and_array_paths_agree_under_faults(self, name, schedule, protocol):
        net = from_spec("grid", 16, seed=0)
        obj = broadcast_runner(protocol)(net, FAST, seed=1, faults=schedule, trace=True)
        arr = run_broadcast(protocol, net, FAST, seed=1, faults=schedule, trace=True)
        assert arr.sim.history == obj.sim.history
        assert arr.sim == obj.sim
        assert arr == obj

    @pytest.mark.parametrize("name,schedule", FAMILY_SCHEDULES, ids=FAMILY_IDS)
    @pytest.mark.parametrize("protocol", ["decay", "ghk"])
    def test_dense_and_sparse_backends_agree_under_faults(
        self, name, schedule, protocol
    ):
        net = from_spec("grid", 16, seed=0)
        dense = run_broadcast(protocol, net, DENSE, seed=1, faults=schedule, trace=True)
        sparse = run_broadcast(
            protocol, net, SPARSE, seed=1, faults=schedule, trace=True
        )
        assert sparse.sim.history == dense.sim.history
        assert sparse.sim == dense.sim
        assert sparse == dense

    def test_multimessage_paths_agree_under_faults(self):
        net = from_spec("grid", 16, seed=0)
        obj = broadcast_runner("multimessage")(
            net, FAST, seed=1, k_messages=2, faults=COMBINED
        )
        arr = run_broadcast(
            "multimessage",
            net,
            FAST,
            seed=1,
            options={"k_messages": 2},
            faults=COMBINED,
        )
        assert arr == obj

    def test_faulted_runs_are_seed_reproducible(self):
        net = from_spec("grid", 16, seed=0)
        a = run_decay(net, FAST, seed=7, faults=COMBINED)
        b = run_decay(net, FAST, seed=7, faults=COMBINED)
        assert a == b


class TestBatchFaults:
    def test_mixed_faulted_and_clean_items_do_not_cross_talk(self):
        # A faulted item fused into a batch must not perturb its clean
        # siblings: each batch entry equals the corresponding solo run.
        net = from_spec("grid", 16, seed=0)
        schedules = [None, COMBINED, None, COMBINED]
        batch = run_broadcast_batch(
            "decay", [net] * 4, seeds=range(4), params=FAST, faults=schedules
        )
        for seed, (schedule, batched) in enumerate(zip(schedules, batch)):
            solo = run_broadcast(
                "decay", net, FAST, seed=seed, faults=schedule
            )
            assert batched == solo

    def test_schedule_identity_splits_fusion_groups(self):
        # Items with different schedules cannot share a fused kernel call
        # (edge flips make the operand time-varying per schedule); items
        # with no/empty schedules still fuse into one group.
        net = from_spec("grid", 16, seed=0)
        other = FaultSchedule(edge_flips=(EdgeFlip(1, 0, 1), EdgeFlip(3, 0, 1)))
        items = [
            BatchItem(
                network=net,
                protocol=DecayArrayProtocol(),
                budget=100,
                seed=s,
                collision_detection=False,
                params=FAST,
                faults=faults,
            )
            for s, faults in enumerate(
                [None, FaultSchedule(), COMBINED, COMBINED, other]
            )
        ]
        engine = BatchEngine(items)
        groups = engine.group_sizes()
        assert sorted(groups) == [1, 2, 2]

    def test_shared_schedule_broadcast_batch_runs(self):
        net = from_spec("grid", 16, seed=0)
        batch = run_broadcast_batch(
            "ghk", [net] * 3, seeds=range(3), params=FAST, faults=LOSS_ONLY
        )
        for result in batch:
            sim = result.sim
            assert sim.faults is not None

    def test_fault_list_length_mismatch_is_rejected(self):
        net = from_spec("grid", 16, seed=0)
        with pytest.raises(ConfigurationError, match="one fault schedule per"):
            run_broadcast_batch(
                "decay", [net] * 3, seeds=range(3), params=FAST, faults=[COMBINED]
            )


class _ExplodingProtocol(DecayArrayProtocol):
    """Returns a plan of the wrong shape at a chosen round."""

    def __init__(self, explode_at, **kwargs):
        super().__init__(**kwargs)
        self._explode_at = explode_at

    def act(self, round_index):
        plan = super().act(round_index)
        if round_index == self._explode_at:
            return RoundPlan(
                transmit=np.zeros(1, dtype=bool), listen=np.zeros(1, dtype=bool)
            )
        return plan


class TestFusedPathErrorHygiene:
    """Satellite regression: act() errors mid-group must name the item and
    leave every sibling without a dangling pending plan."""

    def _items(self, explode_at):
        net = from_spec("grid", 16, seed=0)
        protocols = [
            DecayArrayProtocol(),
            _ExplodingProtocol(explode_at),
            DecayArrayProtocol(),
        ]
        return [
            BatchItem(
                network=net,
                protocol=proto,
                budget=50,
                seed=s,
                collision_detection=False,
                params=FAST,
            )
            for s, proto in enumerate(protocols)
        ]

    def test_error_is_attributed_to_the_failing_item(self):
        engine = BatchEngine(self._items(explode_at=2))
        with pytest.raises(SimulationError, match=r"\(item 1\)"):
            engine.run()

    def test_siblings_hold_no_dangling_plan_after_the_error(self):
        engine = BatchEngine(self._items(explode_at=2))
        with pytest.raises(SimulationError):
            engine.run()
        for core in engine.engines:
            assert core._plan is None
        # The documented no-round-in-flight state: completing now raises
        # the "without begin_round" error instead of applying stale masks.
        with pytest.raises(SimulationError, match="without begin_round"):
            engine.engines[0].complete_round(None)


class TestSparseKeyCacheBound:
    """Satellite regression: the batched segment-sum key cache shrinks when
    the live batch does, instead of pinning the high-water allocation."""

    def _operand(self):
        net = from_spec("grid", 16, seed=0)
        return select_kernel_operand(net, SPARSE)

    def test_cache_rebuilds_below_half_of_cached_size(self):
        op = self._operand()
        m = op.indices.size
        tx = np.ones((8, op.n), dtype=np.float64)
        op.transmit_counts(tx)
        assert op._keys.size == 8 * m  # high-water mark
        op.transmit_counts(tx[:1])
        assert op._keys.size == 1 * m  # released, not sliced

    def test_cache_is_reused_within_the_hysteresis_band(self):
        op = self._operand()
        m = op.indices.size
        tx = np.ones((4, op.n), dtype=np.float64)
        op.transmit_counts(tx)
        cached = op._keys
        # Batch 3 >= half of 4: the prefix of the cached array serves it.
        op.transmit_counts(tx[:3])
        assert op._keys is cached
        assert op._keys.size == 4 * m

    def test_batched_counts_match_per_row_counts_after_shrink(self):
        op = self._operand()
        rng = np.random.default_rng(0)
        tx = (rng.random((6, op.n)) < 0.5).astype(np.float64)
        batched = op.transmit_counts(tx)
        op.transmit_counts(tx[:2])  # 6 > 2·2: forces a shrink rebuild
        single = np.stack([op.transmit_counts(tx[i]) for i in range(6)])
        assert np.array_equal(batched, single)


class TestDemoFaultKnobs:
    def test_json_payload_carries_fault_knobs_and_totals(self, capsys):
        rc = demo.main(
            [
                "--topology",
                "grid",
                "--n",
                "16",
                "--seed",
                "3",
                "--loss-rate",
                "0.2",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["faults"] == {
            "crash_rate": 0.0,
            "loss_rate": 0.2,
            "jammers": 0,
        }
        assert "dropped_receptions" in payload["fault_totals"]

    def test_fault_free_json_reports_zero_knobs(self, capsys):
        rc = demo.main(
            ["--topology", "grid", "--n", "16", "--seed", "0", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["faults"] == {
            "crash_rate": 0.0,
            "loss_rate": 0.0,
            "jammers": 0,
        }
        assert payload["fault_totals"] is None

    @pytest.mark.parametrize(
        "flags",
        [
            ["--loss-rate", "1.5"],
            ["--crash-rate", "-0.1"],
            ["--jammers", "-1"],
            ["--jammers", "99", "--n", "16"],
        ],
    )
    def test_bad_fault_knobs_exit_2(self, flags, capsys):
        rc = demo.main(["--topology", "grid", "--n", "16", "--json", *flags])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert payload["status"] == "error"


class TestRobustnessBenchRecord:
    def test_tiny_sweep_produces_a_well_formed_record(self):
        from repro.experiments.robustness_bench import bench_faults

        record = bench_faults(
            n=9,
            topology="grid",
            protocols=("decay",),
            seeds=2,
            levels={"loss": (0.2,), "crash": (0.5,)},
        )
        assert record["bench"] == "faults"
        assert record["schema_version"] == 2
        families = [(e["family"], e["level"]) for e in record["results"]]
        assert families == [("none", 0.0), ("crash", 0.5), ("loss", 0.2)]
        for entry in record["results"]:
            assert 0.0 <= entry["delivery_rate"] <= 1.0
        faulted = record["results"][2]
        assert faulted["fault_totals_mean"]["dropped_receptions"] >= 0

    def test_unknown_inputs_are_analysis_errors(self):
        from repro.errors import AnalysisError
        from repro.experiments.robustness_bench import bench_faults

        with pytest.raises(AnalysisError):
            bench_faults(protocols=("nope",), seeds=1)
        with pytest.raises(AnalysisError):
            bench_faults(levels={"meteor": (1,)}, seeds=1)
        with pytest.raises(AnalysisError):
            bench_faults(seeds=0)


def test_trajectory_flattens_faults_records():
    from repro.experiments.trajectory import DEFAULT_RECORDS, record_metrics

    assert "BENCH_faults.json" in DEFAULT_RECORDS
    record = {
        "bench": "faults",
        "results": [
            {
                "protocol": "ghk",
                "family": "loss",
                "level": 0.3,
                "n": 36,
                "delivery_rate": 0.95,
                "rounds": {"mean": 45.5, "min": 30, "max": 80},
                "slowdown_vs_fault_free": 1.98,
            }
        ],
    }
    metrics = record_metrics(record)
    assert metrics == {
        "ghk/loss=0.3/n=36/delivery_rate": 0.95,
        "ghk/loss=0.3/n=36/rounds_mean": 45.5,
        "ghk/loss=0.3/n=36/slowdown": 1.98,
    }
