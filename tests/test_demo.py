"""Tests for the repro.sim.demo smoke-test CLI."""

import json

import pytest

from repro.sim import demo


def test_demo_grid_succeeds(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "delivered to all 64 nodes" in out
    assert "within budget" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_every_topology(topology, capsys):
    assert demo.main(["--topology", topology, "--n", "24", "--seed", "1"]) == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_paper_preset_and_collision_detection(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "16", "--preset", "paper", "--collision-detection"]
    )
    assert rc == 0
    assert "collisions=" in capsys.readouterr().out


def test_demo_ghk_protocol(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--protocol", "ghk"]) == 0
    out = capsys.readouterr().out
    assert "ghk: delivered to all 64 nodes" in out
    assert "wave depth 14" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_ghk_every_topology(topology, capsys):
    rc = demo.main(["--topology", topology, "--n", "24", "--seed", "1", "--protocol", "ghk"])
    assert rc == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_decay_reports_phases(capsys):
    assert demo.main(["--topology", "line", "--n", "8", "--protocol", "decay"]) == 0
    assert "Decay phases of" in capsys.readouterr().out


def test_demo_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        demo.main(["--protocol", "gossip"])


def test_demo_reports_topology_error(capsys):
    rc = demo.main(["--topology", "gnp", "--n", "30", "--p", "0.0"])
    assert rc == 2
    assert "topology error" in capsys.readouterr().err


def test_demo_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        demo.main(["--topology", "moebius"])


def test_demo_engines_agree(capsys):
    args = ["--topology", "grid", "--n", "36", "--seed", "3", "--protocol", "ghk"]
    assert demo.main(args + ["--engine", "array"]) == 0
    array_out = capsys.readouterr().out
    assert demo.main(args + ["--engine", "object"]) == 0
    object_out = capsys.readouterr().out
    assert array_out == object_out


def test_demo_json_output_is_machine_readable(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "36", "--seed", "3", "--protocol", "ghk", "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "delivered"
    assert payload["protocol"] == "ghk"
    assert payload["n"] == 36
    assert payload["rounds_to_delivery"] <= payload["budget"]
    assert len(payload["informed_rounds"]) == 36
    assert payload["wave_spacing"] >= 3
    assert "trace" not in payload


def test_demo_json_decay_reports_phases(capsys):
    rc = demo.main(["--topology", "line", "--n", "8", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["phase_length"] >= 1
    assert payload["phases_to_delivery"] >= 1


def test_demo_trace_prints_every_round(capsys):
    rc = demo.main(["--topology", "line", "--n", "6", "--seed", "0", "--trace"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "round    0: tx=[0]" in out
    # one line per executed round plus the summary lines
    rounds = [line for line in out.splitlines() if line.startswith("round ")]
    assert len(rounds) >= 5


def test_demo_json_trace_embeds_round_records(capsys):
    rc = demo.main(["--topology", "line", "--n", "6", "--seed", "0", "--json", "--trace"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["trace"]) == payload["rounds_to_delivery"]
    assert payload["trace"][0]["transmitters"] == [0]


def test_demo_trace_survives_a_failed_run(monkeypatch, capsys):
    from repro.params import ProtocolParams
    from repro.sim import run_broadcast
    from repro.sim.topology import line

    def starved(*args, **kwargs):
        return run_broadcast(
            "decay", line(8), ProtocolParams.fast(), seed=0, budget=2, trace=True
        )

    monkeypatch.setattr(demo, "run_broadcast", starved)
    rc = demo.main(["--topology", "line", "--n", "8", "--trace", "--json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "failed"
    assert len(payload["trace"]) == 2  # the rounds that were executed
    rc = demo.main(["--topology", "line", "--n", "8", "--trace"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "round    0:" in captured.out
    assert "FAILED" in captured.err


def test_demo_json_failure_reports_undelivered(monkeypatch, capsys):
    from repro.errors import BroadcastFailure

    def starved(*args, **kwargs):
        raise BroadcastFailure("Decay left 2 of 6 nodes uninformed", (4, 5))

    monkeypatch.setattr(demo, "run_broadcast", starved)
    rc = demo.main(["--topology", "line", "--n", "6", "--json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "failed"
    assert payload["undelivered"] == [4, 5]
    assert "uninformed" in payload["error"]
