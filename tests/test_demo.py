"""Tests for the repro.sim.demo smoke-test CLI."""

import pytest

from repro.sim import demo


def test_demo_grid_succeeds(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "delivered to all 64 nodes" in out
    assert "within budget" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_every_topology(topology, capsys):
    assert demo.main(["--topology", topology, "--n", "24", "--seed", "1"]) == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_paper_preset_and_collision_detection(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "16", "--preset", "paper", "--collision-detection"]
    )
    assert rc == 0
    assert "collisions=" in capsys.readouterr().out


def test_demo_ghk_protocol(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--protocol", "ghk"]) == 0
    out = capsys.readouterr().out
    assert "ghk: delivered to all 64 nodes" in out
    assert "wave depth 14" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_ghk_every_topology(topology, capsys):
    rc = demo.main(["--topology", topology, "--n", "24", "--seed", "1", "--protocol", "ghk"])
    assert rc == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_decay_reports_phases(capsys):
    assert demo.main(["--topology", "line", "--n", "8", "--protocol", "decay"]) == 0
    assert "Decay phases of" in capsys.readouterr().out


def test_demo_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        demo.main(["--protocol", "gossip"])


def test_demo_reports_topology_error(capsys):
    rc = demo.main(["--topology", "gnp", "--n", "30", "--p", "0.0"])
    assert rc == 2
    assert "topology error" in capsys.readouterr().err


def test_demo_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        demo.main(["--topology", "moebius"])
