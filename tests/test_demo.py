"""Tests for the repro.sim.demo smoke-test CLI."""

import json
import re

import pytest

from repro.sim import demo


def _strip_wall_clock(prose: str) -> str:
    """Mask the throughput token: wall-clock legitimately differs between
    two runs that are bitwise-identical in every simulation observable."""
    return re.sub(r"throughput=\S+", "throughput=X", prose)


def test_demo_grid_succeeds(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "delivered to all 64 nodes" in out
    assert "within budget" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_every_topology(topology, capsys):
    assert demo.main(["--topology", topology, "--n", "24", "--seed", "1"]) == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_paper_preset_and_collision_detection(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "16", "--preset", "paper", "--collision-detection"]
    )
    assert rc == 0
    assert "collisions=" in capsys.readouterr().out


def test_demo_ghk_protocol(capsys):
    assert demo.main(["--topology", "grid", "--n", "64", "--protocol", "ghk"]) == 0
    out = capsys.readouterr().out
    assert "ghk: delivered to all 64 nodes" in out
    assert "wave depth 14" in out


@pytest.mark.parametrize("topology", ["line", "ring", "star", "gnp", "dumbbell", "unit_disk"])
def test_demo_ghk_every_topology(topology, capsys):
    rc = demo.main(["--topology", topology, "--n", "24", "--seed", "1", "--protocol", "ghk"])
    assert rc == 0
    assert "delivered to all 24 nodes" in capsys.readouterr().out


def test_demo_decay_reports_phases(capsys):
    assert demo.main(["--topology", "line", "--n", "8", "--protocol", "decay"]) == 0
    assert "Decay phases of" in capsys.readouterr().out


def test_demo_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        demo.main(["--protocol", "gossip"])


def test_demo_reports_topology_error(capsys):
    rc = demo.main(["--topology", "gnp", "--n", "30", "--p", "0.0"])
    assert rc == 2
    assert "topology error" in capsys.readouterr().err


def test_demo_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        demo.main(["--topology", "moebius"])


def test_demo_engines_agree(capsys):
    args = ["--topology", "grid", "--n", "36", "--seed", "3", "--protocol", "ghk"]
    assert demo.main(args + ["--engine", "array"]) == 0
    array_out = capsys.readouterr().out
    assert demo.main(args + ["--engine", "object"]) == 0
    object_out = capsys.readouterr().out
    assert _strip_wall_clock(array_out) == _strip_wall_clock(object_out)


#: JSON keys shared by success and failure payloads — the one consumer
#: schema both shapes must satisfy (plus the "status" discriminator).
SHARED_JSON_KEYS = {
    "protocol",
    "engine",
    "topology",
    "n",
    "edges",
    "source_eccentricity",
    "diameter",
    "seed",
    "messages",
    "preset",
    "collision_detection",
    "status",
    "budget",
    "rounds_run",
    "transmissions",
    "deliveries",
    "collisions",
    "traffic",
    "telemetry",
}


def test_demo_json_output_is_machine_readable(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "36", "--seed", "3", "--protocol", "ghk", "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "delivered"
    assert payload["protocol"] == "ghk"
    assert payload["n"] == 36
    assert payload["rounds_to_delivery"] <= payload["budget"]
    assert payload["rounds_run"] == payload["rounds_to_delivery"]
    assert len(payload["informed_rounds"]) == 36
    assert payload["wave_spacing"] >= 3
    assert "trace" not in payload
    assert SHARED_JSON_KEYS <= set(payload)


def test_demo_json_payload_shapes_share_one_schema(capsys):
    # One consumer schema must parse both outcomes: the shared keys are
    # present either way and "status" discriminates.
    assert demo.main(["--topology", "line", "--n", "12", "--seed", "0", "--json"]) == 0
    success = json.loads(capsys.readouterr().out)
    rc = demo.main(
        ["--topology", "line", "--n", "12", "--seed", "0", "--json", "--budget", "2"]
    )
    assert rc == 1
    failure = json.loads(capsys.readouterr().out)
    assert success["status"] == "delivered"
    assert failure["status"] == "failed"
    assert SHARED_JSON_KEYS <= set(success)
    assert SHARED_JSON_KEYS <= set(failure)
    assert failure["budget"] == 2
    assert failure["rounds_run"] == 2
    assert failure["undelivered"]
    assert "uninformed" in failure["error"]


def test_demo_json_traffic_sums_to_scalar_totals(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "36", "--seed", "3", "--protocol", "ghk", "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    traffic = payload["traffic"]
    for key in ("transmissions", "receptions", "collisions_heard", "awake_slots"):
        assert len(traffic[key]) == payload["n"]
    assert sum(traffic["transmissions"]) == payload["transmissions"]
    assert sum(traffic["receptions"]) == payload["deliveries"]
    assert sum(traffic["collisions_heard"]) == payload["collisions"]
    assert traffic["energy"] == sum(traffic["awake_slots"])
    telemetry = payload["telemetry"]
    assert telemetry["wall_seconds"] >= 0.0
    assert set(telemetry["phase_seconds"]) == {"act", "channel", "feedback"}


def test_demo_object_engine_json_omits_phase_timers(capsys):
    # The object drivers own their engines, so the demo only has
    # end-to-end wall clock for them — phase_seconds stays null rather
    # than pretending to a precision it doesn't have.
    rc = demo.main(
        ["--topology", "line", "--n", "12", "--seed", "0", "--engine", "object",
         "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["telemetry"]["phase_seconds"] is None
    assert payload["traffic"]["energy"] > 0


def test_demo_budget_override_forces_failure(capsys):
    rc = demo.main(["--topology", "line", "--n", "12", "--seed", "0", "--budget", "2"])
    assert rc == 1
    assert "FAILED" in capsys.readouterr().err


def test_demo_multimessage_pipelines_k_messages(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "25", "--protocol", "multimessage",
         "--messages", "4"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "multimessage: delivered to all 25 nodes" in out
    assert "4 messages pipelined" in out


def test_demo_multimessage_json_reports_k(capsys):
    rc = demo.main(
        ["--topology", "grid", "--n", "25", "--protocol", "multimessage",
         "--messages", "4", "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "delivered"
    assert payload["k_messages"] == 4
    assert payload["messages"] == 4
    assert payload["wave_depth"] >= 1
    assert SHARED_JSON_KEYS <= set(payload)


def test_demo_multimessage_engines_agree(capsys):
    args = ["--topology", "grid", "--n", "25", "--seed", "2", "--protocol",
            "multimessage", "--messages", "3"]
    assert demo.main(args + ["--engine", "array"]) == 0
    array_out = capsys.readouterr().out
    assert demo.main(args + ["--engine", "object"]) == 0
    assert _strip_wall_clock(array_out) == _strip_wall_clock(capsys.readouterr().out)


def test_demo_messages_flag_rejected_for_single_message_protocols(capsys):
    rc = demo.main(["--topology", "line", "--n", "8", "--messages", "2"])
    assert rc == 2
    assert "does not support --messages" in capsys.readouterr().err


def test_demo_rejects_non_positive_messages():
    with pytest.raises(SystemExit):
        demo.main(["--messages", "0"])


@pytest.mark.parametrize("budget", ["0", "-7"])
def test_demo_rejects_non_positive_budget_cleanly(capsys, budget):
    # A starving-but-positive budget is a legitimate forced failure; zero
    # or negative is an input error and must say so up front instead of
    # surfacing as a confusing BroadcastFailure.
    rc = demo.main(["--topology", "line", "--n", "8", "--budget", budget])
    assert rc == 2
    err = capsys.readouterr().err
    assert "--budget must be a positive round count" in err


@pytest.mark.parametrize("budget", ["0", "-3"])
def test_demo_json_budget_error_payload(capsys, budget):
    # Under --json even input errors emit one parseable object with the
    # "error" status discriminator, so scripted consumers never have to
    # scrape stderr.
    rc = demo.main(
        ["--topology", "line", "--n", "8", "--json", "--budget", budget]
    )
    assert rc == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "error"
    assert "--budget must be a positive round count" in payload["error"]
    assert payload["topology"] == "line"
    assert payload["n"] == 8


def test_demo_json_topology_error_payload(capsys):
    rc = demo.main(["--topology", "gnp", "--n", "30", "--p", "0.0", "--json"])
    assert rc == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "error"
    assert "topology error" in payload["error"]


def test_demo_json_unsupported_messages_error_payload(capsys):
    # Every pre-run input error honours the --json one-object contract,
    # including the protocol-without-k-message-support path.
    rc = demo.main(["--protocol", "decay", "--messages", "4", "--json"])
    assert rc == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "error"
    assert "does not support --messages" in payload["error"]


def test_demo_json_decay_reports_phases(capsys):
    rc = demo.main(["--topology", "line", "--n", "8", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["phase_length"] >= 1
    assert payload["phases_to_delivery"] >= 1


def test_demo_trace_prints_every_round(capsys):
    rc = demo.main(["--topology", "line", "--n", "6", "--seed", "0", "--trace"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "round    0: tx=[0]" in out
    # one line per executed round plus the summary lines
    rounds = [line for line in out.splitlines() if line.startswith("round ")]
    assert len(rounds) >= 5


def test_demo_json_trace_embeds_round_records(capsys):
    rc = demo.main(["--topology", "line", "--n", "6", "--seed", "0", "--json", "--trace"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["trace"]) == payload["rounds_to_delivery"]
    assert payload["trace"][0]["transmitters"] == [0]


def test_demo_trace_survives_a_failed_run(monkeypatch, capsys):
    from repro.params import ProtocolParams
    from repro.sim import run_broadcast
    from repro.sim.topology import line

    def starved(*args, **kwargs):
        return run_broadcast(
            "decay", line(8), ProtocolParams.fast(), seed=0, budget=2, trace=True
        )

    monkeypatch.setattr(demo, "run_broadcast", starved)
    rc = demo.main(["--topology", "line", "--n", "8", "--trace", "--json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "failed"
    assert len(payload["trace"]) == 2  # the rounds that were executed
    rc = demo.main(["--topology", "line", "--n", "8", "--trace"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "round    0:" in captured.out
    assert "FAILED" in captured.err


def test_demo_json_failure_reports_undelivered(monkeypatch, capsys):
    from repro.errors import BroadcastFailure

    def starved(*args, **kwargs):
        raise BroadcastFailure("Decay left 2 of 6 nodes uninformed", (4, 5))

    monkeypatch.setattr(demo, "run_broadcast", starved)
    rc = demo.main(["--topology", "line", "--n", "6", "--json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "failed"
    assert payload["undelivered"] == [4, 5]
    assert "uninformed" in payload["error"]
    # A raiser without sim/budget still produces the shared keys (as null),
    # so the consumer schema never loses fields.
    assert SHARED_JSON_KEYS <= set(payload)
    assert payload["budget"] is None
    assert payload["rounds_run"] is None
