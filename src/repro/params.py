"""Protocol parameters shared by every algorithm in the library.

The paper states all phase lengths asymptotically (``Θ(log n)`` rounds per
Decay phase, ``Θ(log^2 n)`` recruiting iterations, ...).  The hidden
constants do not affect the asymptotic claims but completely determine the
wall-clock cost of simulating the protocols, so every one of them is an
explicit, documented knob on :class:`ProtocolParams`.

Two presets are provided:

* :meth:`ProtocolParams.paper` — constants chosen so that the
  with-high-probability lemmas of the paper hold comfortably in simulation
  (this is the default).
* :meth:`ProtocolParams.fast` — small constants used by the test-suite and
  by large benchmark sweeps; the asymptotic *shape* of every experiment is
  unchanged, only the probability of an individual protocol run failing is
  slightly higher.

All quantities are derived from the public upper bound ``n_bound`` on the
network size that every node knows (Section 1.1 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["ProtocolParams", "log2_ceil"]


def log2_ceil(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer, and at least 1.

    The paper uses ``⌈log2 n⌉`` as the basic phase-length unit; for very
    small networks (n <= 2) we clamp to 1 so that phases are never empty.
    """
    if value < 1:
        raise ConfigurationError(f"log2_ceil requires a positive value, got {value}")
    return max(1, math.ceil(math.log2(max(2, value))))


@dataclass(frozen=True)
class ProtocolParams:
    """Tunable constants of the protocols.

    Every factor multiplies the ``⌈log2 n⌉`` base unit (or is a plain
    multiplicative slack) and has a paper-faithful default.
    """

    #: Rounds per Decay phase, as a multiple of ``⌈log2 n⌉`` (paper: exactly 1).
    decay_phase_factor: float = 1.0
    #: Number of Decay phases needed for a w.h.p. guarantee, as a multiple of
    #: ``⌈log2 n⌉`` (paper: Θ(log n)).
    decay_whp_factor: float = 2.0
    #: Number of recruiting iterations each transmit-probability exponent is
    #: held, as a multiple of ``⌈log2 n⌉`` (paper: Θ(log n)).
    recruiting_hold_factor: float = 1.0
    #: Number of full probability sweeps in one Recruiting protocol run
    #: (paper: Θ(log^2 n) total iterations, i.e. one sweep of Θ(log n) holds).
    recruiting_sweeps: int = 1
    #: Number of epochs per rank in the Bipartite Assignment algorithm, as a
    #: multiple of ``⌈log2 n⌉`` (paper: Θ(log n)).
    assignment_epochs_factor: float = 2.0
    #: Multiplicative slack applied to broadcast round budgets, e.g. the
    #: ``λ`` of Lemma 3.3 / Theorem 1.2.
    schedule_slack: float = 4.0
    #: Extra additive rounds granted to every broadcast budget; keeps tiny
    #: instances (D = 0 or 1) from being starved by integer truncation.
    schedule_slack_additive: int = 32
    #: Number of rings used by the Theorem 1.1 / 1.3 decomposition, expressed
    #: as the target ring width in BFS layers.  ``None`` means use the paper's
    #: ``D / log^4 n`` (which is 1 ring for any practical simulated size).
    ring_width: int | None = None
    #: FEC expansion factor for inter-ring batch handoff (Theorem 1.3).
    fec_expansion: float = 3.0
    #: Multi-message batch size as a multiple of ``⌈log2 n⌉`` (paper: Θ(log n)
    #: messages per generation in the unknown-topology setting).
    batch_size_factor: float = 1.0
    #: Maximum GST rank considered by the distributed construction, as an
    #: additive offset over ``⌈log2 n⌉`` (ranks never exceed ``⌈log2 n⌉``).
    max_rank_offset: int = 1
    #: Rounds between successive pipelined beep waves, which is also the
    #: layer-slot reuse period of the collision-detection broadcast.  Must be
    #: >= 3: with period 3 a node can tell its own layer's slot apart from
    #: both the forward wave (layer d-1) and the backward echo (layer d+1),
    #: so waves never interfere (Section 2 of the paper).
    wave_spacing: int = 3
    #: Length of one GHK contention-backoff cycle, in layer slots, as a
    #: multiple of ``⌈log2 n⌉`` (the decay-within-a-layer analogue of a
    #: Decay phase).
    ghk_backoff_factor: float = 1.0
    #: Backoff cycles budgeted per message in the k-message pipeline.  A
    #: dense layer delivers roughly one message per synchronized decay
    #: cycle, and the productive tail of a cycle resolves only a constant
    #: fraction of the time, so the per-message slot cost is a small
    #: constant number of cycles — this is that hidden constant.
    multi_message_pipeline_factor: float = 3.0
    #: Channel-kernel backend: ``"auto"`` picks dense, sparse, or bitpacked
    #: per topology by density threshold and size floors (below);
    #: ``"dense"``/``"sparse"``/``"bitpacked"`` force one path.  The
    #: backends are bitwise-identical on every run (same traces, same round
    #: counts); the choice only affects speed and memory, so it lives here
    #: as an execution knob, not a protocol constant.
    channel_backend: str = "auto"
    #: In ``"auto"`` mode, use the sparse CSR backend when the adjacency
    #: density ``2·edges / n²`` is at or below this threshold; denser graphs
    #: keep the BLAS matmul, which wins when most of the matrix is nonzero.
    sparse_density_threshold: float = 0.25
    #: In ``"auto"`` mode, never go sparse below this network size: small
    #: matmuls are so cheap (especially batched) that the CSR kernel's
    #: fixed gather/bincount overhead loses even on very sparse graphs —
    #: measured crossover is n ≈ 200–1000 depending on family and batch.
    sparse_min_n: int = 1024
    #: In ``"auto"`` mode, graphs too dense for the CSR backend switch from
    #: the float64 matmul to the bit-packed popcount kernel at or above
    #: this size: same Θ(n²) work but 64 adjacency entries per uint64 word,
    #: so the operand is ~64× smaller and the kernel clears the dense
    #: memory wall (n = 16384 at the 1 GiB ceiling).  Below the floor the
    #: BLAS matmul's per-call overhead is lower and dense stays.
    bitpacked_min_n: int = 4096
    #: Multiplicative slack applied to the default round budget when a run
    #: carries a non-empty fault schedule (message loss and jamming slow
    #: delivery; crashes and outages stall it).  1.0 means faulted runs
    #: keep the paper budget — degradation under that budget is exactly
    #: what the robustness bench measures — while a caller studying
    #: eventual delivery can grant headroom without touching the clean
    #: budget rules.
    fault_budget_slack: float = 1.0

    def __post_init__(self) -> None:
        # Invalid constants must fail at construction, not deep inside a
        # run.  ``replace`` re-runs this, so ``with_overrides`` and the
        # presets are covered automatically.
        self.validate()

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "ProtocolParams":
        """Constants sized so the w.h.p. lemmas hold comfortably."""
        return cls()

    @classmethod
    def fast(cls) -> "ProtocolParams":
        """Small constants for tests and large sweeps (same asymptotics)."""
        return cls(
            decay_phase_factor=1.0,
            decay_whp_factor=1.0,
            recruiting_hold_factor=0.5,
            recruiting_sweeps=1,
            assignment_epochs_factor=1.0,
            schedule_slack=3.0,
            schedule_slack_additive=24,
        )

    def with_overrides(self, **kwargs: Any) -> "ProtocolParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def log_n(self, n_bound: int) -> int:
        """``⌈log2 n⌉`` for the public size bound."""
        return log2_ceil(n_bound)

    def decay_phase_length(self, n_bound: int) -> int:
        """Rounds in one Decay phase (paper: ``⌈log2 n⌉``)."""
        return max(1, math.ceil(self.decay_phase_factor * self.log_n(n_bound)))

    def decay_whp_phases(self, n_bound: int) -> int:
        """Number of Decay phases used whenever the paper says Θ(log n)."""
        return max(1, math.ceil(self.decay_whp_factor * self.log_n(n_bound)))

    def decay_whp_rounds(self, n_bound: int) -> int:
        """Rounds of Decay for a w.h.p. delivery (Θ(log^2 n))."""
        return self.decay_whp_phases(n_bound) * self.decay_phase_length(n_bound)

    def recruiting_hold(self, n_bound: int) -> int:
        """Iterations each probability exponent is held in Recruiting."""
        return max(1, math.ceil(self.recruiting_hold_factor * self.log_n(n_bound)))

    def recruiting_iterations(self, n_bound: int) -> int:
        """Total recruiting iterations (paper: Θ(log^2 n))."""
        return max(
            1,
            self.recruiting_sweeps * self.recruiting_hold(n_bound) * self.log_n(n_bound),
        )

    def recruiting_iteration_rounds(self, n_bound: int) -> int:
        """Rounds in one recruiting iteration: 2 + one Decay phase."""
        return 2 + self.decay_phase_length(n_bound)

    def recruiting_rounds(self, n_bound: int) -> int:
        """Total rounds of one Recruiting protocol run (Θ(log^3 n))."""
        return self.recruiting_iterations(n_bound) * self.recruiting_iteration_rounds(n_bound)

    def assignment_epochs(self, n_bound: int) -> int:
        """Epochs per rank in the Bipartite Assignment algorithm."""
        return max(1, math.ceil(self.assignment_epochs_factor * self.log_n(n_bound)))

    def max_rank(self, n_bound: int) -> int:
        """Largest rank the distributed construction iterates over."""
        return self.log_n(n_bound) + self.max_rank_offset

    def batch_size(self, n_bound: int) -> int:
        """Messages per RLNC generation in the unknown-topology setting."""
        return max(1, math.ceil(self.batch_size_factor * self.log_n(n_bound)))

    def broadcast_budget(self, diameter: int, n_bound: int, k_messages: int = 1) -> int:
        """Round budget ``λ (D + k log n + log^2 n)`` with additive slack."""
        log_n = self.log_n(n_bound)
        base = diameter + k_messages * log_n + log_n * log_n
        return int(math.ceil(self.schedule_slack * base)) + self.schedule_slack_additive

    def beepwave_rounds(self, eccentricity: int) -> int:
        """Rounds for one synchronization beep wave to cover the network.

        The wave is deterministic under collision detection — the pulse
        launched by the source in round 0 reaches hop distance ``d`` in
        round ``d - 1`` and is relayed in round ``d`` — so exactly
        ``eccentricity + 1`` rounds cover every node, no slack needed.
        """
        if eccentricity < 0:
            raise ConfigurationError(
                f"eccentricity must be non-negative, got {eccentricity}"
            )
        return eccentricity + 1

    def ghk_backoff_slots(self, n_bound: int) -> int:
        """Layer slots in one GHK contention-backoff cycle (Θ(log n))."""
        return max(1, math.ceil(self.ghk_backoff_factor * self.log_n(n_bound)))

    def ghk_broadcast_rounds(self, diameter: int, n_bound: int) -> int:
        """Round budget for the collision-detection broadcast: ``O(D + log^2 n)``.

        The sync wave costs ``D`` rounds, each layer slot recurs every
        ``wave_spacing`` rounds, and resolving the worst single layer's
        contention takes ``O(log^2 n)`` slots w.h.p.; the usual multiplicative
        and additive slack absorbs the partially-pipelined remainder.
        """
        if diameter < 0:
            raise ConfigurationError(f"diameter must be non-negative, got {diameter}")
        slots = diameter + self.ghk_backoff_slots(n_bound) * self.decay_whp_phases(n_bound)
        rounds = math.ceil(self.schedule_slack * self.wave_spacing * slots)
        return int(rounds) + self.schedule_slack_additive

    def ghk_multi_message_rounds(
        self, diameter: int, n_bound: int, k_messages: int = 1
    ) -> int:
        """Round budget for the k-message broadcast: ``O(D + k log n + log^2 n)``.

        The headline multi-message regime (Theorem 1.2): the sync wave
        costs ``D`` rounds, each layer then pushes its ``k`` messages
        through its owned slots (one message per slot, ``Θ(log n)`` slots
        of decay backoff per message w.h.p.), and resolving the worst
        single layer's residual contention takes ``O(log^2 n)`` slots —
        all pipelined across layers, so the slot terms add instead of
        multiplying by ``D``.
        """
        if diameter < 0:
            raise ConfigurationError(f"diameter must be non-negative, got {diameter}")
        if not isinstance(k_messages, int) or k_messages < 1:
            raise ConfigurationError(
                f"k_messages must be a positive integer, got {k_messages!r}"
            )
        backoff = self.ghk_backoff_slots(n_bound)
        per_message = self.multi_message_pipeline_factor * k_messages * backoff
        slots = diameter + per_message + backoff * self.decay_whp_phases(n_bound)
        rounds = math.ceil(self.schedule_slack * self.wave_spacing * slots)
        return int(rounds) + self.schedule_slack_additive

    def decay_broadcast_rounds(self, diameter: int, n_bound: int) -> int:
        """Round budget for plain Decay broadcast: ``O((D + log n) log n)``.

        Decay (without collision detection) needs ``Θ(D + log n)`` phases of
        ``⌈log2 n⌉`` rounds; this applies the usual multiplicative and
        additive slack so the w.h.p. event comfortably fits the budget.
        """
        if diameter < 0:
            raise ConfigurationError(f"diameter must be non-negative, got {diameter}")
        phases = diameter + self.decay_whp_phases(n_bound)
        rounds = math.ceil(self.schedule_slack * phases) * self.decay_phase_length(n_bound)
        return int(rounds) + self.schedule_slack_additive

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any parameter is non-positive."""
        positive_fields = [
            "decay_phase_factor",
            "decay_whp_factor",
            "recruiting_hold_factor",
            "recruiting_sweeps",
            "assignment_epochs_factor",
            "schedule_slack",
            "fec_expansion",
            "batch_size_factor",
            "ghk_backoff_factor",
            "multi_message_pipeline_factor",
            "fault_budget_slack",
        ]
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"ProtocolParams.{name} must be positive")
        if self.schedule_slack_additive < 0:
            raise ConfigurationError("schedule_slack_additive must be non-negative")
        if self.ring_width is not None and self.ring_width < 1:
            raise ConfigurationError("ring_width must be a positive number of layers")
        if self.max_rank_offset < 0:
            raise ConfigurationError("max_rank_offset must be non-negative")
        if not isinstance(self.wave_spacing, int) or self.wave_spacing < 3:
            raise ConfigurationError(
                "wave_spacing must be an integer >= 3 (adjacent pipelined waves "
                f"interfere below 3), got {self.wave_spacing!r}"
            )
        if self.channel_backend not in ("auto", "dense", "sparse", "bitpacked"):
            raise ConfigurationError(
                "channel_backend must be 'auto', 'dense', 'sparse' or "
                f"'bitpacked', got {self.channel_backend!r}"
            )
        if not 0.0 <= self.sparse_density_threshold <= 1.0:
            raise ConfigurationError(
                "sparse_density_threshold must be in [0, 1], "
                f"got {self.sparse_density_threshold!r}"
            )
        if not isinstance(self.sparse_min_n, int) or self.sparse_min_n < 0:
            raise ConfigurationError(
                "sparse_min_n must be a non-negative integer, "
                f"got {self.sparse_min_n!r}"
            )
        if not isinstance(self.bitpacked_min_n, int) or self.bitpacked_min_n < 0:
            raise ConfigurationError(
                "bitpacked_min_n must be a non-negative integer, "
                f"got {self.bitpacked_min_n!r}"
            )
