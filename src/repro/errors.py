"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses are
raised by the substrate (simulator, graphs, coding) and by the protocol
layers so that test suites and callers can assert on precise failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "TopologyError",
    "GSTValidationError",
    "ScheduleError",
    "CodingError",
    "DecodingError",
    "BroadcastFailure",
    "AnalysisError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when parameters or protocol configuration are invalid."""


class SimulationError(ReproError):
    """Raised when the round-based simulation engine is misused.

    Examples: registering two protocols for one node, running a simulator
    that already finished, or a protocol returning an invalid action.
    """


class ProtocolError(ReproError):
    """Raised when a protocol reaches an internal state that should be
    impossible under the model assumptions (a bug, not a random failure)."""


class TopologyError(ReproError):
    """Raised for invalid network topologies (disconnected graphs, missing
    source node, non-positive sizes, and similar)."""


class GSTValidationError(ReproError):
    """Raised when a tree claimed to be a Gathering Spanning Tree violates
    one of the GST invariants (BFS property, ranking rule, collision
    freeness)."""


class ScheduleError(ReproError):
    """Raised when a GST transmission schedule is constructed from
    inconsistent labels (levels, ranks, virtual distances)."""


class CodingError(ReproError):
    """Raised by the GF(2) / network-coding substrate on invalid input."""


class DecodingError(CodingError):
    """Raised when message decoding is attempted without enough linearly
    independent packets."""


class BroadcastFailure(ReproError):
    """Raised when a broadcast run finished without delivering the
    message(s) to every node (the "with high probability" event failed or
    the round budget was too small).

    ``sim`` carries the failed run's
    :class:`~repro.sim.core.stats.SimResult` when the driver has one, so
    callers (e.g. the demo's ``--trace``) can inspect the rounds that
    *were* executed.  ``budget`` carries the round budget the run
    exhausted (``None`` when the raiser did not know it), so failure
    consumers can report the same fields a success result exposes.
    """

    def __init__(
        self,
        message: str,
        undelivered: tuple[int, ...] = (),
        *,
        sim: object = None,
        budget: int | None = None,
    ) -> None:
        super().__init__(message)
        self.undelivered = tuple(undelivered)
        self.sim = sim
        self.budget = budget


class AnalysisError(ReproError):
    """Raised by the analysis/sweep harness on malformed experiment input."""


class SanitizerError(ReproError):
    """Raised by the runtime sanitizer (:mod:`repro.analysis.simsan`) when a
    live run violates one of its registered invariants.

    Deliberately *not* a :class:`SimulationError`: the batch engine catches
    and re-wraps that class to attribute kernel errors to items, which would
    strip the structured fields below.  A sanitizer finding is a defect
    report, not an engine-usage error, and must surface verbatim.

    ``check`` is the registered check id (e.g. ``"diff.counts"``,
    ``"conserve.traffic"``); ``round_index``/``seed``/``backend``/
    ``topology`` localize the violating round precisely enough for
    ``python -m repro.analysis.simsan.bisect`` to replay it; ``details``
    carries check-specific context (mismatching nodes, expected/actual
    values) as plain JSON-able data.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str,
        round_index: int,
        seed: int,
        backend: str,
        topology: str,
        details: dict | None = None,
    ) -> None:
        super().__init__(
            f"[{check}] {message} (round={round_index}, seed={seed}, "
            f"backend={backend}, topology={topology})"
        )
        self.check = check
        self.round_index = round_index
        self.seed = seed
        self.backend = backend
        self.topology = topology
        self.details = dict(details) if details else {}
