"""Reproduction of GhaffariHK13: randomized broadcast in radio networks
with collision detection."""

from repro.errors import ReproError
from repro.params import ProtocolParams

__all__ = ["ProtocolParams", "ReproError"]
__version__ = "0.1.0"
