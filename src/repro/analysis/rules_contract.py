"""Kernel-contract rules: operand conformance (SL003), cache discipline
(SL004), and operand-construction routing (SL007).

The channel kernel is backend-polymorphic: ``resolve_channel`` drives any
operand exposing the :class:`~repro.sim.core.channel.DenseOperand`
surface, and the batch engine hands cached topology arrays to every
instance sharing a graph.  Both contracts are purely structural, so a
new backend (the planned GPU operand) or a careless caller can be
rejected at lint time instead of at equivalence-test time.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    FileContext,
    Rule,
    ast_dfs,
    attribute_chain,
    path_has_segments,
)

__all__ = ["CachedArrayRule", "OperandConstructionRule", "OperandContractRule"]


# ---------------------------------------------------------------------- #
# SL003 — kernel-operand conformance
# ---------------------------------------------------------------------- #

#: method -> number of positional arguments after ``self``.
_OPERAND_METHODS: dict[str, int] = {
    "prepare_transmit": 1,
    "transmit_counts": 1,
    "sender_ids": 2,
}


def _is_operand_class(node: ast.ClassDef) -> str | None:
    """The backend tag if the class declares ``backend = "<str>"``, else None.

    The class-level string ``backend`` attribute is how operands register
    with ``select_kernel_operand`` / ``resolve_channel_backend``, so it is
    the marker that puts a class under the contract.
    """
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "backend":
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                        stmt.value.value, str
                    ):
                        return stmt.value.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "backend"
                and stmt.value is not None
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                return stmt.value.value
    return None


def _defines_n(node: ast.ClassDef) -> bool:
    """Whether the class exposes ``n``: property, class attr, or ``self.n``."""
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "n":
                return True
            for inner in ast_dfs(stmt, skip_nested_defs=True):
                for target in _assign_targets(inner):
                    chain = attribute_chain(target)
                    if chain == ["self", "n"]:
                        return True
        elif isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "n" for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "n":
                return True
    return False


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    """Flattened store targets of an assignment-like node (tuples unpacked)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    flat: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    return flat


def _signature_problem(fn: ast.FunctionDef | ast.AsyncFunctionDef, want: int) -> str | None:
    """Why ``fn`` cannot be called with ``self`` + ``want`` positionals, if so."""
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    if not positional or positional[0].arg != "self":
        return "first parameter must be `self`"
    named = len(positional) - 1
    required = named - len(args.defaults)
    if required > want:
        return f"takes {required} required arguments after self, expected {want}"
    if named < want and args.vararg is None:
        return f"accepts only {named} arguments after self, expected {want}"
    missing_kw = [
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    ]
    if missing_kw:
        return "keyword-only parameters without defaults: " + ", ".join(missing_kw)
    return None


class OperandContractRule(Rule):
    """SL003 — channel-operand classes must implement the full kernel surface."""

    id = "SL003"
    title = "kernel-operand contract conformance"
    doc = (
        "Any class declaring a class-level string `backend` attribute is a\n"
        "channel operand: resolve_channel drives it through prepare_transmit /\n"
        "transmit_counts / sender_ids and reads `n`.  A backend missing part of\n"
        "that surface (or with an incompatible signature) would fail only when\n"
        "a run first reaches the kernel — this rule rejects it at lint time, so\n"
        "a future GPU operand fails lint, not the equivalence tests.\n"
        "Required: backend (str), n, prepare_transmit(self, transmit),\n"
        "transmit_counts(self, tx), sender_ids(self, tx, clean).\n"
        "Suppress for a non-operand class that happens to use the attribute\n"
        "name with  # simlint: disable=SL003"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        tag = _is_operand_class(node)
        if tag is None:
            return
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, want in _OPERAND_METHODS.items():
            fn = methods.get(name)
            if fn is None:
                ctx.report(
                    self.id,
                    node,
                    f"operand class {node.name} (backend={tag!r}) is missing "
                    f"required method {name}(self, "
                    + ", ".join(["_"] * want)
                    + ")",
                )
                continue
            problem = _signature_problem(fn, want)
            if problem is not None:
                ctx.report(
                    self.id,
                    fn,
                    f"operand method {node.name}.{name}: {problem}",
                )
        if not _defines_n(node):
            ctx.report(
                self.id,
                node,
                f"operand class {node.name} (backend={tag!r}) must expose `n` "
                "(property, class attribute, or self.n)",
            )


# ---------------------------------------------------------------------- #
# SL004 — read-only cache discipline
# ---------------------------------------------------------------------- #

#: numpy module-level calls whose results are ndarrays (used to decide
#: whether a cached value is an array that needs ``setflags(write=False)``).
_ARRAY_CONSTRUCTORS = frozenset(
    {
        "arange", "array", "asarray", "ascontiguousarray", "asfortranarray",
        "concatenate", "copy", "cumsum", "empty", "empty_like", "eye", "full",
        "full_like", "fromfunction", "frombuffer", "fromiter", "hstack",
        "identity", "linspace", "ones", "ones_like", "packbits", "repeat",
        "stack", "tile", "unpackbits", "vstack", "where", "zeros", "zeros_like",
    }
)

#: methods on cached accessor results that mutate the array in place.
_MUTATING_METHODS = frozenset({"fill", "sort", "partition", "put", "resize"})

#: cached-ndarray accessors whose results callers must never write into.
_READONLY_ACCESSORS = frozenset({"adjacency_matrix", "csr"})


def _compare_is_none(node: ast.AST) -> list[str] | None:
    """``self.X is None`` → the attribute chain, else None."""
    if (
        isinstance(node, ast.Compare)
        and len(node.ops) == 1
        and isinstance(node.ops[0], ast.Is)
        and len(node.comparators) == 1
        and isinstance(node.comparators[0], ast.Constant)
        and node.comparators[0].value is None
    ):
        chain = attribute_chain(node.left)
        if chain is not None and chain[0] == "self" and len(chain) > 1:
            return chain
    return None


def _is_array_expr(node: ast.AST, ctx: FileContext) -> bool:
    """Whether the expression's value is (or contains) a numpy array build."""
    for sub in ast_dfs(node):
        if isinstance(sub, ast.Call):
            chain = attribute_chain(sub.func)
            if chain is None:
                continue
            canonical = ctx.imports.canonical(chain) or chain
            if canonical[0] == "numpy" and canonical[-1] in _ARRAY_CONSTRUCTORS:
                return True
    return False


class CachedArrayRule(Rule):
    """SL004 — cached ndarrays are frozen by producers, never written by callers."""

    id = "SL004"
    title = "read-only cache discipline"
    doc = (
        "Cached-ndarray accessors (RadioNetwork.adjacency_matrix, .csr) return\n"
        "the cache itself: a caller writing into the result silently corrupts\n"
        "every later run sharing the topology.  Two checks enforce the\n"
        "discipline: (a) a function using the `if self._x is None: ... return\n"
        "self._x` idiom to cache an array must call setflags(write=False) on\n"
        "every stored array before returning it; (b) no caller may store into\n"
        "an accessor result (subscript assignment, in-place ops, fill/sort/...,\n"
        "or re-enabling writes via setflags(write=True)).\n"
        "Fix: freeze the cache in the producer; callers needing a mutable copy\n"
        "take `.copy()` first.  Tests asserting the read-only contract may\n"
        "suppress the deliberate write with  # simlint: disable=SL004"
    )

    # ----- (a) producer side: the cache-fill idiom must freeze its arrays ---

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check_producer(node, ctx)
        self._check_callers(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx: FileContext) -> None:
        self._check_producer(node, ctx)
        self._check_callers(node, ctx)

    def visit_Module(self, node: ast.Module, ctx: FileContext) -> None:
        # Module-level statements can also write into accessor results
        # (scripts, notebooks-turned-modules).
        self._check_callers(node, ctx, top_level=True)

    def _check_producer(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        cached: list[str] | None = None
        fill_body: list[ast.stmt] | None = None
        for stmt in fn.body:
            if isinstance(stmt, ast.If):
                chain = _compare_is_none(stmt.test)
                if chain is not None and self._returns_chain(fn, chain):
                    cached = chain
                    fill_body = stmt.body
                    break
        if cached is None or fill_body is None:
            return
        # Stored leaves: the expressions assigned into the cached attribute.
        stored: list[ast.expr] = []
        local_defs: dict[str, ast.expr] = {}
        for stmt in fill_body:
            for sub in ast_dfs(stmt, skip_nested_defs=True):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    t_chain = attribute_chain(target)
                    if t_chain == cached:
                        if isinstance(sub.value, (ast.Tuple, ast.List)):
                            stored.extend(sub.value.elts)
                        else:
                            stored.append(sub.value)
                    elif isinstance(target, ast.Name):
                        local_defs[target.id] = sub.value
        # Resolve which leaves are arrays, tracing one level of local names.
        frozen = self._frozen_names(fn)
        for leaf in stored:
            leaf_name: str | None = None
            expr: ast.expr = leaf
            if isinstance(leaf, ast.Name):
                leaf_name = leaf.id
                expr = local_defs.get(leaf.id, leaf)
            if not _is_array_expr(expr, ctx):
                continue
            key = leaf_name if leaf_name is not None else ".".join(cached)
            if key not in frozen:
                ctx.report(
                    self.id,
                    leaf,
                    f"cached array {'.'.join(cached)} stores {key!r} without "
                    "setflags(write=False); callers receive the mutable cache",
                )

    @staticmethod
    def _returns_chain(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, chain: list[str]
    ) -> bool:
        for sub in ast_dfs(fn, skip_nested_defs=True):
            if isinstance(sub, ast.Return) and sub.value is not None:
                if attribute_chain(sub.value) == chain:
                    return True
        return False

    @staticmethod
    def _frozen_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names/attr-chains receiving ``.setflags(write=False)`` in ``fn``."""
        frozen: set[str] = set()
        for sub in ast_dfs(fn, skip_nested_defs=True):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "setflags"
            ):
                continue
            write_false = any(
                kw.arg == "write"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in sub.keywords
            )
            if not write_false:
                continue
            chain = attribute_chain(sub.func.value)
            if chain is not None:
                frozen.add(chain[0] if len(chain) == 1 else ".".join(chain))
        return frozen

    # ----- (b) caller side: never write into an accessor result ------------

    def _check_callers(
        self,
        scope: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        ctx: FileContext,
        *,
        top_level: bool = False,
    ) -> None:
        tainted: set[str] = set()
        body = scope.body
        for stmt in body:
            if top_level and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in ast_dfs(stmt, skip_nested_defs=True):
                # Taint propagation: x = net.adjacency_matrix(); a, b = net.csr()
                if isinstance(node, ast.Assign):
                    is_accessor = self._is_accessor_call(node.value)
                    for target in node.targets:
                        names = (
                            [t for t in target.elts if isinstance(t, ast.Name)]
                            if isinstance(target, (ast.Tuple, ast.List))
                            else ([target] if isinstance(target, ast.Name) else [])
                        )
                        for name in names:
                            if is_accessor:
                                tainted.add(name.id)
                            else:
                                tainted.discard(name.id)
                # Writes: subscript stores into tainted names or direct results.
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        base = self._subscript_base(target)
                        if base is None:
                            continue
                        if self._is_accessor_call(base):
                            ctx.report(
                                self.id,
                                node,
                                "write into a cached accessor result; take "
                                ".copy() to mutate",
                            )
                        elif isinstance(base, ast.Name) and base.id in tainted:
                            ctx.report(
                                self.id,
                                node,
                                f"write into {base.id!r}, a cached accessor "
                                "result; take .copy() to mutate",
                            )
                # Mutating method calls and setflags(write=True).
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    recv = node.func.value
                    recv_tainted = (
                        isinstance(recv, ast.Name) and recv.id in tainted
                    ) or self._is_accessor_call(recv)
                    if not recv_tainted:
                        continue
                    if node.func.attr in _MUTATING_METHODS:
                        ctx.report(
                            self.id,
                            node,
                            f".{node.func.attr}() mutates a cached accessor "
                            "result; take .copy() first",
                        )
                    elif node.func.attr == "setflags" and any(
                        kw.arg == "write"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in node.keywords
                    ):
                        ctx.report(
                            self.id,
                            node,
                            "re-enabling writes on a cached accessor result",
                        )

    @staticmethod
    def _is_accessor_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _READONLY_ACCESSORS
        )

    @staticmethod
    def _subscript_base(target: ast.AST) -> ast.AST | None:
        """The object being stored into, for ``x[...] = v`` targets."""
        if isinstance(target, ast.Subscript):
            return target.value
        return None


# ---------------------------------------------------------------------- #
# SL007 — operand construction goes through the factory
# ---------------------------------------------------------------------- #

#: the concrete kernel-operand classes (repro.sim.core.channel).
_OPERAND_CLASS_NAMES = frozenset({"BitOperand", "DenseOperand", "SparseOperand"})

#: functions allowed to construct operands directly: the policy factory
#: and the CSR rebuild helper the fault layer uses.
_FACTORY_FUNCTION_NAMES = frozenset({"operand_from_csr", "select_kernel_operand"})


class OperandConstructionRule(Rule):
    """SL007 — sim code builds operands via ``select_kernel_operand`` only."""

    id = "SL007"
    title = "operand construction routed through select_kernel_operand"
    doc = (
        "Code under sim/ may not call DenseOperand / SparseOperand /\n"
        "BitOperand directly: every operand must come from\n"
        "select_kernel_operand (or operand_from_csr for raw CSR input),\n"
        "which owns the backend-selection policy and always builds from\n"
        "the network's frozen cached arrays.  A direct construction\n"
        "bypasses the `backend=\"auto\"` policy, and a hand-built dense\n"
        "matrix or CSR pair can silently disagree with the topology the\n"
        "rest of the run uses.  The defining module\n"
        "(sim/core/channel.py) and the factories themselves are exempt.\n"
        "Tests and tooling outside sim/ (benches, simsan) may construct\n"
        "operands freely.  Suppress a deliberate in-sim construction with\n"
        "  # simlint: disable=SL007"
    )

    def applies_to(self, path: str) -> bool:
        return path_has_segments(path, ("sim",))

    def visit_Module(self, node: ast.Module, ctx: FileContext) -> None:
        self._check_scope(node, ctx)

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check_scope(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx: FileContext) -> None:
        self._check_scope(node, ctx)

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        # Class-body statements (attribute defaults); methods get their
        # own visit, and skip_nested_defs keeps them out of this scan.
        self._check_scope(node, ctx)

    def _check_scope(
        self,
        scope: ast.Module | ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> None:
        if ctx.basename == "channel.py" and path_has_segments(ctx.path, ("sim", "core")):
            return
        if (
            isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
            and scope.name in _FACTORY_FUNCTION_NAMES
        ):
            return
        for node in ast_dfs(scope, skip_nested_defs=True):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            canonical = ctx.imports.canonical(chain)
            if canonical is None or canonical[0] != "repro":
                continue
            name = canonical[-1]
            if name in _OPERAND_CLASS_NAMES:
                ctx.report(
                    self.id,
                    node,
                    f"direct {name}(...) construction in sim/ code; go through "
                    "select_kernel_operand (or operand_from_csr) instead",
                )
