"""Static analysis for the simulator: determinism & kernel-contract lints.

``repro.analysis`` hosts **simlint**, an AST-based checker enforcing the
repo's load-bearing invariants at lint time instead of test time:

* seeded-RNG discipline (SL001) and wall-clock independence (SL002),
  which keep runs bitwise-reproducible;
* the kernel-operand contract (SL003) and read-only cache discipline
  (SL004), which keep the dense/sparse/bitpacked backends interchangeable;
* registry completeness (SL005) and ordered iteration in hot paths
  (SL006), which keep the object/array execution paths equivalent.

Run it as ``python -m repro.analysis.simlint src tests``.  Suppress a
single finding with a ``# simlint: disable=SL00X`` comment on the same
line; see ``--explain SL00X`` for per-rule documentation.
"""

from repro.analysis.core import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    RuleEngine,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "RuleEngine",
]
