"""Determinism rules: seeded RNG discipline (SL001) and wall-clock bans (SL002).

Every run in this repo must be a pure function of ``(topology, protocol,
seed)``.  That only holds if randomness flows exclusively through
:mod:`repro.sim.rng`'s ``SeedSequence``-derived streams and nothing in
the result path reads the wall clock.  These rules make both properties
checkable without executing anything.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, attribute_chain, path_has_segments

__all__ = ["GlobalRngRule", "WallClockRule"]

#: numpy.random symbols compatible with explicit seeding.
_ALLOWED_NP_RANDOM = frozenset(
    {"SeedSequence", "Generator", "BitGenerator", "PCG64", "default_rng"}
)


def _canonical(ctx: FileContext, node: ast.AST) -> list[str] | None:
    chain = attribute_chain(node)
    if chain is None:
        return None
    return ctx.imports.canonical(chain)


class GlobalRngRule(Rule):
    """SL001 — no global/unseeded RNG anywhere under ``sim/``."""

    id = "SL001"
    title = "no global RNG under sim/"
    doc = (
        "Simulator code must draw randomness only from repro.sim.rng's\n"
        "SeedSequence-derived per-node streams.  Global state — the stdlib\n"
        "`random` module, `np.random.*` module-level functions (np.random.seed,\n"
        "np.random.rand, ...), or `np.random.default_rng()` called without an\n"
        "explicit seed — makes runs depend on interpreter history and breaks\n"
        "bitwise reproducibility across execution paths.\n"
        "\n"
        "Allowed: numpy.random.SeedSequence / Generator / BitGenerator / PCG64,\n"
        "and default_rng(seed) with an explicit non-None seed.\n"
        "Fix: thread a stream from repro.sim.rng.stream(...) / node_streams(...).\n"
        "Suppress a deliberate exception with  # simlint: disable=SL001"
    )

    def applies_to(self, path: str) -> bool:
        return path_has_segments(path, ("sim",))

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "random":
                ctx.report(
                    self.id,
                    node,
                    "stdlib `random` is global-state RNG; use repro.sim.rng streams",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level != 0 or node.module is None:
            return
        if node.module == "random" or node.module.startswith("random."):
            ctx.report(
                self.id,
                node,
                "stdlib `random` is global-state RNG; use repro.sim.rng streams",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    ctx.report(
                        self.id,
                        node,
                        f"numpy.random.{alias.name} uses the global RNG; "
                        "allowed: " + ", ".join(sorted(_ALLOWED_NP_RANDOM)),
                    )

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        canonical = _canonical(ctx, node)
        if (
            canonical is not None
            and len(canonical) == 3
            and canonical[:2] == ["numpy", "random"]
            and canonical[2] not in _ALLOWED_NP_RANDOM
        ):
            ctx.report(
                self.id,
                node,
                f"numpy.random.{canonical[2]} uses the global RNG; "
                "use repro.sim.rng streams",
            )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        canonical = _canonical(ctx, node.func)
        if canonical is None:
            return
        if canonical == ["numpy", "random", "default_rng"]:
            if self._seedless(node):
                ctx.report(
                    self.id,
                    node,
                    "default_rng() without an explicit seed is entropy-seeded "
                    "and irreproducible; pass a seed or SeedSequence",
                )
        elif (
            isinstance(node.func, ast.Name)
            and len(canonical) == 3
            and canonical[:2] == ["numpy", "random"]
            and canonical[2] not in _ALLOWED_NP_RANDOM
        ):
            # `from numpy.random import shuffle; shuffle(...)` — the import
            # is flagged too, but the call site is where the fix happens.
            ctx.report(
                self.id,
                node,
                f"numpy.random.{canonical[2]} uses the global RNG; "
                "use repro.sim.rng streams",
            )

    @staticmethod
    def _seedless(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for kw in node.keywords:
            if kw.arg == "seed":
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        return True


#: ``basename -> permitted time symbols``: telemetry timing in the batch
#: engine may use monotonic timers (RunTelemetry is deliberately excluded
#: from equivalence checks), but nothing else in sim/core may touch time.
_TIME_ALLOWLIST: dict[str, frozenset[str]] = {
    "batch.py": frozenset(
        {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
    ),
}

_DATETIME_NOW = frozenset({"now", "today", "utcnow"})


class WallClockRule(Rule):
    """SL002 — no wall-clock/time dependence inside ``sim/core/``."""

    id = "SL002"
    title = "no wall-clock reads in sim/core/"
    doc = (
        "sim/core holds the result types and round loops whose outputs must be\n"
        "bitwise-identical across backends and machines, so nothing there may\n"
        "read `time.*` or `datetime.now/today/utcnow`.  Telemetry modules are\n"
        "allowlisted for monotonic timers only (batch.py: time.perf_counter and\n"
        "friends feed RunTelemetry, which equivalence checks deliberately skip).\n"
        "Fix: move timing into telemetry/observer code outside the result path,\n"
        "or record rounds/events instead of seconds.\n"
        "Suppress a deliberate exception with  # simlint: disable=SL002"
    )

    def applies_to(self, path: str) -> bool:
        return path_has_segments(path, ("sim", "core"))

    def _allowed(self, ctx: FileContext, symbol: str) -> bool:
        return symbol in _TIME_ALLOWLIST.get(ctx.basename, frozenset())

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level != 0 or node.module != "time":
            return
        for alias in node.names:
            if not self._allowed(ctx, alias.name):
                ctx.report(
                    self.id,
                    node,
                    f"time.{alias.name} imported in sim/core; results must not "
                    "depend on the clock",
                )

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        canonical = _canonical(ctx, node)
        if canonical is None or len(canonical) < 2:
            return
        if canonical[0] == "time":
            if not self._allowed(ctx, canonical[1]):
                ctx.report(
                    self.id,
                    node,
                    f"time.{canonical[1]} in sim/core; results must not depend "
                    "on the clock",
                )
        elif canonical[0] == "datetime" and canonical[-1] in _DATETIME_NOW:
            ctx.report(
                self.id,
                node,
                f"datetime …{canonical[-1]}() in sim/core; results must not "
                "depend on the clock",
            )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Name):
            return
        canonical = _canonical(ctx, node.func)
        if canonical is None:
            return
        if canonical[0] == "time" and len(canonical) == 2:
            if not self._allowed(ctx, canonical[1]):
                ctx.report(
                    self.id,
                    node,
                    f"time.{canonical[1]} in sim/core; results must not depend "
                    "on the clock",
                )
        elif canonical[0] == "datetime" and canonical[-1] in _DATETIME_NOW:
            ctx.report(
                self.id,
                node,
                f"datetime …{canonical[-1]}() in sim/core; results must not "
                "depend on the clock",
            )
