"""Registry-completeness rule (SL005): object/array parity + equivalence coverage.

Every protocol exists twice — per-node object form
(``@register_protocol``) and whole-network array form
(``@register_array_protocol``) — and the repo's core guarantee is that
the two are bitwise-identical on shared seeds.  That guarantee is only
tested for protocols that (a) have both forms and (b) appear in an
equivalence test module; this rule makes both conditions lintable.

This is the one cross-file rule: each file contributes *facts* (names it
registers, tokens of equivalence test modules) and the verdicts are
computed in :meth:`RegistryCompletenessRule.finalize` over the whole run.
"""

from __future__ import annotations

import ast
import re
from typing import Any

from repro.analysis.core import FileContext, Finding, Rule, attribute_chain

__all__ = ["RegistryCompletenessRule"]

_TOKEN_RE = re.compile(r"[a-z0-9_]+")


def _decorator_registration(node: ast.expr, register_name: str) -> str | None:
    """The registered name if ``node`` is ``@register_name("...")``, else None."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    chain = attribute_chain(node.func)
    if chain is None or chain[-1] != register_name:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


class RegistryCompletenessRule(Rule):
    """SL005 — object-form protocols need array twins and equivalence coverage."""

    id = "SL005"
    title = "protocol registry completeness"
    doc = (
        "A protocol registered with @register_protocol(name) is only covered by\n"
        "the repo's determinism guarantee when a matching\n"
        "@register_array_protocol(name) exists and the name shows up in at\n"
        "least one equivalence test module (tests/test_*equivalence*.py) —\n"
        "that is where object/array and backend bitwise-identity is enforced.\n"
        "This project-level rule fires on the registering line when either half\n"
        "is missing.  The coverage check is skipped when no equivalence module\n"
        "is part of the analyzed set (e.g. linting a single file).\n"
        "Fix: add the array twin and extend an equivalence test; suppress a\n"
        "deliberately object-only protocol with  # simlint: disable=SL005"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._object: dict[str, int] = {}
        self._array: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        for decorator in node.decorator_list:
            name = _decorator_registration(decorator, "register_protocol")
            if name is not None:
                self._object.setdefault(name, node.lineno)
            name = _decorator_registration(decorator, "register_array_protocol")
            if name is not None:
                self._array.append(name)

    def end_file(self, ctx: FileContext) -> None:
        if self._object:
            ctx.facts["object_protocols"] = dict(sorted(self._object.items()))
        if self._array:
            ctx.facts["array_protocols"] = sorted(set(self._array))
        if "equivalence" in ctx.basename and ctx.basename.startswith("test"):
            ctx.facts["equivalence_tokens"] = sorted(
                set(_TOKEN_RE.findall(ctx.source.lower()))
            )

    def finalize(self, facts: dict[str, dict[str, Any]]) -> list[Finding]:
        object_sites: dict[str, tuple[str, int]] = {}
        array_names: set[str] = set()
        equivalence_tokens: list[set[str]] = []
        for path in sorted(facts):
            file_facts = facts[path]
            for name, line in file_facts.get("object_protocols", {}).items():
                object_sites.setdefault(name, (path, int(line)))
            array_names.update(file_facts.get("array_protocols", []))
            tokens = file_facts.get("equivalence_tokens")
            if tokens:
                equivalence_tokens.append(set(tokens))
        findings: list[Finding] = []
        for name, (path, line) in sorted(object_sites.items()):
            if name not in array_names:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=path,
                        line=line,
                        col=0,
                        message=(
                            f"protocol {name!r} has no array counterpart "
                            "(@register_array_protocol); the array path cannot "
                            "run it and equivalence is untestable"
                        ),
                    )
                )
            elif equivalence_tokens and not any(
                name.lower() in token
                for tokens in equivalence_tokens
                for token in tokens
            ):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=path,
                        line=line,
                        col=0,
                        message=(
                            f"protocol {name!r} never appears in an equivalence "
                            "test module; its object/array identity is unchecked"
                        ),
                    )
                )
        return findings
