"""simlint CLI: ``python -m repro.analysis.simlint [paths...]``.

Exit codes: **0** clean, **1** findings reported, **2** usage error
(unknown rule, missing path).  ``--format json`` emits a machine-readable
report; ``--format github`` emits one ``::error`` workflow command per
finding so CI findings surface as inline annotations on the pull
request; ``--explain SL00X`` prints a rule's full documentation;
``--no-cache`` disables the content-hash result cache
(``.simlint-cache.json`` by default, safe to delete at any time —
it self-invalidates when any rule source changes).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.core import Finding, Rule, RuleEngine
from repro.analysis.rules_contract import (
    CachedArrayRule,
    OperandConstructionRule,
    OperandContractRule,
)
from repro.analysis.rules_order import UnorderedIterationRule
from repro.analysis.rules_registry import RegistryCompletenessRule
from repro.analysis.rules_rng import GlobalRngRule, WallClockRule
from repro.errors import AnalysisError

__all__ = ["DEFAULT_RULES", "build_engine", "main"]

#: rule classes in id order; ``build_engine`` instantiates fresh copies so
#: concurrent engines never share per-file state.
DEFAULT_RULES: tuple[type[Rule], ...] = (
    GlobalRngRule,
    WallClockRule,
    OperandContractRule,
    CachedArrayRule,
    RegistryCompletenessRule,
    UnorderedIterationRule,
    OperandConstructionRule,
)

DEFAULT_CACHE = ".simlint-cache.json"


def build_engine(only: Sequence[str] | None = None) -> RuleEngine:
    """A fresh engine over the default ruleset (optionally id-filtered)."""
    rules = [cls() for cls in DEFAULT_RULES]
    if only is not None:
        wanted = set(only)
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    return RuleEngine(rules)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description="Determinism & kernel-contract lints for the simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="report format (default: human); 'github' prints one ::error "
        "workflow command per finding for inline PR annotations",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        metavar="PATH",
        help=f"result-cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's full documentation and exit",
    )
    return parser


def _github_escape(value: str, *, property_value: bool = False) -> str:
    """Escape data for a GitHub Actions workflow command.

    ``%``/CR/LF are meaningful everywhere; property values (file, title)
    additionally reserve ``:`` and ``,`` as delimiters.
    """
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def _github_annotation(finding: Finding) -> str:
    properties = (
        f"file={_github_escape(finding.path, property_value=True)},"
        f"line={finding.line},"
        # simlint columns are 0-based (ast.col_offset); annotations are 1-based.
        f"col={finding.col + 1},"
        f"title={_github_escape('simlint ' + finding.rule, property_value=True)}"
    )
    return f"::error {properties}::{_github_escape(finding.message)}"


def _list_rules() -> str:
    lines = []
    for cls in DEFAULT_RULES:
        lines.append(f"{cls.id}  {cls.title}")
    return "\n".join(lines)


def _explain(rule_id: str) -> str:
    for cls in DEFAULT_RULES:
        if cls.id == rule_id:
            return f"{cls.id} — {cls.title}\n\n{cls.doc}"
    raise AnalysisError(
        f"unknown rule id {rule_id!r}; known: "
        + ", ".join(cls.id for cls in DEFAULT_RULES)
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    try:
        if args.list_rules:
            print(_list_rules())
            return 0
        if args.explain:
            print(_explain(args.explain))
            return 0
        engine = build_engine(args.select)
        report = engine.run(
            args.paths, cache_path=None if args.no_cache else args.cache
        )
    except AnalysisError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif args.format == "github":
        for finding in report.findings:
            print(_github_annotation(finding))
    else:
        for finding in report.findings:
            print(finding.render())
        cached = (
            f" ({report.files_from_cache} cached)" if report.files_from_cache else ""
        )
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        print(f"simlint: {report.files_checked} files{cached}: {status}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
