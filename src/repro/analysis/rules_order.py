"""Ordered-iteration rule (SL006): no set iteration in kernel/engine hot paths.

Set iteration order depends on element hashes and insertion history, so
any set whose iteration order reaches an array op (a ``list(...)`` fed
to fancy indexing, a ``for`` loop appending per-element results) makes
the run depend on incidental state.  Inside ``sim/core/`` — the round
loops and channel kernel — this rule bans materializing a set's order
outright; ``sorted(...)`` is the sanctioned escape hatch.  Dicts are
exempt: insertion order is deterministic in modern Python and the batch
engine relies on it.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, ast_dfs, path_has_segments

__all__ = ["UnorderedIterationRule"]

#: builtins/constructors that materialize their argument's iteration order.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

#: set methods returning sets: taint flows through them.
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _is_set_expr(node: ast.AST, tainted: set[str]) -> bool:
    """Whether the expression evaluates to a set (literal, comp, or tainted)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_PRODUCING_METHODS
            and _is_set_expr(func.value, tainted)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, tainted) or _is_set_expr(node.right, tainted)
    return False


class UnorderedIterationRule(Rule):
    """SL006 — never materialize a set's iteration order in ``sim/core/``."""

    id = "SL006"
    title = "no unordered iteration in hot paths"
    doc = (
        "Iterating a set (for-loop, comprehension, list()/tuple()/enumerate()/\n"
        "iter()/reversed(), or .pop()) materializes an order that depends on\n"
        "element hashes and insertion history.  In sim/core/ — the round loops\n"
        "and channel kernel — that order reaches array ops (fancy indexing,\n"
        "per-element appends), silently breaking bitwise reproducibility.\n"
        "Order-free reductions (len, min, max, any, all, membership) are fine\n"
        "and not flagged.  Dicts are exempt: insertion order is deterministic\n"
        "and the batch engine's grouping relies on it.\n"
        "Fix: iterate `sorted(the_set)` instead; suppress a provably\n"
        "order-free loop with  # simlint: disable=SL006"
    )

    def applies_to(self, path: str) -> bool:
        return path_has_segments(path, ("sim", "core"))

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._scan_scope(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._scan_scope(node, ctx)

    def _scan_scope(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        tainted: set[str] = set()
        # Parameters annotated as sets are tainted from the start.
        for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        ):
            if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                tainted.add(arg.arg)
        for stmt in fn.body:
            for node in ast_dfs(stmt, skip_nested_defs=True):
                self._update_taint(node, tainted)
                self._check_node(node, tainted, ctx)

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
        if isinstance(node, ast.Subscript):
            return UnorderedIterationRule._is_set_annotation(node.value)
        if isinstance(node, ast.Attribute):
            return node.attr in {"Set", "FrozenSet", "AbstractSet"}
        return False

    def _update_taint(self, node: ast.AST, tainted: set[str]) -> None:
        if isinstance(node, ast.Assign):
            is_set = _is_set_expr(node.value, tainted)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if is_set:
                        tainted.add(target.id)
                    else:
                        tainted.discard(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if self._is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, tainted)
            ):
                tainted.add(node.target.id)
            else:
                tainted.discard(node.target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            # `s |= {...}` keeps (or creates) set-ness; other aug-ops don't.
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                if _is_set_expr(node.value, tainted) or node.target.id in tainted:
                    tainted.add(node.target.id)

    def _check_node(self, node: ast.AST, tainted: set[str], ctx: FileContext) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, tainted):
                ctx.report(
                    self.id,
                    node,
                    "for-loop over a set materializes hash order; iterate "
                    "sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, tainted):
                    ctx.report(
                        self.id,
                        node,
                        "comprehension over a set materializes hash order; "
                        "iterate sorted(...) instead",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_MATERIALIZERS
                and node.args
                and _is_set_expr(node.args[0], tainted)
            ):
                ctx.report(
                    self.id,
                    node,
                    f"{func.id}() over a set materializes hash order; use "
                    "sorted(...) instead",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and _is_set_expr(func.value, tainted)
            ):
                ctx.report(
                    self.id,
                    node,
                    "set.pop() removes a hash-order-dependent element; pop from "
                    "a sorted list instead",
                )
