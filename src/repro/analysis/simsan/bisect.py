"""The divergence bisector: localize a cross-backend mismatch to its round.

When the sanitizer's differential check reports a ``diff.*`` violation,
the :class:`~repro.errors.SanitizerError` carries everything needed to
replay the run: seed, topology, protocol backend.  This module does the
replay — once on the active backend, once on the dense reference — records
a per-round sha256 digest over the packed plan masks and the raw kernel
output, binary-searches the digest sequences to the **first divergent
round**, and dumps a minimal repro bundle (packed masks at the divergent
round, adjacency version, the engine stream's coin cursor) as JSON.

Usage::

    python -m repro.analysis.simsan.bisect --protocol decay \\
        --topology grid --n 64 --seed 3 --backend sparse --out-dir /tmp

Exit status: 0 when the replays agree on every round, 1 when a divergence
was found (the bundle path is printed), 2 on usage errors.

``--inject-wrong-at R`` wraps the active backend's operand so it returns
a corrupted neighbour count from round ``R`` on — the self-test knob the
test suite (and the README walkthrough) uses to prove the bisector
pinpoints the injected round exactly.  Injection composes with crash,
loss, and jammer schedules but not with edge flips, whose operand
rebuilds would silently drop the wrapper mid-run.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import RoundPlan
from repro.sim.core.batch import ArrayEngine, select_kernel_operand
from repro.sim.core.channel import ChannelRound, KernelOperand, pack_mask
from repro.sim.faults import FaultSchedule, sample_fault_schedule
from repro.sim.runners import broadcast_spec
from repro.sim.topology import TOPOLOGY_NAMES, RadioNetwork, from_spec

__all__ = [
    "BisectOutcome",
    "ReplaySpec",
    "WrongFeedbackOperand",
    "bisect_run",
    "first_divergent_round",
    "main",
    "replay_digests",
]

BUNDLE_SCHEMA = "simsan-bundle-1"

#: The fixed reference backend — the BLAS matmul operand, the simplest
#: kernel and the one the differential checker certifies against.
REFERENCE_BACKEND = "dense"


@dataclass(frozen=True)
class ReplaySpec:
    """Everything needed to deterministically replay one run."""

    protocol: str
    topology: str
    n: int
    seed: int
    #: the backend under suspicion (the sanitized run's ``backend`` field).
    backend: str
    preset: str = "fast"
    #: round budget; ``None`` means the protocol spec's default rule.
    budget: int | None = None
    crash_rate: float = 0.0
    loss_rate: float = 0.0
    jammers: int = 0
    edge_flip_rate: float = 0.0


class WrongFeedbackOperand:
    """Self-test corruption: a backend returning wrong counts from round R.

    Wraps a real operand and adds 1 to node 0's transmitting-neighbour
    count on every kernel call from ``wrong_from`` onward — the minimal
    "buggy new backend" the bisector must localize to exactly that round.
    """

    def __init__(self, inner: KernelOperand, wrong_from: int) -> None:
        self._inner = inner
        self._calls = 0
        self.wrong_from = wrong_from
        self.backend: str = inner.backend
        self.n: int = inner.n

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        return self._inner.prepare_transmit(transmit)

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        counts = self._inner.transmit_counts(tx)
        call = self._calls
        self._calls += 1
        if call >= self.wrong_from:
            counts = counts.copy()
            counts[..., 0] += 1
        return counts

    def sender_ids(self, tx: np.ndarray, clean: np.ndarray) -> np.ndarray:
        return self._inner.sender_ids(tx, clean)


def _fault_schedule(
    spec: ReplaySpec, budget: int, network: RadioNetwork
) -> FaultSchedule | None:
    if not (
        spec.crash_rate or spec.loss_rate or spec.jammers or spec.edge_flip_rate
    ):
        return None
    return sample_fault_schedule(
        network,
        seed=spec.seed,
        horizon=budget,
        crash_rate=spec.crash_rate,
        loss_rate=spec.loss_rate,
        jammers=spec.jammers,
        edge_flip_rate=spec.edge_flip_rate,
    )


def _build_engine(
    spec: ReplaySpec, backend: str, inject_wrong_at: int | None
) -> tuple[ArrayEngine, int]:
    """One fresh engine on the named backend, plus its round budget."""
    network = from_spec(spec.topology, spec.n)
    base = (
        ProtocolParams.paper() if spec.preset == "paper" else ProtocolParams.fast()
    )
    params = base.with_overrides(channel_backend=backend)
    bspec = broadcast_spec(spec.protocol)
    budget = (
        spec.budget
        if spec.budget is not None
        else bspec.budget_for(params, network, network.n, {})
    )
    faults = _fault_schedule(spec, budget, network)
    if inject_wrong_at is not None and spec.edge_flip_rate:
        raise ConfigurationError(
            "--inject-wrong-at cannot combine with edge flips: the fault "
            "layer's operand rebuilds would drop the injection mid-run"
        )
    operand: KernelOperand | WrongFeedbackOperand = select_kernel_operand(
        network, params
    )
    if inject_wrong_at is not None:
        operand = WrongFeedbackOperand(operand, inject_wrong_at)
    engine = ArrayEngine(
        network,
        bspec.array_factory(message="broadcast"),
        seed=spec.seed,
        collision_detection=bspec.default_collision_detection,
        params=params,
        kernel_operand=operand,  # type: ignore[arg-type]
        faults=faults,
    )
    return engine, budget


def _round_digest(plan: RoundPlan, channel: ChannelRound) -> bytes:
    """Backend-independent fingerprint of one raw kernel round."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(pack_mask(plan.transmit)).tobytes())
    h.update(np.ascontiguousarray(pack_mask(plan.listen)).tobytes())
    h.update(np.ascontiguousarray(channel.counts, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(pack_mask(channel.clean)).tobytes())
    senders = np.where(channel.clean, channel.senders, 0).astype(np.int64)
    h.update(np.ascontiguousarray(senders).tobytes())
    return h.digest()


def _coin_cursor(engine: ArrayEngine) -> dict:
    """The engine-stream RNG state plus a digest over the node streams."""
    node_digest = hashlib.sha256()
    for gen in engine.streams.nodes:
        node_digest.update(
            json.dumps(gen.bit_generator.state, sort_keys=True, default=int).encode()
        )
    return {
        "engine_stream_state": engine.streams.engine.bit_generator.state,
        "node_streams_sha256": node_digest.hexdigest(),
    }


def replay_digests(
    spec: ReplaySpec,
    *,
    backend: str,
    inject_wrong_at: int | None = None,
    capture_at: int | None = None,
) -> tuple[list[bytes], dict | None]:
    """Replay one run on ``backend``; per-round digests plus an optional capture.

    ``capture_at`` snapshots the repro-bundle ingredients (packed plan
    masks, adjacency version, coin cursor) just before that round's
    feedback is applied — the state a debugger needs to re-resolve the
    divergent round in isolation.
    """
    engine, budget = _build_engine(spec, backend, inject_wrong_at)
    digests: list[bytes] = []
    captured: dict | None = None
    while engine.round_index < budget and not engine.protocol.done():
        current = engine.round_index
        plan = engine.begin_round()
        channel = engine.resolve_round()
        digests.append(_round_digest(plan, channel))
        if capture_at is not None and current == capture_at:
            fault_state = engine.fault_state
            captured = {
                "round": current,
                "transmit_packed": pack_mask(plan.transmit).tolist(),
                "listen_packed": pack_mask(plan.listen).tolist(),
                "adjacency_version": (
                    0 if fault_state is None else fault_state.adjacency_version
                ),
                "digest": digests[-1].hex(),
                "coin_cursor": _coin_cursor(engine),
            }
        engine.complete_round(channel)
        if capture_at is not None and current >= capture_at:
            break
    return digests, captured


def first_divergent_round(active: list[bytes], reference: list[bytes]) -> int | None:
    """Binary-search the longest agreeing prefix; first differing index or None.

    Digest sequences agree on a prefix and (if the backends diverge)
    disagree forever after — once one round's feedback differs, the
    protocols' subsequent masks differ too — so "all of the first ``k``
    rounds agree" is monotone in ``k`` and bisectable.  Replays of
    different lengths with an agreeing common prefix diverge at the
    shorter length (one run ended while the other continued).
    """
    m = min(len(active), len(reference))
    lo, hi = 0, m
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if active[:mid] == reference[:mid]:
            lo = mid
        else:
            hi = mid - 1
    if lo < m:
        return lo
    return None if len(active) == len(reference) else m


@dataclass(frozen=True)
class BisectOutcome:
    """Result of one bisection: where the backends first disagreed."""

    spec: ReplaySpec
    divergent_round: int | None
    active_rounds: int
    reference_rounds: int


def bisect_run(
    spec: ReplaySpec, *, inject_wrong_at: int | None = None
) -> BisectOutcome:
    """Replay ``spec`` on its backend and the dense reference; locate divergence."""
    active, _ = replay_digests(
        spec, backend=spec.backend, inject_wrong_at=inject_wrong_at
    )
    reference, _ = replay_digests(spec, backend=REFERENCE_BACKEND)
    return BisectOutcome(
        spec=spec,
        divergent_round=first_divergent_round(active, reference),
        active_rounds=len(active),
        reference_rounds=len(reference),
    )


def write_bundle(
    spec: ReplaySpec,
    divergent_round: int,
    out_dir: Path,
    *,
    inject_wrong_at: int | None = None,
) -> Path:
    """Re-replay to the divergent round and dump the repro bundle as JSON."""
    _, active_capture = replay_digests(
        spec,
        backend=spec.backend,
        inject_wrong_at=inject_wrong_at,
        capture_at=divergent_round,
    )
    _, reference_capture = replay_digests(
        spec, backend=REFERENCE_BACKEND, capture_at=divergent_round
    )
    bundle = {
        "schema": BUNDLE_SCHEMA,
        "spec": asdict(spec),
        "reference_backend": REFERENCE_BACKEND,
        "divergent_round": divergent_round,
        "active": active_capture,
        "reference": reference_capture,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / (
        f"simsan-bundle-{spec.protocol}-{spec.topology}-n{spec.n}"
        f"-seed{spec.seed}-{spec.backend}-round{divergent_round}.json"
    )
    path.write_text(json.dumps(bundle, indent=2, default=int) + "\n")
    return path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simsan.bisect",
        description=(
            "Replay a sanitized run on its backend and the dense reference, "
            "binary-search to the first divergent round, and dump a repro "
            "bundle."
        ),
    )
    parser.add_argument("--protocol", default="decay", help="broadcast protocol name")
    parser.add_argument(
        "--topology", default="grid", choices=TOPOLOGY_NAMES, help="topology family"
    )
    parser.add_argument("--n", type=int, default=64, help="network size")
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--backend",
        default="sparse",
        choices=("dense", "sparse", "bitpacked"),
        help="the backend under suspicion",
    )
    parser.add_argument(
        "--preset", default="fast", choices=("fast", "paper"), help="params preset"
    )
    parser.add_argument(
        "--budget", type=int, default=None, help="round budget (default: spec rule)"
    )
    parser.add_argument("--crash-rate", type=float, default=0.0)
    parser.add_argument("--loss-rate", type=float, default=0.0)
    parser.add_argument("--jammers", type=int, default=0)
    parser.add_argument("--edge-flip-rate", type=float, default=0.0)
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory the repro bundle is written to",
    )
    parser.add_argument(
        "--inject-wrong-at",
        type=int,
        default=None,
        metavar="R",
        help="self-test: corrupt the active backend's counts from round R on",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    spec = ReplaySpec(
        protocol=args.protocol,
        topology=args.topology,
        n=args.n,
        seed=args.seed,
        backend=args.backend,
        preset=args.preset,
        budget=args.budget,
        crash_rate=args.crash_rate,
        loss_rate=args.loss_rate,
        jammers=args.jammers,
        edge_flip_rate=args.edge_flip_rate,
    )
    try:
        outcome = bisect_run(spec, inject_wrong_at=args.inject_wrong_at)
    except ConfigurationError as exc:
        parser.exit(2, f"error: {exc}\n")
    if outcome.divergent_round is None:
        print(
            f"no divergence: {spec.backend} and {REFERENCE_BACKEND} agree on "
            f"all {outcome.active_rounds} rounds "
            f"({spec.protocol} on {spec.topology}-{spec.n}, seed {spec.seed})"
        )
        return 0
    bundle = write_bundle(
        spec,
        outcome.divergent_round,
        args.out_dir,
        inject_wrong_at=args.inject_wrong_at,
    )
    print(
        f"first divergent round: {outcome.divergent_round} "
        f"({spec.backend} vs {REFERENCE_BACKEND}, {spec.protocol} on "
        f"{spec.topology}-{spec.n}, seed {spec.seed})"
    )
    print(f"repro bundle: {bundle}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
