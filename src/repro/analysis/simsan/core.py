"""The runtime sanitizer harness: per-round invariant checking for engines.

A :class:`Sanitizer` is attached by an
:class:`~repro.sim.core.batch.ArrayEngine` when the run opts in
(``sanitize=True``, or ``REPRO_SANITIZE=1`` in the environment) and is
invoked from the engine's round hooks:

* at plan time — kernel-boundary contracts (mask dtypes/shapes, the
  half-duplex disjointness precondition, crashed radios forced off);
* at channel time, on the **raw** kernel output before fault perception —
  operand size consistency plus the differential backend check
  (:mod:`repro.analysis.simsan.differential`), which recomputes the round
  on a reference :class:`~repro.sim.core.channel.DenseOperand` and
  compares bitwise;
* after counters — the engine's streaming traffic counters against an
  independently accumulated shadow copy, and the fault layer's dropped
  receptions against the receptions the round actually offered;
* at result time — the conservation laws of every frozen
  :class:`~repro.sim.core.stats.SimResult`
  (:func:`~repro.sim.core.stats.conservation_violation`).

Every violation raises a structured :class:`~repro.errors.SanitizerError`
carrying the check id, round, seed, backend, and topology — enough for
``python -m repro.analysis.simsan.bisect`` to replay the run and
binary-search differential mismatches to their first divergent round.

The harness holds no reference to the engine; the engine passes each
hook exactly the arrays it is about to act on, so a sanitized run checks
what actually executed, not a parallel reconstruction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.simsan.checks import (
    cache_discipline_violation,
    crashed_plan_violation,
    mask_contract_violation,
)
from repro.analysis.simsan.differential import DifferentialChecker
from repro.errors import SanitizerError
from repro.sim.core.stats import SimResult, conservation_violation
from repro.sim.rng import stream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core.array_protocol import RoundPlan
    from repro.sim.core.channel import ChannelRound, KernelOperand
    from repro.sim.faults import FaultState
    from repro.sim.topology import RadioNetwork

__all__ = [
    "CHECKS",
    "CheckInfo",
    "Sanitizer",
    "SanitizerConfig",
    "sanitize_from_env",
]

#: Environment variable that opts whole processes (e.g. a pytest run) into
#: sanitized execution; engines built with ``sanitize=None`` consult it.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Spawn key of the sanitizer's private sampling stream — domain-separated
#: from the protocol streams, the topology generators (keys 1 and 2), and
#: the fault sampler (key 3), so sampled differential rows never perturb
#: the run under check.
_SANITIZER_STREAM_KEY = 4


def sanitize_from_env(environ: dict[str, str] | None = None) -> bool:
    """Whether ``REPRO_SANITIZE`` opts this process into sanitized runs.

    ``1``/``true``/``yes``/``on`` (case-insensitive) enable; unset, empty,
    ``0``/``false``/``no``/``off`` disable.  The single authoritative
    parser — the engines, the bench-record stamp, and the perf gate all
    call this, so "was the sanitizer on?" has one answer everywhere.
    """
    env = os.environ if environ is None else environ
    value = env.get(SANITIZE_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class CheckInfo:
    """One registered sanitizer check: its id and what it asserts."""

    id: str
    description: str


#: The registered check suite; ids are what :class:`SanitizerError.check`
#: carries and what the README's check table documents.
CHECKS: tuple[CheckInfo, ...] = (
    CheckInfo("kernel.mask-shape", "plan masks are boolean vectors of shape (n,)"),
    CheckInfo("kernel.disjoint", "transmit and listen are disjoint (half-duplex)"),
    CheckInfo("kernel.operand-n", "the round's kernel operand matches the network size"),
    CheckInfo("conserve.crash-energy", "crashed nodes neither transmit nor listen"),
    CheckInfo("conserve.traffic", "engine traffic counters equal an independent shadow recount"),
    CheckInfo("conserve.loss-bound", "dropped receptions never exceed the receptions offered"),
    CheckInfo("conserve.energy", "frozen results uphold the totals/energy conservation laws"),
    CheckInfo("cache.readonly", "cached topology arrays are frozen (writeable=False)"),
    CheckInfo("diff.counts", "active-backend neighbour counts match the dense reference"),
    CheckInfo("diff.feedback", "active clean/collided/silent masks match the dense reference"),
    CheckInfo("diff.senders", "active sender ids match the dense reference at clean listeners"),
)


@dataclass(frozen=True)
class SanitizerConfig:
    """Tuning knobs of one sanitized run (the defaults suit tests and CI)."""

    #: run the cross-backend differential check (the expensive family).
    differential: bool = True
    #: up to this many nodes the differential check recomputes the *full*
    #: round on a dense reference operand; above it, sampled rows only.
    full_diff_max_n: int = 2048
    #: listener rows re-derived per round in sampled differential mode.
    diff_sample_rows: int = 64
    #: verify cached topology arrays are frozen at attach time.
    check_caches: bool = True


#: Traffic-accumulator row indices, structurally fixed by the engine's
#: ``(4, n)`` counter layout (transmissions, clean receptions, collisions
#: heard, awake slots).  Redeclared here rather than imported because the
#: engine module imports this one.
_TX, _RX, _COLL, _AWAKE = range(4)
_TRAFFIC_ROWS = ("transmissions", "receptions", "collisions_heard", "awake_slots")


class Sanitizer:
    """Per-engine runtime invariant checker (see module docstring).

    One instance is owned by exactly one engine; the batch engine gives
    each of its per-item engines its own sanitizer, so fused groups are
    checked instance-by-instance on the de-batched rows each instance
    actually consumed.
    """

    def __init__(
        self,
        config: SanitizerConfig,
        *,
        network: "RadioNetwork",
        operand: "KernelOperand",
        seed: int,
    ) -> None:
        self.config = config
        self._n = network.n
        self._seed = seed
        self._backend: str = operand.backend
        self._topology = network.name
        self._shadow = np.zeros((4, network.n), dtype=np.int64)
        self._last_dropped = 0
        self._offered = 0
        self._diff: DifferentialChecker | None = None
        self._diff_version = 0
        if config.check_caches:
            # The dense adjacency is only materialized (and therefore only
            # checked) when this run's backend already built it — freezing
            # checks must not force an n² allocation onto a sparse run.
            problem = cache_discipline_violation(
                network, check_dense=self._backend == "dense"
            )
            if problem is not None:
                self._fail("cache.readonly", problem, round_index=-1)
        if operand.n != network.n:
            self._fail(
                "kernel.operand-n",
                f"kernel operand is sized {operand.n}, network has {network.n} nodes",
                round_index=-1,
            )
        if config.differential:
            indptr, indices = network.csr()
            self._diff = DifferentialChecker(
                indptr,
                indices,
                full_max_n=config.full_diff_max_n,
                sample_rows=config.diff_sample_rows,
                rng=stream(seed, _SANITIZER_STREAM_KEY),
            )

    def _fail(
        self,
        check: str,
        message: str,
        *,
        round_index: int,
        details: dict | None = None,
    ) -> None:
        raise SanitizerError(
            message,
            check=check,
            round_index=round_index,
            seed=self._seed,
            backend=self._backend,
            topology=self._topology,
            details=details,
        )

    # ------------------------------------------------------------------ #
    # Engine hooks, in round order
    # ------------------------------------------------------------------ #
    def on_begin_round(
        self,
        round_index: int,
        plan: "RoundPlan",
        crashed: np.ndarray | None,
    ) -> None:
        """Kernel-boundary contracts of the finalized plan, pre-resolution."""
        finding = mask_contract_violation(self._n, plan.transmit, plan.listen)
        if finding is not None:
            check, message = finding
            self._fail(check, message, round_index=round_index)
        if crashed is not None:
            problem = crashed_plan_violation(plan.transmit, plan.listen, crashed)
            if problem is not None:
                self._fail(
                    "conserve.crash-energy", problem, round_index=round_index
                )

    def on_channel(
        self,
        round_index: int,
        plan: "RoundPlan",
        channel: "ChannelRound",
        operand: "KernelOperand",
        fault_state: "FaultState | None",
    ) -> None:
        """Checks on the raw kernel output, before fault perception."""
        if operand.n != self._n:
            self._fail(
                "kernel.operand-n",
                f"round operand is sized {operand.n}, network has {self._n} nodes",
                round_index=round_index,
            )
        self._offered = int(np.count_nonzero(channel.clean))
        diff = self._diff
        if diff is None:
            return
        if fault_state is not None:
            version = fault_state.adjacency_version
            if version != self._diff_version:
                diff.refresh(*fault_state.current_csr())
                self._diff_version = version
        finding = diff.check(plan.transmit, plan.listen, channel)
        if finding is not None:
            check, message, details = finding
            self._fail(check, message, round_index=round_index, details=details)

    def on_round_complete(
        self,
        round_index: int,
        plan: "RoundPlan",
        channel: "ChannelRound",
        traffic: np.ndarray,
        fault_counters: np.ndarray | None,
    ) -> None:
        """Conservation checks after the engine updated its counters.

        ``channel`` is the *perceived* round (fault rewrites applied) —
        the same masks the engine just accumulated — and ``traffic`` the
        engine's live ``(4, n)`` counter array; the shadow copy here is
        accumulated from the masks independently, so any skew between the
        two (a corrupted counter, a miscounted mask) surfaces with the
        exact round it first appeared.
        """
        shadow = self._shadow
        shadow[_TX] += plan.transmit
        shadow[_RX] += channel.clean
        shadow[_COLL] += channel.collided
        shadow[_AWAKE] += plan.transmit | plan.listen
        if not np.array_equal(shadow, traffic):
            row, node = np.argwhere(shadow != traffic)[0]
            self._fail(
                "conserve.traffic",
                f"{_TRAFFIC_ROWS[int(row)]} counter of node {int(node)} is "
                f"{int(traffic[row, node])}, shadow recount says "
                f"{int(shadow[row, node])}",
                round_index=round_index,
                details={
                    "row": _TRAFFIC_ROWS[int(row)],
                    "node": int(node),
                    "engine": int(traffic[row, node]),
                    "shadow": int(shadow[row, node]),
                },
            )
        if fault_counters is not None:
            dropped = int(fault_counters[0])  # FaultState counter row _DROPPED
            delta = dropped - self._last_dropped
            if delta > self._offered or delta < 0:
                self._fail(
                    "conserve.loss-bound",
                    f"loss dropped {delta} receptions in a round that offered "
                    f"{self._offered}",
                    round_index=round_index,
                    details={"dropped": delta, "offered": self._offered},
                )
            self._last_dropped = dropped

    def on_result(self, round_index: int, result: SimResult) -> None:
        """Conservation laws of a frozen result window."""
        problem = conservation_violation(result)
        if problem is not None:
            self._fail("conserve.energy", problem, round_index=round_index)
