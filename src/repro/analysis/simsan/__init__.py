"""simsan: the opt-in runtime invariant sanitizer for simulator runs.

The dynamic counterpart of :mod:`repro.analysis` lint rules — where
simlint proves invariants about the *source*, simsan checks them on a
*live run*, every round: kernel-boundary contracts, traffic/energy
conservation, fault accounting, cache freezing, and a differential
re-execution of the channel kernel against a dense reference operand
(the certification gate for any new backend).

Enablement (all three routes build the same :class:`Sanitizer`):

* ``sanitize=True`` on ``Engine``/``ArrayEngine``/``BatchEngine`` and
  the ``run_broadcast*`` runners;
* ``--sanitize`` on the demo CLI;
* ``REPRO_SANITIZE=1`` in the environment (e.g. for a whole pytest run)
  — consulted whenever ``sanitize`` is left as ``None``.

Violations raise :class:`~repro.errors.SanitizerError`; differential
(``diff.*``) findings can then be localized to their first divergent
round with ``python -m repro.analysis.simsan.bisect``.  Run
``python -m repro.analysis.simsan`` for the registered check table.

This package deliberately never imports the engine modules at import
time (the engines import *it*); only :mod:`repro.analysis.simsan.bisect`
— imported on demand — builds engines.
"""

from repro.analysis.simsan.checks import (
    cache_discipline_violation,
    crashed_plan_violation,
    mask_contract_violation,
)
from repro.analysis.simsan.core import (
    CHECKS,
    CheckInfo,
    Sanitizer,
    SanitizerConfig,
    sanitize_from_env,
)
from repro.analysis.simsan.differential import DifferentialChecker

__all__ = [
    "CHECKS",
    "CheckInfo",
    "DifferentialChecker",
    "Sanitizer",
    "SanitizerConfig",
    "cache_discipline_violation",
    "crashed_plan_violation",
    "mask_contract_violation",
    "sanitize_from_env",
]
