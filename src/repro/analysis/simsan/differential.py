"""Cross-backend differential checking against a dense reference.

The simulator's three channel backends (dense matmul, sparse CSR
segment-sum, bit-packed popcount) are bitwise identical by contract; this
module is the runtime enforcement of that contract, and the certification
hook any future backend (the ROADMAP's GPU operand) must pass.  Every
sanitized round is recomputed on a **reference**
:class:`~repro.sim.core.channel.DenseOperand` built from the ground-truth
CSR adjacency — independently of whatever operand the engine is running —
and compared bitwise against the active backend's output:

* **full mode** (n ≤ ``full_max_n``): the whole round is re-resolved
  through :func:`~repro.sim.core.channel.resolve_channel` and every
  output array compared;
* **sampled mode** (larger n, where a dense reference matmul would
  dominate the run): a per-round sample of listener rows has its counts,
  feedback outcome, and sender id re-derived directly from the CSR
  neighbour lists.  Sampling coins come from the sanitizer's private
  stream, never the engine's.

Findings are returned as ``(check_id, message, details)`` tuples; the
harness turns them into :class:`~repro.errors.SanitizerError` with run
context attached.
"""

from __future__ import annotations

import numpy as np

from repro.sim.core.channel import (
    ChannelRound,
    DenseOperand,
    operand_from_csr,
    resolve_channel,
)

__all__ = ["DifferentialChecker"]

#: A differential finding: (check id, message, JSON-able details).
Finding = tuple[str, str, dict]


class DifferentialChecker:
    """Recompute each round's channel feedback on a dense reference.

    ``refresh`` rebuilds the reference when the adjacency changes (edge
    flips); the harness keys those calls on
    :attr:`~repro.sim.faults.FaultState.adjacency_version`.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        full_max_n: int,
        sample_rows: int,
        rng: np.random.Generator,
    ) -> None:
        self._full_max_n = full_max_n
        self._sample_rows = sample_rows
        self._rng = rng
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._n = self._indptr.size - 1
        self._dense: DenseOperand | None = None
        self._build_reference()

    @property
    def full(self) -> bool:
        """Whether this checker runs in full (whole-round) mode."""
        return self._dense is not None

    def _build_reference(self) -> None:
        if self._n <= self._full_max_n:
            operand = operand_from_csr("dense", self._indptr, self._indices)
            assert isinstance(operand, DenseOperand)
            self._dense = operand
        else:
            self._dense = None

    def refresh(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        """Rebuild the reference for a new (edge-flipped) adjacency."""
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._build_reference()

    def check(
        self,
        transmit: np.ndarray,
        listen: np.ndarray,
        channel: ChannelRound,
    ) -> Finding | None:
        """Compare one raw kernel round against the reference; None if equal."""
        if self._dense is not None:
            return self._check_full(transmit, listen, channel)
        return self._check_sampled(transmit, listen, channel)

    # ------------------------------------------------------------------ #
    # Full mode
    # ------------------------------------------------------------------ #
    def _check_full(
        self,
        transmit: np.ndarray,
        listen: np.ndarray,
        channel: ChannelRound,
    ) -> Finding | None:
        assert self._dense is not None
        reference = resolve_channel(self._dense, transmit, listen)
        if not np.array_equal(reference.counts, channel.counts):
            node = int(np.argwhere(reference.counts != channel.counts)[0][0])
            return (
                "diff.counts",
                f"node {node} count is {int(channel.counts[node])}, dense "
                f"reference says {int(reference.counts[node])}",
                {
                    "node": node,
                    "active": int(channel.counts[node]),
                    "reference": int(reference.counts[node]),
                },
            )
        for label, active, ref in (
            ("clean", channel.clean, reference.clean),
            ("collided", channel.collided, reference.collided),
            ("silent", channel.silent, reference.silent),
        ):
            if not np.array_equal(ref, active):
                node = int(np.argwhere(ref != active)[0][0])
                return (
                    "diff.feedback",
                    f"{label} mask disagrees with the dense reference at "
                    f"node {node}",
                    {"mask": label, "node": node},
                )
        mismatch = reference.clean & (reference.senders != channel.senders)
        if mismatch.any():
            node = int(np.flatnonzero(mismatch)[0])
            return (
                "diff.senders",
                f"clean listener {node} reports sender "
                f"{int(channel.senders[node])}, dense reference says "
                f"{int(reference.senders[node])}",
                {
                    "node": node,
                    "active": int(channel.senders[node]),
                    "reference": int(reference.senders[node]),
                },
            )
        return None

    # ------------------------------------------------------------------ #
    # Sampled mode
    # ------------------------------------------------------------------ #
    def _check_sampled(
        self,
        transmit: np.ndarray,
        listen: np.ndarray,
        channel: ChannelRound,
    ) -> Finding | None:
        k = min(self._sample_rows, self._n)
        nodes = self._rng.choice(self._n, size=k, replace=False)
        indptr, indices = self._indptr, self._indices
        for raw in nodes.tolist():
            node = int(raw)
            neighbours = indices[indptr[node] : indptr[node + 1]]
            count = int(np.count_nonzero(transmit[neighbours]))
            if count != int(channel.counts[node]):
                return (
                    "diff.counts",
                    f"sampled node {node} count is {int(channel.counts[node])}, "
                    f"CSR reference says {count}",
                    {
                        "node": node,
                        "active": int(channel.counts[node]),
                        "reference": count,
                    },
                )
            listening = bool(listen[node])
            expected = (
                listening and count == 1,
                listening and count >= 2,
                listening and count == 0,
            )
            actual = (
                bool(channel.clean[node]),
                bool(channel.collided[node]),
                bool(channel.silent[node]),
            )
            if expected != actual:
                label = ("clean", "collided", "silent")[
                    next(i for i in range(3) if expected[i] != actual[i])
                ]
                return (
                    "diff.feedback",
                    f"{label} mask disagrees with the CSR reference at "
                    f"sampled node {node}",
                    {"mask": label, "node": node},
                )
            if expected[0]:
                sender = int(neighbours[np.flatnonzero(transmit[neighbours])[0]])
                if sender != int(channel.senders[node]):
                    return (
                        "diff.senders",
                        f"sampled clean listener {node} reports sender "
                        f"{int(channel.senders[node])}, CSR reference says "
                        f"{sender}",
                        {
                            "node": node,
                            "active": int(channel.senders[node]),
                            "reference": sender,
                        },
                    )
        return None
