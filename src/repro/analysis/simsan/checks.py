"""Individual sanitizer checks: pure functions over the arrays in flight.

Each check returns ``None`` when the invariant holds, or a human-readable
description of the violation (plus the check id where one function covers
several); raising the structured :class:`~repro.errors.SanitizerError` is
the harness's job (:mod:`repro.analysis.simsan.core`), which owns the
run context (seed, topology, backend, round).  Keeping the predicates
free of that context makes them directly unit-testable on hand-built
arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.topology import RadioNetwork

__all__ = [
    "cache_discipline_violation",
    "crashed_plan_violation",
    "mask_contract_violation",
]


def mask_contract_violation(
    n: int, transmit: np.ndarray, listen: np.ndarray
) -> tuple[str, str] | None:
    """Kernel-boundary contract of one plan: ``(check_id, message)`` or ``None``.

    Covers ``kernel.mask-shape`` (boolean dtype, exact ``(n,)`` shape —
    the per-engine hooks always see de-batched masks) and
    ``kernel.disjoint`` (the half-duplex precondition).  The kernel
    enforces disjointness itself, but by then the engine is mid-round;
    the sanitizer checks at plan time so the violation is attributed to
    the round that *produced* the masks.
    """
    for label, mask in (("transmit", transmit), ("listen", listen)):
        if mask.dtype != np.bool_:
            return (
                "kernel.mask-shape",
                f"{label} mask must be boolean, got dtype {mask.dtype}",
            )
        if mask.shape != (n,):
            return (
                "kernel.mask-shape",
                f"{label} mask must have shape ({n},), got {mask.shape}",
            )
    overlap = transmit & listen
    if overlap.any():
        node = int(np.flatnonzero(overlap)[0])
        return (
            "kernel.disjoint",
            f"node {node} both transmits and listens (radios are half-duplex)",
        )
    return None


def crashed_plan_violation(
    transmit: np.ndarray, listen: np.ndarray, crashed: np.ndarray
) -> str | None:
    """Crashed radios are off: no transmit, no listen, hence no awake slot.

    The engine applies the crash mask to the plan before the kernel, and
    the awake counter sums exactly these masks — so a crashed node that
    still appears here would both act and accrue energy inside its
    :class:`~repro.sim.faults.NodeCrash` window.
    """
    awake_while_crashed = crashed & (transmit | listen)
    if awake_while_crashed.any():
        node = int(np.flatnonzero(awake_while_crashed)[0])
        action = "transmits" if transmit[node] else "listens"
        return f"crashed node {node} still {action} inside its down window"
    return None


def cache_discipline_violation(
    network: "RadioNetwork", *, check_dense: bool
) -> str | None:
    """Dynamic twin of simlint SL004: cached topology arrays must be frozen.

    The CSR neighbour arrays (and, when ``check_dense``, the dense
    adjacency matrix) are cached on the network and shared by every
    engine, operand, and fault state built from it — a writeable cache is
    one silent in-place edit away from divergent physics between runs.
    ``check_dense`` is the caller's promise that the dense matrix is
    already materialized, so this check never forces the Θ(n²) build.
    """
    indptr, indices = network.csr()
    for label, arr in (("csr indptr", indptr), ("csr indices", indices)):
        if arr.flags.writeable:
            return f"cached {label} array is writeable (expected writeable=False)"
    if check_dense and network.adjacency_matrix().flags.writeable:
        return "cached adjacency matrix is writeable (expected writeable=False)"
    return None
