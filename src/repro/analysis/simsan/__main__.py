"""``python -m repro.analysis.simsan`` — list the registered check suite.

Prints one line per registered check (id and what it asserts) plus the
process's current enablement state, so "what would a sanitized run
check, and is this shell opted in?" is answerable without reading
source.  The bisector is its own entry point:
``python -m repro.analysis.simsan.bisect --help``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.simsan.core import CHECKS, SANITIZE_ENV_VAR, sanitize_from_env


def main(argv: Sequence[str] | None = None) -> int:
    del argv  # no options; kept for symmetry with the other CLIs
    width = max(len(check.id) for check in CHECKS)
    print("simsan runtime sanitizer — registered checks:")
    for check in CHECKS:
        print(f"  {check.id:<{width}}  {check.description}")
    state = "enabled" if sanitize_from_env() else "disabled"
    print(
        f"\n{SANITIZE_ENV_VAR} is {state} in this environment; engines built "
        f"with sanitize=None follow it."
    )
    print("bisector: python -m repro.analysis.simsan.bisect --help")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
