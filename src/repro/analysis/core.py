"""The simlint rule engine: AST visiting, suppressions, caching, reporting.

The engine is deliberately small and dependency-free (``ast`` +
``tokenize`` from the stdlib): it parses each analyzed file once, walks
the tree a single time dispatching nodes to every applicable rule, and
collects :class:`Finding` records plus JSON-serializable per-file *facts*
(cross-file rules such as SL005 run from the aggregated facts after every
file has been visited).

Three engine services every rule gets for free:

* **Suppressions** — a ``# simlint: disable=SL001`` comment suppresses
  findings of that rule on the same physical line, and
  ``# simlint: disable-file=SL001`` (anywhere in the file) suppresses the
  rule for the whole file.  ``all`` is accepted in place of a rule id.
* **Per-file caching** — results are keyed on a SHA-256 of the file
  content, the ruleset version, and a fingerprint of the rule sources
  (:func:`rules_fingerprint`), so re-runs only re-analyze files that
  changed — and editing a rule invalidates everything it may now judge
  differently.  Facts and suppressions are cached alongside findings,
  which keeps cross-file rules correct on warm runs.
* **Reporting** — deterministic ordering, human and JSON output, and
  the exit-code contract (0 clean, 1 findings, 2 usage error) live in
  :mod:`repro.analysis.simlint`.
"""

from __future__ import annotations

import ast
import contextlib
import functools
import hashlib
import io
import json
import os
import re
import tokenize
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any

from repro.errors import AnalysisError

__all__ = [
    "CACHE_VERSION",
    "FileContext",
    "FileResult",
    "Finding",
    "LintReport",
    "Rule",
    "RuleEngine",
    "ast_dfs",
    "attribute_chain",
    "parse_error_finding",
    "path_has_segments",
    "rules_fingerprint",
]

#: Bump whenever a rule's behaviour changes, so stale caches self-invalidate.
CACHE_VERSION = "simlint-1"

#: Directory names never descended into while expanding a directory
#: argument.  ``fixtures`` keeps the deliberately-violating test corpus
#: out of real-tree runs; explicitly-listed root paths are exempt, so
#: ``simlint tests/fixtures/...`` still analyzes the corpus on purpose.
EXCLUDED_DIR_NAMES = frozenset({"__pycache__", ".git", "fixtures", ".venv", "node_modules"})

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    """The pseudo-finding emitted when an analyzed file fails to parse."""
    return Finding(
        rule="SL000",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )


def path_has_segments(path: str, segments: Sequence[str]) -> bool:
    """Whether ``segments`` occur contiguously in ``path``'s directory parts.

    Rules scope themselves by path shape (``("sim",)`` for the simulator
    tree, ``("sim", "core")`` for the kernel/engine core) so the same
    rule fires on the real tree and on fixture corpora that reproduce the
    layout under ``tests/fixtures/``.
    """
    parts = PurePosixPath(path.replace(os.sep, "/")).parts
    want = tuple(segments)
    span = len(want)
    return any(parts[i : i + span] == want for i in range(len(parts) - span + 1))


def attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name-rooted chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def ast_dfs(node: ast.AST, *, skip_nested_defs: bool = False) -> Iterator[ast.AST]:
    """Pre-order, field-order DFS (``ast.walk`` is BFS and loses statement order).

    With ``skip_nested_defs`` the traversal yields nested function and
    class definitions but does not descend into them — scope-local rules
    use this so each definition is analyzed exactly once, by its own
    visit.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if (
            skip_nested_defs
            and current is not node
            and isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ):
            continue
        children = list(ast.iter_child_nodes(current))
        children.reverse()
        stack.extend(children)


class ImportMap:
    """Local-name → imported-origin resolution for one module.

    ``modules`` maps aliases to dotted module names (``np`` → ``numpy``);
    ``symbols`` maps from-imported names to ``(module, attr)`` pairs
    (``default_rng`` → ``("numpy.random", "default_rng")``).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.modules: dict[str, str] = {}
        self.symbols: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.symbols[alias.asname or alias.name] = (node.module, alias.name)

    def canonical(self, chain: Sequence[str]) -> list[str] | None:
        """Rewrite a name chain to its fully-qualified origin, if imported.

        ``["np", "random", "seed"]`` → ``["numpy", "random", "seed"]``;
        ``["default_rng"]`` → ``["numpy", "random", "default_rng"]``.
        Returns ``None`` when the head is not an import binding.
        """
        head = chain[0]
        if head in self.modules:
            return self.modules[head].split(".") + list(chain[1:])
        if head in self.symbols:
            module, attr = self.symbols[head]
            return module.split(".") + [attr] + list(chain[1:])
        return None


class FileContext:
    """Everything a rule sees while one file is being analyzed."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.basename = PurePosixPath(path.replace(os.sep, "/")).name
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.findings: list[Finding] = []
        #: JSON-serializable per-file facts, merged across rules; project
        #: rules consume the aggregation in :meth:`Rule.finalize`.
        self.facts: dict[str, Any] = {}

    def report(self, rule_id: str, node: ast.AST | int, message: str) -> None:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(rule_id, self.path, line, col, message))


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`id`, :attr:`title` and :attr:`doc`, scope
    themselves via :meth:`applies_to`, and implement any combination of
    ``visit_<NodeType>(node, ctx)`` methods plus the per-file and
    project-level hooks.  One rule instance is shared across all files of
    a run, so per-file state must be reset in :meth:`begin_file`.
    """

    id: str = ""
    title: str = ""
    #: long-form documentation shown by ``--explain`` (what the rule
    #: catches, why it matters for determinism, how to fix or suppress).
    doc: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Reset per-file state; called before the tree walk."""

    def end_file(self, ctx: FileContext) -> None:
        """Flush file-level findings/facts; called after the tree walk."""

    def finalize(self, facts: dict[str, dict[str, Any]]) -> list[Finding]:
        """Project-level pass over ``{path: facts}`` for cross-file rules."""
        return []


@dataclass
class FileResult:
    """Cached analysis of one file: raw findings, facts, suppressions."""

    path: str
    content_hash: str
    findings: list[Finding] = field(default_factory=list)
    facts: dict[str, Any] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    from_cache: bool = False

    def as_cache_entry(self) -> dict[str, Any]:
        return {
            "hash": self.content_hash,
            "findings": [f.as_dict() for f in self.findings],
            "facts": self.facts,
            "file_disables": sorted(self.file_disables),
            "line_disables": {
                str(line): sorted(rules) for line, rules in self.line_disables.items()
            },
        }

    @classmethod
    def from_cache_entry(cls, path: str, entry: dict[str, Any]) -> "FileResult":
        return cls(
            path=path,
            content_hash=entry["hash"],
            findings=[
                Finding(
                    rule=f["rule"],
                    path=f["path"],
                    line=f["line"],
                    col=f["col"],
                    message=f["message"],
                )
                for f in entry["findings"]
            ],
            facts=entry.get("facts", {}),
            file_disables=set(entry.get("file_disables", [])),
            line_disables={
                int(line): set(rules)
                for line, rules in entry.get("line_disables", {}).items()
            },
            from_cache=True,
        )

    def suppresses(self, finding: Finding) -> bool:
        disabled = self.file_disables | self.line_disables.get(finding.line, set())
        return "all" in disabled or finding.rule in disabled


def _parse_suppressions(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """Extract ``# simlint: disable[-file]=...`` comments via tokenize."""
    file_disables: set[str] = set()
    line_disables: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return file_disables, line_disables
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(2).split(",") if part.strip()}
        if match.group(1) == "disable-file":
            file_disables |= rules
        else:
            line_disables.setdefault(line, set()).update(rules)
    return file_disables, line_disables


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: list[Finding]
    files_checked: int
    files_from_cache: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "files_checked": self.files_checked,
            "files_from_cache": self.files_from_cache,
            "clean": self.clean,
        }


class RuleEngine:
    """Run a set of rules over a set of paths, with optional caching."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        ids = [rule.id for rule in rules]
        if len(set(ids)) != len(ids):
            raise AnalysisError(f"duplicate rule ids in {ids}")
        self.rules = tuple(rules)
        # Per-rule dispatch tables: node-type name -> bound visitor.
        self._dispatch: dict[str, list[tuple[Rule, Callable[[ast.AST, FileContext], None]]]] = {}
        for rule in self.rules:
            for name in dir(rule):
                if name.startswith("visit_"):
                    self._dispatch.setdefault(name[len("visit_") :], []).append(
                        (rule, getattr(rule, name))
                    )

    # ------------------------------------------------------------------ #
    # File discovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def expand_paths(paths: Iterable[str | Path]) -> list[str]:
        """Python files under the given paths, deterministic order.

        Directory roots are walked recursively; subdirectories named in
        :data:`EXCLUDED_DIR_NAMES` are skipped (the roots themselves are
        never excluded, so a fixture corpus can be analyzed by naming it
        explicitly).  Missing paths raise :class:`AnalysisError`.
        """
        files: list[str] = []
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                files.append(str(path))
            elif path.is_dir():
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if d not in EXCLUDED_DIR_NAMES
                    )
                    for name in sorted(filenames):
                        if name.endswith(".py"):
                            files.append(os.path.join(dirpath, name))
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        seen: set[str] = set()
        unique = []
        for f in files:
            if f not in seen:
                seen.add(f)
                unique.append(f)
        return unique

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def analyze_source(self, path: str, source: str) -> FileResult:
        """Analyze one in-memory file (no cache involvement)."""
        content_hash = _hash_content(source)
        file_disables, line_disables = _parse_suppressions(source)
        result = FileResult(
            path=path,
            content_hash=content_hash,
            file_disables=file_disables,
            line_disables=line_disables,
        )
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.findings.append(parse_error_finding(path, exc))
            return result
        ctx = FileContext(path, source, tree)
        active = [rule for rule in self.rules if rule.applies_to(path)]
        active_set = set(map(id, active))
        for rule in active:
            rule.begin_file(ctx)
        for node in ast_dfs(tree):
            for rule, visitor in self._dispatch.get(type(node).__name__, ()):
                if id(rule) in active_set:
                    visitor(node, ctx)
        for rule in active:
            rule.end_file(ctx)
        # Deduplicate (nested scans may revisit a node) and order findings.
        result.findings = sorted(set(ctx.findings), key=Finding.sort_key)
        result.facts = ctx.facts
        return result

    def run(
        self,
        paths: Sequence[str | Path],
        *,
        cache_path: str | Path | None = None,
    ) -> LintReport:
        """Analyze every Python file under ``paths`` and report findings.

        With ``cache_path``, per-file results are reused whenever the
        content hash matches, and the cache file is rewritten to cover
        exactly this run's files.
        """
        files = self.expand_paths(paths)
        cache = _load_cache(cache_path) if cache_path is not None else {}
        results: list[FileResult] = []
        from_cache = 0
        for path in files:
            try:
                source = Path(path).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise AnalysisError(f"cannot read {path}: {exc}") from exc
            content_hash = _hash_content(source)
            cached = cache.get(path)
            if cached is not None and cached.get("hash") == content_hash:
                results.append(FileResult.from_cache_entry(path, cached))
                from_cache += 1
            else:
                results.append(self.analyze_source(path, source))
        findings = [f for result in results for f in result.findings]
        facts = {result.path: result.facts for result in results if result.facts}
        for rule in self.rules:
            findings.extend(rule.finalize(facts))
        by_path = {result.path: result for result in results}
        kept = [
            f
            for f in findings
            if f.path not in by_path or not by_path[f.path].suppresses(f)
        ]
        if cache_path is not None:
            _store_cache(cache_path, results)
        return LintReport(
            findings=sorted(set(kept), key=Finding.sort_key),
            files_checked=len(files),
            files_from_cache=from_cache,
        )


@functools.lru_cache(maxsize=1)
def rules_fingerprint() -> str:
    """SHA-256 over the ``rules_*.py`` module sources shipped with simlint.

    Salted into every per-file cache key (and stored in the cache
    payload) so editing any rule implementation invalidates cached
    results even though the *analyzed* files are unchanged.  Without it,
    a rule fix silently kept serving stale verdicts from
    ``.simlint-cache.json`` until the cache file was deleted by hand.
    """
    digest = hashlib.sha256()
    for path in sorted(Path(__file__).resolve().parent.glob("rules_*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def _hash_content(source: str) -> str:
    digest = hashlib.sha256()
    digest.update(CACHE_VERSION.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(rules_fingerprint().encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def _load_cache(cache_path: str | Path) -> dict[str, dict[str, Any]]:
    try:
        payload = json.loads(Path(cache_path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
        return {}
    if payload.get("rules") != rules_fingerprint():
        return {}
    files = payload.get("files")
    return files if isinstance(files, dict) else {}


def _store_cache(cache_path: str | Path, results: Sequence[FileResult]) -> None:
    payload = {
        "version": CACHE_VERSION,
        "rules": rules_fingerprint(),
        "files": {result.path: result.as_cache_entry() for result in results},
    }
    # A read-only checkout must not break linting; caching is advisory.
    with contextlib.suppress(OSError):
        Path(cache_path).write_text(
            json.dumps(payload, indent=None, sort_keys=True), encoding="utf-8"
        )
