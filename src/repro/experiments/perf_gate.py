"""Longitudinal perf-regression gate over the committed bench records.

The committed ``BENCH_engine.json`` and ``BENCH_scale.json`` are each PR's
performance contract.  This gate re-measures a smoke-scale slice of both —
the engine sweep at the committed n with fewer seeds, one committed scale
size per backend — matches the fresh cells to the committed ones, and
**exits non-zero** when throughput or peak memory regressed beyond
tolerance::

    python -m repro.experiments.perf_gate --seeds 8 --scale-n 1024

``--kernel-record BENCH_kernel.json`` additionally gates the operand-level
kernel microbench at one committed size (``--kernel-n``): counts
throughput within the speed tolerance, and the operand's own footprint
exactly (``operand_mib`` is arithmetic, not a measurement, so any drift
is a real operand-layout change).

A cell regresses when ``fresh rounds/sec < committed × (1 − speed-tol)``
or ``fresh peak MiB > committed × (1 + mem-tol)``.  The default speed
tolerance is deliberately loose (0.6: fresh must keep 40% of committed
throughput) because CI machines and the committing machine differ; memory
is tight (0.25) because ``tracemalloc`` peaks are machine-independent.

The gate refuses to compare records whose ``schema_version`` differs from
the current :data:`~repro.experiments.record.SCHEMA_VERSION` — a schema
bump must regenerate the committed records in the same PR (exit 2, like
every other mis-configuration).  Exit codes: 0 all cells within tolerance,
1 at least one regression, 2 configuration/schema error.

``--fresh-engine``/``--fresh-scale`` inject pre-measured fresh records
instead of re-running (tests use this to prove the gate trips on a
synthetic regression); ``--out-dir`` saves whatever fresh records the gate
used, so CI can upload them as artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import AnalysisError
from repro.experiments.engine_bench import bench_engines
from repro.experiments.kernel_bench import bench_kernel
from repro.experiments.record import SCHEMA_VERSION, write_bench
from repro.experiments.scale_bench import bench_scale

__all__ = [
    "DEFAULT_MEM_TOLERANCE",
    "DEFAULT_SPEED_TOLERANCE",
    "gate_engine",
    "gate_kernel",
    "gate_scale",
    "load_record",
    "main",
]

#: Fresh throughput may drop to (1 - tol) of committed before the gate
#: trips; loose because the CI machine is not the committing machine.
DEFAULT_SPEED_TOLERANCE = 0.6

#: Fresh peak memory may grow to (1 + tol) of committed; tight because
#: ``tracemalloc`` byte counts barely vary across machines.
DEFAULT_MEM_TOLERANCE = 0.25


def load_record(path: str | Path) -> dict:
    """Load a bench record and insist it speaks the current schema."""
    path = Path(path)
    if not path.is_file():
        raise AnalysisError(f"bench record {path} does not exist")
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"bench record {path} is not valid JSON: {exc}") from exc
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        raise AnalysisError(
            f"bench record {path} has schema_version={version!r}, gate speaks "
            f"{SCHEMA_VERSION}; regenerate the record with the current bench CLI"
        )
    # Records produced under REPRO_SANITIZE measure the sanitizer's
    # per-round checking, not the engine — a committed baseline that slow
    # would quietly absorb real regressions.  Missing key = legacy record
    # = sanitizer did not exist, which is fine.
    if record.get("sanitized"):
        raise AnalysisError(
            f"bench record {path} was produced with the runtime sanitizer "
            "enabled; regenerate it with REPRO_SANITIZE unset"
        )
    return record


def _check_speed(
    label: str, committed: float | None, fresh: float | None, tolerance: float
) -> tuple[str, bool]:
    floor = committed * (1 - tolerance) if committed else None
    if committed is None or fresh is None or floor is None:
        return f"SKIP {label}: rounds/sec missing on one side", False
    if fresh < floor:
        return (
            f"REGRESSION {label}: {fresh} rounds/sec < floor {floor:.1f} "
            f"(committed {committed}, tolerance {tolerance})",
            True,
        )
    return (
        f"OK {label}: {fresh} rounds/sec (floor {floor:.1f}, committed {committed})",
        False,
    )


def _check_memory(
    label: str, committed: float | None, fresh: float | None, tolerance: float
) -> tuple[str, bool]:
    if committed is None or fresh is None:
        return f"SKIP {label}: peak MiB missing on one side", False
    ceiling = committed * (1 + tolerance)
    if fresh > ceiling:
        return (
            f"REGRESSION {label}: {fresh} peak MiB > ceiling {ceiling:.2f} "
            f"(committed {committed}, tolerance {tolerance})",
            True,
        )
    return (
        f"OK {label}: {fresh} peak MiB (ceiling {ceiling:.2f}, committed {committed})",
        False,
    )


def gate_engine(
    committed: dict, fresh: dict, speed_tolerance: float = DEFAULT_SPEED_TOLERANCE
) -> tuple[list[str], int]:
    """Compare engine-bench throughput cell by cell.

    Cells match on (protocol, topology, n); both the object and array
    paths are gated, so a regression in either execution core trips.
    Returns (report lines, violation count); raises
    :class:`AnalysisError` when no cells match at all — a vacuous gate
    must not pass silently.
    """
    fresh_by_key = {
        (e["protocol"], e["topology"], e["n"]): e for e in fresh.get("results", ())
    }
    lines: list[str] = []
    violations = 0
    matched = 0
    for entry in committed.get("results", ()):
        key = (entry["protocol"], entry["topology"], entry["n"])
        other = fresh_by_key.get(key)
        if other is None:
            lines.append(f"SKIP engine {'/'.join(map(str, key))}: no fresh cell")
            continue
        matched += 1
        for path_name in ("object", "array"):
            line, bad = _check_speed(
                f"engine {'/'.join(map(str, key))} {path_name}",
                entry.get(path_name, {}).get("rounds_per_sec"),
                other.get(path_name, {}).get("rounds_per_sec"),
                speed_tolerance,
            )
            lines.append(line)
            violations += bad
    if not matched:
        raise AnalysisError(
            "no engine cells matched between the committed and fresh records; "
            "the gate would be vacuous"
        )
    return lines, violations


def gate_scale(
    committed: dict,
    fresh: dict,
    speed_tolerance: float = DEFAULT_SPEED_TOLERANCE,
    mem_tolerance: float = DEFAULT_MEM_TOLERANCE,
) -> tuple[list[str], int]:
    """Compare scale-bench throughput and peak memory cell by cell.

    Cells match on (topology, n, backend); skipped cells (dense ceiling,
    time ceiling) are ignored on either side.  Memory only gates when the
    probe rounds agree — a different probe measures a different peak.
    """
    fresh_by_key = {
        (e["topology"], e["n"], e["backend"]): e
        for e in fresh.get("results", ())
        if "skipped" not in e
    }
    probes_agree = committed.get("probe_rounds") == fresh.get("probe_rounds")
    lines: list[str] = []
    violations = 0
    matched = 0
    for entry in committed.get("results", ()):
        if "skipped" in entry:
            continue
        key = (entry["topology"], entry["n"], entry["backend"])
        other = fresh_by_key.get(key)
        if other is None:
            continue
        matched += 1
        label = f"scale {entry['topology']}/n={entry['n']}/{entry['backend']}"
        line, bad = _check_speed(
            label, entry.get("rounds_per_sec"), other.get("rounds_per_sec"),
            speed_tolerance,
        )
        lines.append(line)
        violations += bad
        if probes_agree:
            line, bad = _check_memory(
                label, entry.get("peak_mib"), other.get("peak_mib"), mem_tolerance
            )
            lines.append(line)
            violations += bad
        else:
            lines.append(f"SKIP {label} memory: probe_rounds differ")
    if not matched:
        raise AnalysisError(
            "no scale cells matched between the committed and fresh records; "
            "the gate would be vacuous (is --scale-n a committed size?)"
        )
    return lines, violations


def gate_kernel(
    committed: dict,
    fresh: dict,
    speed_tolerance: float = DEFAULT_SPEED_TOLERANCE,
) -> tuple[list[str], int]:
    """Compare kernel-microbench cells: counts throughput and operand size.

    Cells match on (topology, n, backend).  ``operand_mib`` is compared
    exactly — it is computed from the operand's shape, not measured — so
    any change means the operand layout itself changed and the committed
    record must be regenerated deliberately.
    """
    fresh_by_key = {
        (e["topology"], e["n"], e["backend"]): e
        for e in fresh.get("results", ())
        if "skipped" not in e
    }
    lines: list[str] = []
    violations = 0
    matched = 0
    for entry in committed.get("results", ()):
        if "skipped" in entry:
            continue
        key = (entry["topology"], entry["n"], entry["backend"])
        other = fresh_by_key.get(key)
        if other is None:
            continue
        matched += 1
        label = f"kernel {entry['topology']}/n={entry['n']}/{entry['backend']}"
        line, bad = _check_speed(
            f"{label} counts",
            entry.get("counts_per_sec"),
            other.get("counts_per_sec"),
            speed_tolerance,
        )
        lines.append(line.replace("rounds/sec", "counts/sec"))
        violations += bad
        if entry.get("operand_mib") != other.get("operand_mib"):
            lines.append(
                f"REGRESSION {label}: operand_mib changed "
                f"{entry.get('operand_mib')} -> {other.get('operand_mib')} "
                "(operand layout drifted; regenerate BENCH_kernel.json "
                "deliberately if intended)"
            )
            violations += 1
        else:
            lines.append(f"OK {label}: operand_mib {entry.get('operand_mib')}")
    if not matched:
        raise AnalysisError(
            "no kernel cells matched between the committed and fresh records; "
            "the gate would be vacuous (is --kernel-n a committed size?)"
        )
    return lines, violations


def _fresh_engine(committed: dict, seeds: int) -> dict:
    protocols = committed.get("protocols")
    return bench_engines(
        n=committed["n"],
        seeds=seeds,
        topology=committed.get("topology", "grid"),
        protocols=tuple(protocols) if protocols else None,
        preset=committed.get("preset", "fast"),
        backend=committed.get("channel_backend", "auto"),
    )


def _fresh_scale(committed: dict, scale_n: int) -> dict:
    sizes = committed.get("sizes", ())
    if scale_n not in sizes:
        raise AnalysisError(
            f"--scale-n {scale_n} is not a committed size {list(sizes)}; "
            "the gate needs a size both records measured"
        )
    return bench_scale(
        sizes=(scale_n,),
        topologies=tuple(committed.get("topologies", ())),
        protocol=committed.get("protocol", "ghk"),
        seeds=committed.get("seeds", 1),
        preset=committed.get("preset", "fast"),
        backends=tuple(committed.get("backends", ("dense", "sparse"))),
        max_dense_bytes=committed.get("max_dense_mib", 1024) << 20,
    )


def _fresh_kernel(committed: dict, kernel_n: int) -> dict:
    sizes = committed.get("sizes", ())
    if kernel_n not in sizes:
        raise AnalysisError(
            f"--kernel-n {kernel_n} is not a committed size {list(sizes)}; "
            "the gate needs a size both records measured"
        )
    return bench_kernel(
        sizes=(kernel_n,),
        topology=committed.get("topology", "gnp"),
        backends=tuple(committed.get("backends", ("dense", "sparse", "bitpacked"))),
        repeats=committed.get("repeats", 10),
        seed=committed.get("seed", 0),
        max_operand_bytes=committed.get("max_operand_mib", 1024) << 20,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.perf_gate",
        description="Re-measure a smoke slice and fail on perf regression "
        "vs the committed bench records.",
    )
    parser.add_argument(
        "--engine-record", default="BENCH_engine.json",
        help="committed engine bench record (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--scale-record", default="BENCH_scale.json",
        help="committed scale bench record (default: BENCH_scale.json)",
    )
    parser.add_argument(
        "--seeds", type=int, default=8,
        help="seeds for the fresh engine sweep (default: 8; committed "
        "records use more, but rounds/sec is seed-count-insensitive)",
    )
    parser.add_argument(
        "--scale-n", type=int, default=1024,
        help="the single committed scale size to re-measure (default: 1024)",
    )
    parser.add_argument(
        "--kernel-record", default=None, metavar="PATH",
        help="committed kernel microbench record to gate as well "
        "(e.g. BENCH_kernel.json; off unless given)",
    )
    parser.add_argument(
        "--kernel-n", type=int, default=4096,
        help="the single committed kernel size to re-measure (default: 4096)",
    )
    parser.add_argument(
        "--speed-tolerance", type=float, default=DEFAULT_SPEED_TOLERANCE,
        help=f"allowed fractional throughput drop (default: {DEFAULT_SPEED_TOLERANCE})",
    )
    parser.add_argument(
        "--mem-tolerance", type=float, default=DEFAULT_MEM_TOLERANCE,
        help=f"allowed fractional peak-memory growth (default: {DEFAULT_MEM_TOLERANCE})",
    )
    parser.add_argument(
        "--fresh-engine", default=None, metavar="PATH",
        help="use this pre-measured engine record instead of re-running",
    )
    parser.add_argument(
        "--fresh-scale", default=None, metavar="PATH",
        help="use this pre-measured scale record instead of re-running",
    )
    parser.add_argument(
        "--fresh-kernel", default=None, metavar="PATH",
        help="use this pre-measured kernel record instead of re-running",
    )
    parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write the fresh records here (CI uploads them as artifacts)",
    )
    args = parser.parse_args(argv)
    if not (0 <= args.speed_tolerance < 1) or args.mem_tolerance < 0:
        print(
            "gate error: --speed-tolerance must be in [0, 1) and "
            "--mem-tolerance non-negative",
            file=sys.stderr,
        )
        return 2

    try:
        committed_engine = load_record(args.engine_record)
        committed_scale = load_record(args.scale_record)
        if args.fresh_engine:
            fresh_engine = load_record(args.fresh_engine)
        else:
            print(f"re-measuring engine sweep (seeds={args.seeds}) ...")
            fresh_engine = _fresh_engine(committed_engine, args.seeds)
        if args.fresh_scale:
            fresh_scale = load_record(args.fresh_scale)
        else:
            print(f"re-measuring scale sweep (n={args.scale_n}) ...")
            fresh_scale = _fresh_scale(committed_scale, args.scale_n)
        fresh_kernel = None
        committed_kernel = None
        if args.kernel_record:
            committed_kernel = load_record(args.kernel_record)
            if args.fresh_kernel:
                fresh_kernel = load_record(args.fresh_kernel)
            else:
                print(f"re-measuring kernel microbench (n={args.kernel_n}) ...")
                fresh_kernel = _fresh_kernel(committed_kernel, args.kernel_n)
        if args.out_dir:
            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            fresh_records = [
                ("BENCH_engine.fresh.json", fresh_engine),
                ("BENCH_scale.fresh.json", fresh_scale),
            ]
            if fresh_kernel is not None:
                fresh_records.append(("BENCH_kernel.fresh.json", fresh_kernel))
            for name, record in fresh_records:
                print(f"wrote {write_bench(record, out_dir / name)}")
        engine_lines, engine_bad = gate_engine(
            committed_engine, fresh_engine, args.speed_tolerance
        )
        scale_lines, scale_bad = gate_scale(
            committed_scale, fresh_scale, args.speed_tolerance, args.mem_tolerance
        )
        kernel_lines: list[str] = []
        kernel_bad = 0
        if committed_kernel is not None:
            kernel_lines, kernel_bad = gate_kernel(
                committed_kernel, fresh_kernel, args.speed_tolerance
            )
    except AnalysisError as exc:
        print(f"gate error: {exc}", file=sys.stderr)
        return 2

    for line in engine_lines + scale_lines + kernel_lines:
        print(line)
    violations = engine_bad + scale_bad + kernel_bad
    if violations:
        print(f"PERF GATE FAIL: {violations} regression(s)", file=sys.stderr)
        return 1
    print("perf gate OK: every matched cell within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
