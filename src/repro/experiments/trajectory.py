"""Cross-PR trajectory report over the committed ``BENCH_*.json`` history.

Every PR that regenerates a bench record leaves a snapshot in git history.
This module walks that history — ``git log`` for the commits that touched
each record, ``git show`` for the record as of each commit — flattens every
snapshot to its headline metrics, and merges them into one longitudinal
report: how rounds/sec, peak memory, and speedups moved PR over PR::

    python -m repro.experiments.trajectory --out TRAJECTORY.json

The report is derived entirely from committed data; nothing is re-run.  The
companion :mod:`repro.experiments.perf_gate` is the enforcement half — it
re-measures a smoke-scale slice and fails on regression — while this module
is the observability half: the full history, human- and tool-readable.

Records that predate :data:`~repro.experiments.record.SCHEMA_VERSION`
(or cannot be parsed at some commit) are kept in the report as skipped
snapshots with a note, never silently dropped: the trajectory should show
where the schema changed, not pretend history starts there.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.errors import AnalysisError
from repro.experiments.record import PAPER_ID

__all__ = [
    "DEFAULT_RECORDS",
    "build_trajectory",
    "harvest_history",
    "record_metrics",
    "main",
]

#: The bench records every PR is expected to keep committed at the repo root.
DEFAULT_RECORDS: tuple[str, ...] = (
    "BENCH_broadcast.json",
    "BENCH_engine.json",
    "BENCH_faults.json",
    "BENCH_kernel.json",
    "BENCH_multimessage.json",
    "BENCH_scale.json",
)


def record_metrics(record: dict) -> dict[str, float]:
    """Flatten one bench record to its headline metrics.

    Keys are ``<cell>/<metric>`` strings that stay stable across PRs as
    long as the cell (protocol, topology, n, ...) is still measured, so
    the trajectory can line snapshots up by key.  Unknown bench kinds
    yield no metrics rather than raising: the trajectory must survive
    records written by older or newer schemas.
    """
    metrics: dict[str, float] = {}
    bench = record.get("bench")
    for entry in record.get("results", ()):  # tolerate headerless records
        if not isinstance(entry, dict) or "skipped" in entry:
            continue
        if bench == "engine":
            cell = f"{entry['protocol']}/{entry['topology']}/n={entry['n']}"
            for path_name in ("object", "array"):
                rps = entry.get(path_name, {}).get("rounds_per_sec")
                if rps is not None:
                    metrics[f"{cell}/{path_name}_rounds_per_sec"] = rps
            if entry.get("speedup_rounds_per_sec") is not None:
                metrics[f"{cell}/speedup"] = entry["speedup_rounds_per_sec"]
        elif bench == "scale":
            cell = f"{entry['topology']}/n={entry['n']}/{entry['backend']}"
            if entry.get("rounds_per_sec") is not None:
                metrics[f"{cell}/rounds_per_sec"] = entry["rounds_per_sec"]
            if entry.get("peak_mib") is not None:
                metrics[f"{cell}/peak_mib"] = entry["peak_mib"]
            if entry.get("speedup_vs_dense") is not None:
                metrics[f"{cell}/speedup_vs_dense"] = entry["speedup_vs_dense"]
        elif bench == "kernel":
            cell = f"{entry['topology']}/n={entry['n']}/{entry['backend']}"
            if entry.get("counts_per_sec") is not None:
                metrics[f"{cell}/counts_per_sec"] = entry["counts_per_sec"]
            if entry.get("operand_mib") is not None:
                metrics[f"{cell}/operand_mib"] = entry["operand_mib"]
            if entry.get("counts_speedup_vs_dense") is not None:
                metrics[f"{cell}/counts_speedup_vs_dense"] = entry[
                    "counts_speedup_vs_dense"
                ]
        elif bench == "broadcast":
            cell = f"{entry['topology']}/{entry['protocol']}/n={entry['n']}"
            if "rounds" in entry:
                metrics[f"{cell}/rounds_mean"] = entry["rounds"]["mean"]
            if entry.get("energy_mean") is not None:
                metrics[f"{cell}/energy_mean"] = entry["energy_mean"]
            if entry.get("speedup_vs_decay") is not None:
                metrics[f"{cell}/speedup_vs_decay"] = entry["speedup_vs_decay"]
            if entry.get("sweep_rounds_per_sec") is not None:
                metrics[f"{cell}/sweep_rounds_per_sec"] = entry["sweep_rounds_per_sec"]
        elif bench == "faults":
            cell = (
                f"{entry['protocol']}/{entry['family']}={entry['level']}"
                f"/n={entry['n']}"
            )
            if entry.get("delivery_rate") is not None:
                metrics[f"{cell}/delivery_rate"] = entry["delivery_rate"]
            if "rounds" in entry:
                metrics[f"{cell}/rounds_mean"] = entry["rounds"]["mean"]
            if entry.get("slowdown_vs_fault_free") is not None:
                metrics[f"{cell}/slowdown"] = entry["slowdown_vs_fault_free"]
        elif bench == "multimessage":
            cell = f"{entry['topology']}/k={entry['k_messages']}/n={entry['n']}"
            if "rounds" in entry:
                metrics[f"{cell}/rounds_mean"] = entry["rounds"]["mean"]
            if entry.get("pipelining_speedup") is not None:
                metrics[f"{cell}/pipelining_speedup"] = entry["pipelining_speedup"]
    return metrics


def _git(args: list[str], repo_root: Path) -> str:
    proc = subprocess.run(
        ["git", *args], cwd=repo_root, capture_output=True, text=True
    )
    if proc.returncode != 0:
        raise AnalysisError(
            f"git {' '.join(args)} failed: {proc.stderr.strip() or proc.returncode}"
        )
    return proc.stdout


def _snapshot(commit: str | None, raw: str) -> dict:
    """One trajectory entry: headline metrics, or a skip note on bad JSON."""
    entry: dict = {"commit": commit}
    try:
        record = json.loads(raw)
    except json.JSONDecodeError as exc:
        entry["skipped"] = f"unparsable JSON: {exc}"
        return entry
    entry["created_utc"] = record.get("created_utc")
    entry["schema_version"] = record.get("schema_version")
    entry["metrics"] = record_metrics(record)
    return entry


def harvest_history(record_path: str | Path, repo_root: str | Path = ".") -> list[dict]:
    """All snapshots of one bench record, oldest committed first.

    Each snapshot is ``{commit, created_utc, schema_version, metrics}``;
    the working-tree file is appended as a final ``commit: None`` snapshot
    when it differs from the newest committed version (so a PR in flight
    sees its own regenerated record in the report before committing).
    """
    repo_root = Path(repo_root)
    record_path = Path(record_path)
    try:
        rel = record_path.resolve().relative_to(repo_root.resolve())
    except ValueError as exc:
        raise AnalysisError(
            f"record {record_path} is outside the repo root {repo_root}"
        ) from exc
    shas = _git(
        ["log", "--format=%H", "--reverse", "--", str(rel)], repo_root
    ).split()
    snapshots = []
    last_raw: str | None = None
    for sha in shas:
        raw = _git(["show", f"{sha}:{rel.as_posix()}"], repo_root)
        snapshots.append(_snapshot(sha[:12], raw))
        last_raw = raw
    worktree = repo_root / rel
    if worktree.is_file():
        raw = worktree.read_text()
        if raw != last_raw:
            snapshots.append(_snapshot(None, raw))
    return snapshots


def build_trajectory(
    record_paths: tuple[str, ...] = DEFAULT_RECORDS, repo_root: str | Path = "."
) -> dict:
    """Merge every record's history into one longitudinal report dict."""
    if not record_paths:
        raise AnalysisError("need at least one record path")
    repo_root = Path(repo_root)
    records = {}
    for name in record_paths:
        history = harvest_history(repo_root / name, repo_root)
        if history:
            records[name] = history
    if not records:
        raise AnalysisError(
            f"no history found for any of {list(record_paths)} under {repo_root}"
        )
    return {"report": "trajectory", "paper": PAPER_ID, "records": records}


def _movers(history: list[dict], limit: int) -> list[str]:
    """The metrics that moved most between the first and last usable snapshot."""
    usable = [s for s in history if s.get("metrics")]
    if not usable:
        return []
    first, last = usable[0], usable[-1]
    lines = []
    for key, new in last["metrics"].items():
        old = first["metrics"].get(key)
        if old is None or old == new:
            continue
        change = (new - old) / old * 100 if old else float("inf")
        lines.append((abs(change), f"  {key}: {old} -> {new} ({change:+.1f}%)"))
    lines.sort(reverse=True)
    return [text for _, text in lines[:limit]]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.trajectory",
        description="Merge committed bench-record history into one report.",
    )
    parser.add_argument(
        "--records",
        nargs="+",
        default=list(DEFAULT_RECORDS),
        metavar="PATH",
        help=f"bench records to harvest (default: {' '.join(DEFAULT_RECORDS)})",
    )
    parser.add_argument(
        "--repo-root", default=".", help="git repository root (default: .)"
    )
    parser.add_argument("--out", default=None, help="write the report JSON here")
    parser.add_argument(
        "--movers",
        type=int,
        default=8,
        help="biggest first-to-last metric movers to print per record (default: 8)",
    )
    args = parser.parse_args(argv)
    try:
        report = build_trajectory(tuple(args.records), args.repo_root)
    except AnalysisError as exc:
        print(f"trajectory error: {exc}", file=sys.stderr)
        return 2
    for name, history in report["records"].items():
        commits = [s["commit"] or "worktree" for s in history]
        print(f"{name}: {len(history)} snapshot(s) [{commits[0]} .. {commits[-1]}]")
        for note in (s for s in history if "skipped" in s):
            print(f"  skipped {note['commit'] or 'worktree'}: {note['skipped']}")
        for line in _movers(history, args.movers):
            print(line)
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
