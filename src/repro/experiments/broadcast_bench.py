"""Decay-vs-GHK comparison sweep and the ``BENCH_broadcast.json`` record.

For every (topology family, protocol) pair the sweep runs a batch of
seeds — regenerating the random families per seed, so the statistics
cover graph sampling as well as protocol coins — and aggregates
rounds-to-delivery, transmissions, and failure counts.  The whole seed
batch executes in one shot on the array-native batch engine
(:func:`~repro.sim.runners.run_broadcast_batch`), which is what makes
n=256+ sweeps CI-feasible; ``--n`` accepts several sizes in one call::

    python -m repro.experiments.broadcast_bench --n 64 256 --seeds 30 \
        --out BENCH_broadcast.json

A :class:`~repro.errors.BroadcastFailure` during a run is *counted*, not
raised: a w.h.p. protocol under ``fast`` constants is allowed rare
failures, and the record keeps them visible instead of crashing the
sweep.
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro.errors import AnalysisError, BroadcastFailure, TopologyError
from repro.experiments.record import bench_record, write_bench
from repro.params import ProtocolParams
from repro.sim import runners
from repro.sim.runners import run_broadcast_batch
from repro.sim.topology import TOPOLOGY_NAMES, from_spec

__all__ = [
    "DEFAULT_PROTOCOLS",
    "DEFAULT_TOPOLOGIES",
    "MERGE_HEADER_KEYS",
    "resolve_params",
    "sweep_broadcast",
    "merge_records",
    "write_bench",
    "main",
]


def resolve_params(preset: str, backend: str = "auto") -> ProtocolParams:
    """Build a sweep's :class:`ProtocolParams` from a preset + channel backend.

    Shared by every experiments CLI so they all validate and thread the
    backend choice the same way; raises :class:`AnalysisError` on unknown
    names before any simulation runs.
    """
    if preset not in ("paper", "fast"):
        raise AnalysisError(f"unknown preset {preset!r}; choose paper or fast")
    if backend not in ("auto", "dense", "sparse", "bitpacked"):
        raise AnalysisError(
            f"unknown channel backend {backend!r}; choose auto, dense, sparse "
            "or bitpacked"
        )
    params = ProtocolParams.paper() if preset == "paper" else ProtocolParams.fast()
    return params.with_overrides(channel_backend=backend)

#: The full comparison suite from the ISSUE (star is omitted by default:
#: with a hub source it is a one-round broadcast for every protocol).
DEFAULT_TOPOLOGIES: tuple[str, ...] = (
    "line",
    "ring",
    "grid",
    "gnp",
    "dumbbell",
    "unit_disk",
)

#: The protocols this bench compares by default.  Explicit rather than "all
#: registered" so that registering a new protocol (e.g. the k-message
#: broadcast, which has its own bench) does not silently change what this
#: record measures; pass ``--protocols`` to widen it.
DEFAULT_PROTOCOLS: tuple[str, ...] = ("decay", "ghk")


def _summary(values: list[int]) -> dict:
    """Aggregate a non-empty list of per-run round counts."""
    return {
        "mean": round(statistics.mean(values), 2),
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
        "stdev": round(statistics.stdev(values), 2) if len(values) > 1 else 0.0,
    }


def sweep_broadcast(
    *,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    protocols: tuple[str, ...] | None = None,
    n: int = 64,
    seeds: int = 30,
    preset: str = "fast",
    backend: str = "auto",
) -> dict:
    """Run the comparison sweep and return the bench record as a dict.

    Raises :class:`AnalysisError` on malformed input (unknown topology or
    protocol name, non-positive batch sizes) before any simulation runs.
    """
    if n < 1:
        raise AnalysisError(f"need at least one node, got n={n}")
    if seeds < 1:
        raise AnalysisError(f"need at least one seed, got seeds={seeds}")
    params = resolve_params(preset, backend)
    if protocols is None:
        protocols = DEFAULT_PROTOCOLS
    unknown = [t for t in topologies if t not in TOPOLOGY_NAMES]
    if unknown:
        raise AnalysisError(f"unknown topologies {unknown}; choose from {TOPOLOGY_NAMES}")
    unknown = [p for p in protocols if p not in runners.BROADCAST_PROTOCOL_NAMES]
    if unknown:
        raise AnalysisError(
            f"unknown protocols {unknown}; choose from {runners.BROADCAST_PROTOCOL_NAMES}"
        )

    results = []
    for family in topologies:
        # One network per seed, shared by every protocol: both protocols
        # intentionally race on the same seed-derived graph, and building
        # (and BFS-ing) it once per seed instead of once per (seed,
        # protocol) halves the topology work.
        try:
            nets = [from_spec(family, n, seed=seed) for seed in range(seeds)]
        except TopologyError as exc:
            raise AnalysisError(f"cannot build {family} with n={n}: {exc}") from exc
        diameters = [net.eccentricity() for net in nets]
        per_protocol: dict[str, dict] = {}
        for protocol in protocols:
            rounds: list[int] = []
            transmissions: list[int] = []
            energies: list[int] = []
            collisions: list[int] = []
            budgets: list[int] = []
            failures = 0
            # The whole seed batch runs in one BatchEngine pass; results are
            # bitwise-identical to per-seed object runs on the same seeds.
            telemetry: dict = {}
            batch = run_broadcast_batch(
                protocol, nets, seeds=range(len(nets)), params=params,
                telemetry=telemetry,
            )
            for result in batch:
                if isinstance(result, BroadcastFailure):
                    failures += 1
                    continue
                rounds.append(result.rounds_to_delivery)
                transmissions.append(result.sim.total_transmissions)
                energies.append(result.sim.traffic.energy)
                collisions.append(result.sim.total_collisions)
                budgets.append(result.budget)
            entry = {
                "topology": family,
                "protocol": protocol,
                "n": n,
                "runs": seeds,
                "failures": failures,
                "source_eccentricity_mean": round(statistics.mean(diameters), 2),
                "sweep_seconds": telemetry["wall_seconds"],
                "sweep_rounds_per_sec": telemetry["rounds_per_sec"],
            }
            if rounds:
                entry["rounds"] = _summary(rounds)
                entry["rounds_all"] = rounds
                entry["transmissions_mean"] = round(statistics.mean(transmissions), 2)
                entry["energy_mean"] = round(statistics.mean(energies), 2)
                entry["collisions_mean"] = round(statistics.mean(collisions), 2)
                entry["budget_mean"] = round(statistics.mean(budgets), 2)
            results.append(entry)
            per_protocol[protocol] = entry
        if "decay" in per_protocol and "ghk" in per_protocol:
            d, g = per_protocol["decay"], per_protocol["ghk"]
            if "rounds" in d and "rounds" in g and g["rounds"]["mean"] > 0:
                # Mean-of-means speedup of GHK over the Decay baseline.
                g["speedup_vs_decay"] = round(
                    d["rounds"]["mean"] / g["rounds"]["mean"], 2
                )

    return bench_record(
        "broadcast",
        preset=preset,
        channel_backend=backend,
        n=n,
        seeds=seeds,
        protocols=list(protocols),
        topologies=list(topologies),
        results=results,
    )


#: Header fields that must agree across every record being merged; a merged
#: record stamped with the first record's header would otherwise silently
#: misdescribe the data of the later records.
MERGE_HEADER_KEYS: tuple[str, ...] = (
    "bench",
    "schema_version",
    "paper",
    "preset",
    "channel_backend",
    "seeds",
    "protocols",
    "topologies",
    "k_values",
)


def merge_records(records: list[dict]) -> dict:
    """Merge per-size sweep records into one multi-size bench record.

    Headers are taken from the first record — after validating that every
    record agrees on them (:data:`MERGE_HEADER_KEYS`); a mismatch raises
    :class:`AnalysisError` instead of producing a record that misdescribes
    its own data.  ``n`` becomes the list of sizes (kept scalar for a
    single-size sweep, the original schema) and the per-(size, family,
    protocol) entries are concatenated in order.
    """
    if not records:
        raise AnalysisError("merge_records needs at least one sweep record")
    first = records[0]
    for position, record in enumerate(records[1:], start=1):
        for key in MERGE_HEADER_KEYS:
            if record.get(key) != first.get(key):
                raise AnalysisError(
                    f"cannot merge sweep records with mismatched {key!r}: "
                    f"record 0 has {first.get(key)!r}, record {position} has "
                    f"{record.get(key)!r}"
                )
    merged = dict(records[0])
    sizes = [record["n"] for record in records]
    merged["n"] = sizes[0] if len(sizes) == 1 else sizes
    merged["results"] = [entry for record in records for entry in record["results"]]
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.broadcast_bench",
        description="Sweep Decay vs GHK across the topology suite.",
    )
    parser.add_argument(
        "--n",
        type=int,
        nargs="+",
        default=[64],
        metavar="N",
        help="network size(s) to sweep; several sizes merge into one record",
    )
    parser.add_argument("--seeds", type=int, default=30, help="seeds per (family, protocol)")
    parser.add_argument("--preset", choices=("paper", "fast"), default="fast")
    parser.add_argument(
        "--backend",
        choices=("auto", "dense", "sparse", "bitpacked"),
        default="auto",
        help="channel-kernel backend (auto picks by topology density; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=list(DEFAULT_TOPOLOGIES),
        choices=TOPOLOGY_NAMES,
        metavar="FAMILY",
        help=f"families to sweep (default: {' '.join(DEFAULT_TOPOLOGIES)})",
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_PROTOCOLS),
        choices=runners.BROADCAST_PROTOCOL_NAMES,
        metavar="PROTO",
        help=f"protocols to compare (default: {' '.join(DEFAULT_PROTOCOLS)})",
    )
    parser.add_argument(
        "--out", default="BENCH_broadcast.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    try:
        record = merge_records(
            [
                sweep_broadcast(
                    topologies=tuple(args.topologies),
                    protocols=tuple(args.protocols),
                    n=n,
                    seeds=args.seeds,
                    preset=args.preset,
                    backend=args.backend,
                )
                for n in args.n
            ]
        )
    except AnalysisError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        rounds = entry.get("rounds")
        mean = rounds["mean"] if rounds else "-"
        speedup = entry.get("speedup_vs_decay")
        extra = f"  speedup-vs-decay={speedup}x" if speedup is not None else ""
        print(
            f"{entry['topology']:>10s} {entry['protocol']:>6s} n={entry['n']:<5d}: "
            f"mean rounds={mean} failures={entry['failures']}/{entry['runs']}{extra}"
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
