"""Experiment harnesses: multi-seed sweeps over the topology suite.

The modules here drive the protocols in :mod:`repro.sim` across graph
families and seed batches, aggregate the outcomes, and emit JSON perf
records (``BENCH_*.json``) that chart the repository's bench trajectory
over time.  The first harness, :mod:`repro.experiments.broadcast_bench`,
compares the Decay baseline against the paper's collision-detection
broadcast.
"""

__all__ = ["DEFAULT_TOPOLOGIES", "sweep_broadcast", "write_bench"]


def __getattr__(name: str):
    # Lazy re-export: importing the submodule here eagerly would trigger a
    # double-import RuntimeWarning under `python -m repro.experiments.*`.
    if name in __all__:
        from repro.experiments import broadcast_bench

        return getattr(broadcast_bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
