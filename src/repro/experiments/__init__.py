"""Experiment harnesses: multi-seed sweeps over the topology suite.

The modules here drive the protocols in :mod:`repro.sim` across graph
families and seed batches, aggregate the outcomes, and emit JSON perf
records (``BENCH_*.json``) that chart the repository's bench trajectory
over time.  :mod:`repro.experiments.broadcast_bench` compares the Decay
baseline against the paper's collision-detection broadcast;
:mod:`repro.experiments.engine_bench` times the object execution path
against the array-native batch engine over the same sweep;
:mod:`repro.experiments.multimessage_bench` sweeps the k-message pipeline
across message counts and measures whether pipelining beats k sequential
broadcasts; :mod:`repro.experiments.scale_bench` compares the dense,
sparse, and bit-packed channel backends across network sizes (rounds/sec
and peak memory); :mod:`repro.experiments.kernel_bench` isolates the
per-round kernel reductions (neighbour counts, sender recovery) per
backend at the operand level.

Every record is stamped through :mod:`repro.experiments.record`
(``schema_version``, ``created_utc``); :mod:`repro.experiments.trajectory`
merges the committed record history into one longitudinal report, and
:mod:`repro.experiments.perf_gate` re-measures a smoke slice and fails on
throughput or memory regression against the committed records.
"""

__all__ = [
    "DEFAULT_K_VALUES",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_TOPOLOGIES",
    "SCHEMA_VERSION",
    "bench_engines",
    "bench_kernel",
    "bench_record",
    "bench_scale",
    "build_trajectory",
    "merge_records",
    "resolve_params",
    "sweep_broadcast",
    "sweep_multimessage",
    "write_bench",
]

_BROADCAST_EXPORTS = {
    "DEFAULT_PROTOCOLS",
    "DEFAULT_TOPOLOGIES",
    "merge_records",
    "resolve_params",
    "sweep_broadcast",
    "write_bench",
}
_MULTIMESSAGE_EXPORTS = {"DEFAULT_K_VALUES", "sweep_multimessage"}


def __getattr__(name: str):
    # Lazy re-export: importing the submodules here eagerly would trigger a
    # double-import RuntimeWarning under `python -m repro.experiments.*`.
    if name in _BROADCAST_EXPORTS:
        from repro.experiments import broadcast_bench

        return getattr(broadcast_bench, name)
    if name in _MULTIMESSAGE_EXPORTS:
        from repro.experiments import multimessage_bench

        return getattr(multimessage_bench, name)
    if name == "bench_engines":
        from repro.experiments import engine_bench

        return engine_bench.bench_engines
    if name == "bench_scale":
        from repro.experiments import scale_bench

        return scale_bench.bench_scale
    if name == "bench_kernel":
        from repro.experiments import kernel_bench

        return kernel_bench.bench_kernel
    if name in ("SCHEMA_VERSION", "bench_record"):
        from repro.experiments import record

        return getattr(record, name)
    if name == "build_trajectory":
        from repro.experiments import trajectory

        return trajectory.build_trajectory
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
