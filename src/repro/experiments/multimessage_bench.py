"""k-message pipelining sweep and the ``BENCH_multimessage.json`` record.

For every (topology family, k) cell the sweep runs a batch of seeds of the
``multimessage`` protocol — regenerating the random families per seed, so
the statistics cover graph sampling as well as protocol coins — and
aggregates rounds-to-delivery, transmissions, and failure counts.  Every
seed batch executes in one shot on the array-native batch engine
(:func:`~repro.sim.runners.run_broadcast_batch` with
``options={"k_messages": k}``)::

    python -m repro.experiments.multimessage_bench --n 64 --seeds 20 \
        --out BENCH_multimessage.json

The record's headline number is ``pipelining_speedup``: for each ``k > 1``
cell, the ratio of ``k`` times the family's ``k = 1`` mean to the cell's
mean rounds.  A value above 1 means broadcasting the ``k`` messages
together beats ``k`` sequential single-message broadcasts — the pipelining
actually pays — and the ``O(D + k log n + log^2 n)`` regime predicts it
grows with the diameter share of the ``k = 1`` cost (large on lines and
grids, below 1 on dense D <= 5 families where the ``k log n`` term is the
whole story and the ``k = 1`` baseline is wave-dominated).

Failures are counted per cell, never silently dropped, exactly like
:mod:`repro.experiments.broadcast_bench`.
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro.errors import AnalysisError, BroadcastFailure, TopologyError
from repro.experiments.broadcast_bench import (
    DEFAULT_TOPOLOGIES,
    _summary,
    merge_records,
    resolve_params,
)
from repro.experiments.record import bench_record, write_bench
from repro.sim.runners import run_broadcast_batch
from repro.sim.topology import TOPOLOGY_NAMES, from_spec

__all__ = ["DEFAULT_K_VALUES", "sweep_multimessage", "main"]

#: The ISSUE's k axis: single message, a small batch, and a deep pipeline.
DEFAULT_K_VALUES: tuple[int, ...] = (1, 4, 16)


def sweep_multimessage(
    *,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    k_values: tuple[int, ...] = DEFAULT_K_VALUES,
    n: int = 64,
    seeds: int = 20,
    preset: str = "fast",
    backend: str = "auto",
) -> dict:
    """Run the k-message sweep and return the bench record as a dict.

    Raises :class:`AnalysisError` on malformed input (unknown topology
    name, non-positive sizes, non-positive k) before any simulation runs.
    """
    if n < 1:
        raise AnalysisError(f"need at least one node, got n={n}")
    if seeds < 1:
        raise AnalysisError(f"need at least one seed, got seeds={seeds}")
    params = resolve_params(preset, backend)
    if not k_values:
        raise AnalysisError("need at least one k value")
    bad_k = [k for k in k_values if not isinstance(k, int) or k < 1]
    if bad_k:
        raise AnalysisError(f"k values must be positive integers, got {bad_k}")
    unknown = [t for t in topologies if t not in TOPOLOGY_NAMES]
    if unknown:
        raise AnalysisError(f"unknown topologies {unknown}; choose from {TOPOLOGY_NAMES}")

    results = []
    for family in topologies:
        # One network per seed, shared by every k: the k axis intentionally
        # races on the same seed-derived graphs.
        try:
            nets = [from_spec(family, n, seed=seed) for seed in range(seeds)]
        except TopologyError as exc:
            raise AnalysisError(f"cannot build {family} with n={n}: {exc}") from exc
        diameters = [net.eccentricity() for net in nets]
        family_entries: list[dict] = []
        for k in k_values:
            rounds: list[int] = []
            transmissions: list[int] = []
            energies: list[int] = []
            budgets: list[int] = []
            failures = 0
            telemetry: dict = {}
            batch = run_broadcast_batch(
                "multimessage",
                nets,
                seeds=range(len(nets)),
                params=params,
                options={"k_messages": k},
                telemetry=telemetry,
            )
            for result in batch:
                if isinstance(result, BroadcastFailure):
                    failures += 1
                    continue
                rounds.append(result.rounds_to_delivery)
                transmissions.append(result.sim.total_transmissions)
                energies.append(result.sim.traffic.energy)
                budgets.append(result.budget)
            entry = {
                "topology": family,
                "protocol": "multimessage",
                "k_messages": k,
                "n": n,
                "runs": seeds,
                "failures": failures,
                "source_eccentricity_mean": round(statistics.mean(diameters), 2),
                "sweep_seconds": telemetry["wall_seconds"],
                "sweep_rounds_per_sec": telemetry["rounds_per_sec"],
            }
            if rounds:
                entry["rounds"] = _summary(rounds)
                entry["rounds_all"] = rounds
                entry["transmissions_mean"] = round(statistics.mean(transmissions), 2)
                entry["energy_mean"] = round(statistics.mean(energies), 2)
                entry["budget_mean"] = round(statistics.mean(budgets), 2)
            family_entries.append(entry)
        # Annotate after the whole k axis ran, so the k=1 baseline is found
        # regardless of the order the caller listed the k values in.
        baseline_mean = next(
            (
                e["rounds"]["mean"]
                for e in family_entries
                if e["k_messages"] == 1 and "rounds" in e
            ),
            None,
        )
        if baseline_mean is not None and baseline_mean > 0:
            for entry in family_entries:
                if entry["k_messages"] > 1 and "rounds" in entry:
                    # k × (k=1 mean) / (k mean): > 1 means the pipeline beats
                    # k sequential single-message broadcasts.
                    entry["pipelining_speedup"] = round(
                        entry["k_messages"] * baseline_mean / entry["rounds"]["mean"], 2
                    )
        results.extend(family_entries)

    return bench_record(
        "multimessage",
        preset=preset,
        channel_backend=backend,
        n=n,
        seeds=seeds,
        protocols=["multimessage"],
        k_values=list(k_values),
        topologies=list(topologies),
        results=results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.multimessage_bench",
        description="Sweep the k-message broadcast across k and the topology suite.",
    )
    parser.add_argument(
        "--n",
        type=int,
        nargs="+",
        default=[64],
        metavar="N",
        help="network size(s) to sweep; several sizes merge into one record",
    )
    parser.add_argument("--seeds", type=int, default=20, help="seeds per (family, k)")
    parser.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=list(DEFAULT_K_VALUES),
        metavar="K",
        help=f"message counts to sweep (default: {' '.join(map(str, DEFAULT_K_VALUES))})",
    )
    parser.add_argument("--preset", choices=("paper", "fast"), default="fast")
    parser.add_argument(
        "--backend",
        choices=("auto", "dense", "sparse", "bitpacked"),
        default="auto",
        help="channel-kernel backend (results identical either way)",
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=list(DEFAULT_TOPOLOGIES),
        choices=TOPOLOGY_NAMES,
        metavar="FAMILY",
        help=f"families to sweep (default: {' '.join(DEFAULT_TOPOLOGIES)})",
    )
    parser.add_argument(
        "--out", default="BENCH_multimessage.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    try:
        record = merge_records(
            [
                sweep_multimessage(
                    topologies=tuple(args.topologies),
                    k_values=tuple(args.k),
                    n=n,
                    seeds=args.seeds,
                    preset=args.preset,
                    backend=args.backend,
                )
                for n in args.n
            ]
        )
    except AnalysisError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        rounds = entry.get("rounds")
        mean = rounds["mean"] if rounds else "-"
        speedup = entry.get("pipelining_speedup")
        extra = f"  pipelining-speedup={speedup}x" if speedup is not None else ""
        print(
            f"{entry['topology']:>10s} k={entry['k_messages']:<3d} n={entry['n']:<5d}: "
            f"mean rounds={mean} failures={entry['failures']}/{entry['runs']}{extra}"
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
