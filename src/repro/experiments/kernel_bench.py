"""Operand-level channel-kernel microbench (``BENCH_kernel.json``).

The scale bench times whole protocol runs; this bench isolates the two
kernel reductions every round pays — neighbour counts and sender-id
recovery — per backend per n, on identical seeded masks, so the backends'
raw per-round costs (and the bit-packed operand's ~64× density win over
the dense float64 matrix) are committed numbers rather than comments::

    python -m repro.experiments.kernel_bench --n 1024 4096 16384 65536 \\
        --out BENCH_kernel.json

For each (n, backend) cell the harness builds the operand from one seeded
topology, packs/converts a fixed transmit mask once per repeat (exactly
what :func:`~repro.sim.core.channel.resolve_channel` does per round), and
times ``transmit_counts`` and the clean-restricted sender pass separately
over ``--repeats`` calls.  Counts are asserted equal across backends
(``counts_match_dense``) so a kernel divergence cannot hide behind a
throughput number.

The same ``--max-operand-mib`` ceiling as the scale bench applies: cells
whose operand alone (``8·n²`` dense, ``8·n·ceil(n/64)`` bit-packed) would
exceed it are recorded as skipped, which is how the record shows dense
stopping at n=8192 while bit-packed continues — the density win made
measurable.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.errors import AnalysisError, TopologyError
from repro.experiments.record import bench_record, write_bench
from repro.sim.core.channel import BitOperand, DenseOperand, SparseOperand
from repro.sim.topology import TOPOLOGY_NAMES, from_spec

__all__ = [
    "DEFAULT_SIZES",
    "KERNEL_BACKENDS",
    "bench_kernel",
    "main",
]

#: Sizes spanning the dense regime into bit-packed-only territory.
DEFAULT_SIZES: tuple[int, ...] = (1024, 4096, 16384, 65536)

#: Every kernel operand the microbench can time.
KERNEL_BACKENDS: tuple[str, ...] = ("dense", "sparse", "bitpacked")

#: Fraction of nodes transmitting in the benchmark mask — dense enough
#: that clean listeners exist at every n (the sender pass has real work),
#: sparse enough to look like a contention-resolution round.
_TX_FRACTION = 0.05


def _operand_bytes(backend: str, n: int, edges: int) -> int:
    """The operand's own footprint (what the memory ceiling meters)."""
    if backend == "dense":
        return 8 * n * n
    if backend == "bitpacked":
        return 8 * n * (-(-n // 64))
    # CSR: int64 indptr + two directed slots per undirected edge.
    return 8 * (n + 1) + 16 * edges


def _build_operand(backend: str, net):
    if backend == "dense":
        return DenseOperand(net.adjacency_matrix())
    if backend == "sparse":
        return SparseOperand(*net.csr())
    return BitOperand(*net.csr())


def _time_calls(fn, repeats: int) -> float:
    """Mean seconds per call over ``repeats`` timed calls (one warmup)."""
    fn()
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def bench_kernel(
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    topology: str = "gnp",
    backends: tuple[str, ...] = KERNEL_BACKENDS,
    repeats: int = 10,
    seed: int = 0,
    max_operand_bytes: int = 1 << 30,
) -> dict:
    """Run the kernel microbench and return the bench record as a dict."""
    if not sizes or any(n < 1 for n in sizes):
        raise AnalysisError(f"sizes must be positive, got {list(sizes)}")
    if repeats < 1:
        raise AnalysisError(f"need at least one repeat, got repeats={repeats}")
    if topology not in TOPOLOGY_NAMES:
        raise AnalysisError(
            f"unknown topology {topology!r}; choose from {TOPOLOGY_NAMES}"
        )
    bad = [b for b in backends if b not in KERNEL_BACKENDS]
    if bad or not backends:
        raise AnalysisError(
            "backends must be a non-empty subset of "
            f"{'/'.join(KERNEL_BACKENDS)}, got {list(backends)}"
        )

    results = []
    for n in sorted(sizes):
        try:
            net = from_spec(topology, n, seed=seed)
        except TopologyError as exc:
            raise AnalysisError(f"cannot build {topology} with n={n}: {exc}") from exc
        rng = np.random.default_rng(seed)
        transmit = rng.random(n) < _TX_FRACTION
        listen = ~transmit
        cell: dict[str, dict] = {}
        counts_by_backend: dict[str, np.ndarray] = {}
        for backend in backends:
            entry = {
                "topology": topology,
                "n": n,
                "edges": net.num_edges,
                "backend": backend,
                "operand_mib": round(
                    _operand_bytes(backend, n, net.num_edges) / (1 << 20), 3
                ),
            }
            results.append(entry)
            if _operand_bytes(backend, n, net.num_edges) > max_operand_bytes:
                entry["skipped"] = (
                    f"{backend} kernel operand needs "
                    f"{_operand_bytes(backend, n, net.num_edges) >> 20} MiB "
                    f"> {max_operand_bytes >> 20} MiB ceiling"
                )
                continue
            op = _build_operand(backend, net)
            tx = op.prepare_transmit(transmit)
            counts = op.transmit_counts(tx)
            clean = listen & (counts == 1)
            entry["clean_listeners"] = int(clean.sum())
            entry["counts_seconds"] = _time_calls(
                lambda: op.transmit_counts(op.prepare_transmit(transmit)), repeats
            )
            entry["senders_seconds"] = _time_calls(
                lambda: op.sender_ids(tx, clean), repeats
            )
            entry["counts_per_sec"] = round(1.0 / entry["counts_seconds"], 1)
            entry["counts_seconds"] = round(entry["counts_seconds"], 6)
            entry["senders_seconds"] = round(entry["senders_seconds"], 6)
            cell[backend] = entry
            counts_by_backend[backend] = counts
        dense = cell.get("dense")
        for backend, entry in cell.items():
            if backend == "dense" or dense is None:
                continue
            entry["counts_match_dense"] = bool(
                (counts_by_backend[backend] == counts_by_backend["dense"]).all()
            )
            if dense["counts_seconds"] and entry["counts_seconds"]:
                entry["counts_speedup_vs_dense"] = round(
                    dense["counts_seconds"] / entry["counts_seconds"], 2
                )
            own_bytes = _operand_bytes(backend, n, net.num_edges)
            if own_bytes:
                entry["operand_ratio_vs_dense"] = round(
                    _operand_bytes("dense", n, net.num_edges) / own_bytes, 2
                )

    return bench_record(
        "kernel",
        topology=topology,
        seed=seed,
        repeats=repeats,
        tx_fraction=_TX_FRACTION,
        sizes=sorted(sizes),
        backends=list(backends),
        max_operand_mib=max_operand_bytes >> 20,
        results=results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.kernel_bench",
        description="Time the channel kernel's reductions per backend per n.",
    )
    parser.add_argument(
        "--n",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        metavar="N",
        help=f"network sizes (default: {' '.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument(
        "--topology",
        default="gnp",
        choices=TOPOLOGY_NAMES,
        help="topology family the operand is built from (default: gnp)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=list(KERNEL_BACKENDS),
        choices=KERNEL_BACKENDS,
        metavar="BACKEND",
        help=f"backends to time (default: {' '.join(KERNEL_BACKENDS)})",
    )
    parser.add_argument(
        "--repeats", type=int, default=10, help="timed calls per cell (default: 10)"
    )
    parser.add_argument("--seed", type=int, default=0, help="topology/mask seed")
    parser.add_argument(
        "--max-operand-mib",
        type=int,
        default=1024,
        help="memory ceiling: skip cells whose operand alone would exceed "
        "this many MiB (default: 1024)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="smoke-test ceiling: fail if any timed reduction call takes "
        "longer than this many seconds",
    )
    parser.add_argument("--out", default="BENCH_kernel.json", help="output JSON path")
    args = parser.parse_args(argv)
    try:
        record = bench_kernel(
            sizes=tuple(args.n),
            topology=args.topology,
            backends=tuple(args.backends),
            repeats=args.repeats,
            seed=args.seed,
            max_operand_bytes=args.max_operand_mib << 20,
        )
    except AnalysisError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        label = f"n={entry['n']:<6d} {entry['backend']:>9s}"
        if "skipped" in entry:
            print(f"{label}: skipped ({entry['skipped']})")
            continue
        speedup = entry.get("counts_speedup_vs_dense")
        extra = f"  counts-speedup={speedup}x" if speedup is not None else ""
        ratio = entry.get("operand_ratio_vs_dense")
        extra += f"  operand-ratio={ratio}x" if ratio is not None else ""
        print(
            f"{label}: counts={entry['counts_seconds'] * 1e3:.3f} ms "
            f"senders={entry['senders_seconds'] * 1e3:.3f} ms "
            f"operand={entry['operand_mib']} MiB{extra}"
        )
    print(f"wrote {path}")
    if args.max_seconds is not None:
        executed = [
            max(e["counts_seconds"], e["senders_seconds"])
            for e in record["results"]
            if "counts_seconds" in e
        ]
        slowest = max(executed, default=0.0)
        if slowest > args.max_seconds:
            print(
                f"SMOKE FAIL: slowest kernel call took {slowest:.3f}s > "
                f"ceiling {args.max_seconds:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK: every kernel call under {args.max_seconds:.2f}s ceiling")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
