"""Channel-backend scaling sweep (``BENCH_scale.json``).

For every (family, n) cell the harness runs the same seed batch once per
channel backend — dense matmul, sparse CSR, and bit-packed popcount — and
reports wall-clock rounds/sec plus the peak memory a short probe run
allocates (``tracemalloc``), so the record answers the scaling questions
directly: how much faster is the CSR kernel on sparse topologies, how far
past the dense wall does the bit-packed kernel carry dense-density
graphs, and how much smaller are their footprints::

    python -m repro.experiments.scale_bench --n 256 1024 4096 16384 65536 \
        --out BENCH_scale.json

Kernel operands have knowable sizes — ``8·n²`` bytes dense,
``8·n·ceil(n/64)`` bit-packed — so cells whose estimated operand exceeds
``--max-dense-mib`` are *recorded as skipped* rather than run — that is
the bench's memory ceiling, and the sizes the other backends complete
beyond it are exactly the regime the skipped path cannot reach.
``--max-cell-seconds`` is the analogous time ceiling: once a backend
exceeds it at some n, larger n for that family are skipped for that
backend.

When dense and another backend both run a cell, the non-dense entry
records ``speedup_vs_dense`` (rounds/sec ratio), ``memory_ratio_vs_dense``
(dense probe peak / own probe peak) and ``results_match_dense`` — the
backends are bitwise-identical by construction (see
``tests/test_sparse_equivalence.py`` and
``tests/test_bitpacked_equivalence.py``), and the record keeps that
honest.

``--max-seconds`` turns the run into a smoke test: exit non-zero when any
executed cell needs longer than the ceiling (CI uses this with
``--backends sparse`` at n=4096 and ``--backends bitpacked`` at n=65536
to catch scaling regressions without gating merges).
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc

from collections.abc import Sequence

from repro.errors import AnalysisError, BroadcastFailure, TopologyError
from repro.params import ProtocolParams
from repro.experiments.broadcast_bench import resolve_params
from repro.experiments.record import bench_record, rounds_per_sec, write_bench
from repro.sim import runners
from repro.sim.runners import run_broadcast_batch
from repro.sim.topology import TOPOLOGY_NAMES, RadioNetwork, from_spec

__all__ = [
    "DEFAULT_SIZES",
    "PROBE_ROUNDS",
    "SCALE_BACKENDS",
    "SCALE_TOPOLOGIES",
    "bench_scale",
    "main",
    "probe_peak_bytes",
]

#: The ISSUE's size axis: from comfortably-dense to past the dense wall.
DEFAULT_SIZES: tuple[int, ...] = (256, 1024, 4096, 16384)

#: Every channel backend the sweep can compare.
SCALE_BACKENDS: tuple[str, ...] = ("dense", "sparse", "bitpacked")

#: Sparse families only: on these, edges grow ~linearly with n, so the
#: CSR backend's Θ(edges)-per-round advantage is the whole story.  (star
#: and dumbbell are contention stressors, not scaling ones.)
SCALE_TOPOLOGIES: tuple[str, ...] = ("line", "grid", "gnp", "unit_disk")

#: Rounds executed under tracemalloc to measure a cell's steady-state peak
#: (operand construction plus per-round temporaries) without paying the
#: tracer's overhead during the timed run.
PROBE_ROUNDS = 32


def _operand_bytes(backend: str, n: int) -> int:
    """Estimated kernel-operand footprint, for the bench's memory ceiling.

    The sparse operand is Θ(edges) — family-dependent and always far
    below the ceiling on these sweep families — so it is never skipped
    on memory.
    """
    if backend == "dense":
        return 8 * n * n
    if backend == "bitpacked":
        return 8 * n * (-(-n // 64))
    return 0


def _run_signature(result) -> tuple:
    """Everything observable about one run, for cross-backend comparison.

    Covers delivery status, per-node arrival rounds, and the channel
    totals — not just rounds-to-delivery — so a backend divergence that
    happens to leave the round count intact still trips the check.
    """
    sim = result.sim
    totals = (
        sim.rounds_run,
        sim.total_transmissions,
        sim.total_deliveries,
        sim.total_collisions,
    )
    if isinstance(result, BroadcastFailure):
        return ("failed", tuple(result.undelivered), totals)
    return ("delivered", result.rounds_to_delivery, tuple(result.informed_rounds), totals)


def probe_peak_bytes(
    protocol: str,
    nets: Sequence[RadioNetwork],
    params: ProtocolParams,
    seeds: int,
) -> int:
    """Peak bytes allocated by a short run of this cell (operand + rounds).

    Public because the perf gate re-measures committed cells with exactly
    this probe — same rounds, same tracer — so the two numbers compare.
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        run_broadcast_batch(
            protocol, nets, seeds=range(seeds), params=params, budget=PROBE_ROUNDS
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def bench_scale(
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    topologies: tuple[str, ...] = SCALE_TOPOLOGIES,
    protocol: str = "ghk",
    seeds: int = 1,
    preset: str = "fast",
    backends: tuple[str, ...] = ("dense", "sparse"),
    max_dense_bytes: int = 1 << 30,
    max_cell_seconds: float | None = None,
) -> dict:
    """Run the scaling sweep and return the bench record as a dict."""
    if not sizes or any(n < 1 for n in sizes):
        raise AnalysisError(f"sizes must be positive, got {list(sizes)}")
    if seeds < 1:
        raise AnalysisError(f"need at least one seed, got seeds={seeds}")
    unknown = [t for t in topologies if t not in TOPOLOGY_NAMES]
    if unknown:
        raise AnalysisError(
            f"unknown topologies {unknown}; choose from {TOPOLOGY_NAMES}"
        )
    bad = [b for b in backends if b not in SCALE_BACKENDS]
    if bad or not backends:
        raise AnalysisError(
            "backends must be a non-empty subset of "
            f"{'/'.join(SCALE_BACKENDS)}, got {list(backends)}"
        )
    if protocol not in runners.BROADCAST_PROTOCOL_NAMES:
        raise AnalysisError(
            f"unknown protocol {protocol!r}; "
            f"choose from {runners.BROADCAST_PROTOCOL_NAMES}"
        )
    resolve_params(preset)  # validates the preset name up front

    results = []
    for family in topologies:
        #: backend -> size at which this family exceeded the time ceiling.
        timed_out: dict[str, int] = {}
        for n in sorted(sizes):
            try:
                t0 = time.perf_counter()
                nets = [from_spec(family, n, seed=seed) for seed in range(seeds)]
                for net in nets:
                    net.eccentricity()  # warm the BFS cache outside the timing
                build_seconds = time.perf_counter() - t0
            except TopologyError as exc:
                raise AnalysisError(f"cannot build {family} with n={n}: {exc}") from exc
            edges = nets[0].num_edges
            cell: dict[str, dict] = {}
            signatures: dict[str, list[tuple]] = {}
            for backend in backends:
                entry = {
                    "topology": family,
                    "n": n,
                    "edges": edges,
                    "backend": backend,
                    "build_seconds": round(build_seconds, 3),
                }
                results.append(entry)
                operand_bytes = _operand_bytes(backend, n)
                if operand_bytes > max_dense_bytes:
                    entry["skipped"] = (
                        f"{backend} kernel operand needs {operand_bytes >> 20} "
                        f"MiB > {max_dense_bytes >> 20} MiB ceiling"
                    )
                    continue
                if backend in timed_out:
                    entry["skipped"] = (
                        f"{backend} already exceeded the {max_cell_seconds}s "
                        f"cell ceiling at n={timed_out[backend]}"
                    )
                    continue
                params = resolve_params(preset, backend)
                entry["peak_mib"] = round(
                    probe_peak_bytes(protocol, nets, params, seeds) / (1 << 20), 2
                )
                telemetry: dict = {}
                t0 = time.perf_counter()
                batch = run_broadcast_batch(
                    protocol, nets, seeds=range(seeds), params=params,
                    telemetry=telemetry,
                )
                seconds = time.perf_counter() - t0
                rounds = sum(r.sim.rounds_run for r in batch)
                entry.update(
                    seconds=round(seconds, 3),
                    rounds=rounds,
                    rounds_per_sec=rounds_per_sec(rounds, seconds),
                    phase_seconds=telemetry["phase_seconds"],
                    completed=sum(
                        not isinstance(r, BroadcastFailure) for r in batch
                    ),
                    runs=seeds,
                    rounds_to_delivery=[
                        None
                        if isinstance(r, BroadcastFailure)
                        else r.rounds_to_delivery
                        for r in batch
                    ],
                )
                cell[backend] = entry
                signatures[backend] = [_run_signature(r) for r in batch]
                if max_cell_seconds is not None and seconds > max_cell_seconds:
                    timed_out[backend] = n
            dense = cell.get("dense")
            for backend, entry in cell.items():
                if backend == "dense" or dense is None:
                    continue
                if dense["rounds_per_sec"] and entry["rounds_per_sec"]:
                    entry["speedup_vs_dense"] = round(
                        entry["rounds_per_sec"] / dense["rounds_per_sec"], 2
                    )
                if entry["peak_mib"]:
                    entry["memory_ratio_vs_dense"] = round(
                        dense["peak_mib"] / entry["peak_mib"], 2
                    )
                # Full-run signatures (status, per-node arrival rounds,
                # channel totals), not just rounds-to-delivery.
                entry["results_match_dense"] = (
                    signatures[backend] == signatures["dense"]
                )

    return bench_record(
        "scale",
        preset=preset,
        protocol=protocol,
        seeds=seeds,
        sizes=sorted(sizes),
        topologies=list(topologies),
        backends=list(backends),
        max_dense_mib=max_dense_bytes >> 20,
        probe_rounds=PROBE_ROUNDS,
        results=results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scale_bench",
        description="Sweep the channel backends across network sizes.",
    )
    parser.add_argument(
        "--n",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        metavar="N",
        help=f"network sizes (default: {' '.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=list(SCALE_TOPOLOGIES),
        choices=TOPOLOGY_NAMES,
        metavar="FAMILY",
        help=f"families to sweep (default: {' '.join(SCALE_TOPOLOGIES)})",
    )
    parser.add_argument(
        "--protocol",
        default="ghk",
        choices=runners.BROADCAST_PROTOCOL_NAMES,
        help="broadcast protocol to time (default: ghk)",
    )
    parser.add_argument("--seeds", type=int, default=1, help="seeds per cell")
    parser.add_argument("--preset", choices=("paper", "fast"), default="fast")
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["dense", "sparse"],
        choices=SCALE_BACKENDS,
        metavar="BACKEND",
        help="channel backends to compare (default: dense sparse)",
    )
    parser.add_argument(
        "--max-dense-mib",
        type=int,
        default=1024,
        help="memory ceiling: skip cells whose kernel operand alone (8n² "
        "bytes dense, 8n·ceil(n/64) bitpacked) would exceed this many MiB "
        "(default: 1024)",
    )
    parser.add_argument(
        "--max-cell-seconds",
        type=float,
        default=None,
        help="time ceiling: once a backend exceeds this per cell, skip its "
        "larger sizes in the same family",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="smoke-test ceiling: fail if any executed cell takes longer "
        "than this many seconds",
    )
    parser.add_argument("--out", default="BENCH_scale.json", help="output JSON path")
    args = parser.parse_args(argv)
    try:
        record = bench_scale(
            sizes=tuple(args.n),
            topologies=tuple(args.topologies),
            protocol=args.protocol,
            seeds=args.seeds,
            preset=args.preset,
            backends=tuple(args.backends),
            max_dense_bytes=args.max_dense_mib << 20,
            max_cell_seconds=args.max_cell_seconds,
        )
    except AnalysisError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        label = f"{entry['topology']:>10s} n={entry['n']:<6d} {entry['backend']:>6s}"
        if "skipped" in entry:
            print(f"{label}: skipped ({entry['skipped']})")
            continue
        speedup = entry.get("speedup_vs_dense")
        extra = f"  speedup-vs-dense={speedup}x" if speedup is not None else ""
        ratio = entry.get("memory_ratio_vs_dense")
        extra += f"  mem-ratio={ratio}x" if ratio is not None else ""
        print(
            f"{label}: {entry['rounds_per_sec']} r/s "
            f"peak={entry['peak_mib']} MiB{extra}"
        )
    print(f"wrote {path}")
    if args.max_seconds is not None:
        executed = [e["seconds"] for e in record["results"] if "seconds" in e]
        slowest = max(executed, default=0.0)
        if slowest > args.max_seconds:
            print(
                f"SMOKE FAIL: slowest cell took {slowest:.2f}s > "
                f"ceiling {args.max_seconds:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK: every cell under {args.max_seconds:.2f}s ceiling")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
