"""Fault-injection robustness sweep (``BENCH_faults.json``).

For every (protocol, fault family, intensity level) cell the harness runs
a seed batch under a sampled :class:`~repro.sim.faults.FaultSchedule` and
reports how delivery degrades against the fault-free baseline of the same
protocol: delivery rate under the *paper* round budget, mean rounds to
delivery among the runs that still finish, the slowdown factor, the mean
energy cost, and the injected-fault totals actually realized::

    python -m repro.experiments.robustness_bench --seeds 20 \
        --out BENCH_faults.json

Fault families and their level axes:

* ``crash`` — per-node crash probability (one down window per crashed
  node, start/length sampled within the budget horizon);
* ``loss``  — per-reception drop probability;
* ``jam``   — number of always-on jamming nodes (never the source);
* ``flip``  — per-edge probability of one outage window (the network is
  time-varying for the run).

Every cell keeps the protocol's *default* budget — degradation under the
paper budget is the question, so no fault slack is granted — and every
schedule is sampled from the run seed on its own stream, making the whole
record reproducible bit for bit.  A ``none`` cell per protocol records
the fault-free baseline the ratios are computed against.

``--max-seconds`` turns the run into a smoke test: exit non-zero when
any executed cell needs longer than the ceiling (CI runs a tiny sweep
this way, mirroring the scale smoke).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import AnalysisError, BroadcastFailure, TopologyError
from repro.experiments.broadcast_bench import resolve_params
from repro.experiments.record import bench_record, rounds_per_sec, write_bench
from repro.sim import runners
from repro.sim.faults import sample_fault_schedule
from repro.sim.runners import run_broadcast_batch
from repro.sim.topology import TOPOLOGY_NAMES, from_spec

__all__ = [
    "DEFAULT_LEVELS",
    "DEFAULT_PROTOCOLS",
    "FAULT_FAMILIES",
    "bench_faults",
    "main",
]

#: The fault families swept, in record order; ``none`` is the implicit
#: per-protocol baseline cell.
FAULT_FAMILIES: tuple[str, ...] = ("crash", "loss", "jam", "flip")

#: Default intensity levels per family (jam levels are jammer counts).
DEFAULT_LEVELS: dict[str, tuple[float, ...]] = {
    "crash": (0.1, 0.25),
    "loss": (0.1, 0.3),
    "jam": (1, 2),
    "flip": (0.15,),
}

#: Decay (collision-blind baseline), GHK (the paper's broadcast) and the
#: k-message pipeline — the three protocol families the repo reproduces.
DEFAULT_PROTOCOLS: tuple[str, ...] = ("decay", "ghk", "multimessage")

#: Messages pipelined in the multimessage cells (k=1 would collapse the
#: pipeline to single-message GHK).
MULTIMESSAGE_K = 2


def _schedule_kwargs(family: str, level: float) -> dict:
    """Map one (family, level) pair to :func:`sample_fault_schedule` knobs."""
    if family == "crash":
        return {"crash_rate": float(level)}
    if family == "loss":
        return {"loss_rate": float(level)}
    if family == "jam":
        return {"jammers": int(level)}
    if family == "flip":
        return {"edge_flip_rate": float(level)}
    raise AnalysisError(f"unknown fault family {family!r}; choose from {FAULT_FAMILIES}")


def _run_cell(
    protocol: str,
    nets,
    seeds: list[int],
    params,
    options: dict,
    schedules,
) -> dict:
    """One batch run -> the cell's delivery/rounds/energy/fault metrics."""
    telemetry: dict = {}
    t0 = time.perf_counter()
    batch = run_broadcast_batch(
        protocol,
        nets,
        seeds=seeds,
        params=params,
        options=options or None,
        faults=schedules,
        telemetry=telemetry,
    )
    seconds = time.perf_counter() - t0
    delivered = [r for r in batch if not isinstance(r, BroadcastFailure)]
    rounds = [r.rounds_to_delivery for r in delivered]
    sims = [r.sim for r in batch]
    total_rounds = sum(sim.rounds_run for sim in sims)
    entry: dict = {
        "runs": len(batch),
        "delivered": len(delivered),
        "delivery_rate": round(len(delivered) / len(batch), 4),
        "seconds": round(seconds, 3),
        "rounds_per_sec": rounds_per_sec(total_rounds, seconds),
    }
    if rounds:
        entry["rounds"] = {
            "mean": round(sum(rounds) / len(rounds), 1),
            "min": min(rounds),
            "max": max(rounds),
        }
        entry["energy_mean"] = round(
            sum(r.sim.traffic.energy for r in delivered) / len(delivered), 1
        )
    fault_sims = [sim for sim in sims if sim.faults is not None]
    if fault_sims:
        entry["fault_totals_mean"] = {
            "dropped_receptions": round(
                sum(s.faults.dropped_receptions for s in fault_sims) / len(fault_sims), 1
            ),
            "jammed_listens": round(
                sum(s.faults.jammed_listens for s in fault_sims) / len(fault_sims), 1
            ),
            "crashed_node_rounds": round(
                sum(s.faults.crashed_node_rounds for s in fault_sims) / len(fault_sims), 1
            ),
            "edge_flips_applied": round(
                sum(s.faults.edge_flips_applied for s in fault_sims) / len(fault_sims), 1
            ),
        }
    return entry


def bench_faults(
    *,
    n: int = 36,
    topology: str = "grid",
    protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
    seeds: int = 20,
    preset: str = "fast",
    levels: dict[str, tuple[float, ...]] | None = None,
) -> dict:
    """Run the robustness sweep and return the bench record as a dict."""
    if n < 2:
        raise AnalysisError(f"need at least 2 nodes, got n={n}")
    if seeds < 1:
        raise AnalysisError(f"need at least one seed, got seeds={seeds}")
    if topology not in TOPOLOGY_NAMES:
        raise AnalysisError(
            f"unknown topology {topology!r}; choose from {TOPOLOGY_NAMES}"
        )
    for protocol in protocols:
        if protocol not in runners.BROADCAST_PROTOCOL_NAMES:
            raise AnalysisError(
                f"unknown protocol {protocol!r}; "
                f"choose from {runners.BROADCAST_PROTOCOL_NAMES}"
            )
    if not protocols:
        raise AnalysisError("need at least one protocol")
    levels = dict(DEFAULT_LEVELS) if levels is None else levels
    unknown = [f for f in levels if f not in FAULT_FAMILIES]
    if unknown:
        raise AnalysisError(
            f"unknown fault families {unknown}; choose from {FAULT_FAMILIES}"
        )
    params = resolve_params(preset)
    seed_list = list(range(seeds))
    try:
        nets = [from_spec(topology, n, seed=seed) for seed in seed_list]
    except TopologyError as exc:
        raise AnalysisError(f"cannot build {topology} with n={n}: {exc}") from exc

    results = []
    for protocol in protocols:
        spec = runners.broadcast_spec(protocol)
        options = (
            {"k_messages": MULTIMESSAGE_K}
            if "k_messages" in spec.option_names
            else {}
        )
        budgets = [
            spec.budget_for(params, net, net.n, options) for net in nets
        ]

        def cell_header(family: str, level: float, *, protocol: str = protocol) -> dict:
            return {
                "protocol": protocol,
                "family": family,
                "level": level,
                "topology": topology,
                "n": n,
            }

        baseline = cell_header("none", 0.0)
        baseline.update(_run_cell(protocol, nets, seed_list, params, options, None))
        results.append(baseline)
        baseline_rounds = baseline.get("rounds", {}).get("mean")

        for family in FAULT_FAMILIES:
            for level in levels.get(family, ()):
                schedules = [
                    sample_fault_schedule(
                        net,
                        seed=seed,
                        horizon=budget,
                        **_schedule_kwargs(family, level),
                    )
                    for net, seed, budget in zip(nets, seed_list, budgets)
                ]
                entry = cell_header(family, level)
                entry.update(
                    _run_cell(protocol, nets, seed_list, params, options, schedules)
                )
                cell_rounds = entry.get("rounds", {}).get("mean")
                if baseline_rounds and cell_rounds:
                    entry["slowdown_vs_fault_free"] = round(
                        cell_rounds / baseline_rounds, 2
                    )
                results.append(entry)

    return bench_record(
        "faults",
        preset=preset,
        topology=topology,
        n=n,
        seeds=seeds,
        protocols=list(protocols),
        families=list(FAULT_FAMILIES),
        levels={k: list(v) for k, v in levels.items()},
        multimessage_k=MULTIMESSAGE_K,
        results=results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.robustness_bench",
        description="Sweep broadcast delivery degradation under injected faults.",
    )
    parser.add_argument("--n", type=int, default=36, help="network size (default: 36)")
    parser.add_argument(
        "--topology",
        default="grid",
        choices=TOPOLOGY_NAMES,
        help="topology family (default: grid)",
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_PROTOCOLS),
        metavar="PROTOCOL",
        help=f"protocols to sweep (default: {' '.join(DEFAULT_PROTOCOLS)})",
    )
    parser.add_argument("--seeds", type=int, default=20, help="seeds per cell")
    parser.add_argument("--preset", choices=("paper", "fast"), default="fast")
    parser.add_argument(
        "--crash-rates",
        type=float,
        nargs="*",
        default=None,
        metavar="P",
        help=f"crash-rate levels (default: {list(DEFAULT_LEVELS['crash'])})",
    )
    parser.add_argument(
        "--loss-rates",
        type=float,
        nargs="*",
        default=None,
        metavar="P",
        help=f"loss-rate levels (default: {list(DEFAULT_LEVELS['loss'])})",
    )
    parser.add_argument(
        "--jammers",
        type=int,
        nargs="*",
        default=None,
        metavar="J",
        help=f"jammer-count levels (default: {list(DEFAULT_LEVELS['jam'])})",
    )
    parser.add_argument(
        "--flip-rates",
        type=float,
        nargs="*",
        default=None,
        metavar="P",
        help=f"edge-flip-rate levels (default: {list(DEFAULT_LEVELS['flip'])})",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="smoke-test ceiling: fail if any executed cell takes longer "
        "than this many seconds",
    )
    parser.add_argument("--out", default="BENCH_faults.json", help="output JSON path")
    args = parser.parse_args(argv)
    levels = dict(DEFAULT_LEVELS)
    for family, override in (
        ("crash", args.crash_rates),
        ("loss", args.loss_rates),
        ("jam", args.jammers),
        ("flip", args.flip_rates),
    ):
        if override is not None:
            levels[family] = tuple(override)
    try:
        record = bench_faults(
            n=args.n,
            topology=args.topology,
            protocols=tuple(args.protocols),
            seeds=args.seeds,
            preset=args.preset,
            levels=levels,
        )
    except AnalysisError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        label = (
            f"{entry['protocol']:>12s} {entry['family']:>5s}={entry['level']:<5}"
        )
        rounds = entry.get("rounds", {}).get("mean")
        slowdown = entry.get("slowdown_vs_fault_free")
        extra = f"  slowdown={slowdown}x" if slowdown is not None else ""
        print(
            f"{label}: delivery={entry['delivery_rate']:.2f} "
            f"rounds-mean={rounds}{extra}"
        )
    print(f"wrote {path}")
    if args.max_seconds is not None:
        executed = [e["seconds"] for e in record["results"] if "seconds" in e]
        slowest = max(executed, default=0.0)
        if slowest > args.max_seconds:
            print(
                f"SMOKE FAIL: slowest cell took {slowest:.2f}s > "
                f"ceiling {args.max_seconds:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK: every cell under {args.max_seconds:.2f}s ceiling")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
