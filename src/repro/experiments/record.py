"""Shared bench-record plumbing for every ``BENCH_*.json`` writer.

Every bench module builds its record through :func:`bench_record`, so the
header boilerplate (``bench`` kind, ``schema_version``, ``paper``,
``created_utc``) is stamped in exactly one place — and the longitudinal
perf gate (:mod:`repro.experiments.perf_gate`) can key on
``schema_version`` to refuse comparing records whose shapes have drifted
apart.

Bump :data:`SCHEMA_VERSION` whenever a bench record's *meaning* changes —
renamed metrics, changed units, a different measurement protocol — and
regenerate the committed records in the same PR; the perf gate fails
loudly on a version mismatch instead of producing a nonsense comparison.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.simsan.core import sanitize_from_env

__all__ = [
    "PAPER_ID",
    "SCHEMA_VERSION",
    "bench_record",
    "rounds_per_sec",
    "write_bench",
]

#: The source paper every record reproduces.
PAPER_ID = "conf_podc_GhaffariHK13"

#: Version of the bench-record schemas.  v2 introduced the shared header
#: (this module) plus traffic/telemetry fields; v1 records (no
#: ``schema_version`` key) predate the perf gate and cannot be gated.
SCHEMA_VERSION = 2


def rounds_per_sec(rounds: int, seconds: float) -> float | None:
    """Throughput rounded to the precision every bench reports, or ``None``."""
    return round(rounds / seconds, 1) if seconds > 0 else None


def bench_record(bench: str, **fields) -> dict:
    """Assemble one bench record: the shared header, then bench-specific fields.

    Key order is deliberate — header first, the caller's fields after, so
    committed records stay diffable across PRs.  The header stamps whether
    the process ran under ``REPRO_SANITIZE``: sanitized numbers measure
    the sanitizer, not the engine, so the perf gate refuses them.
    """
    return {
        "bench": bench,
        "schema_version": SCHEMA_VERSION,
        "paper": PAPER_ID,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "sanitized": sanitize_from_env(),
        **fields,
    }


def write_bench(record: dict, path: str | Path) -> Path:
    """Write a bench record as pretty-printed JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path
