"""Object-path vs array-path throughput microbenchmark (``BENCH_engine.json``).

For each protocol the harness runs the *same* multi-seed sweep twice —
once through the classic per-node object engine, once through the
array-native batch engine — and reports wall-clock rounds/sec for both
paths plus the speedup.  The two paths execute bitwise-identical rounds on
identical seeds (see ``tests/test_equivalence.py``), so the ratio isolates
pure execution-core overhead: ``n`` Python method calls per round versus a
handful of array operations::

    python -m repro.experiments.engine_bench --n 256 --seeds 30 \
        --out BENCH_engine.json

``--max-seconds`` turns the run into a smoke test: exit non-zero when the
*array* path needs longer than the ceiling for its whole sweep (used by CI
to catch vectorization regressions without gating merges).
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.errors import AnalysisError, BroadcastFailure, TopologyError
from repro.experiments.broadcast_bench import DEFAULT_PROTOCOLS, resolve_params
from repro.experiments.record import bench_record, rounds_per_sec, write_bench
from repro.sim import runners
from repro.sim.runners import broadcast_runner, broadcast_spec, run_broadcast_batch
from repro.sim.topology import TOPOLOGY_NAMES, from_spec

__all__ = ["bench_engines", "main"]


def _path_entry(rounds: int, seconds: float, completed: int, runs: int) -> dict:
    return {
        "rounds": rounds,
        "seconds": round(seconds, 4),
        "rounds_per_sec": rounds_per_sec(rounds, seconds),
        "completed": completed,
        "runs": runs,
    }


def bench_engines(
    *,
    n: int = 256,
    seeds: int = 30,
    topology: str = "grid",
    protocols: tuple[str, ...] | None = None,
    preset: str = "fast",
    backend: str = "auto",
) -> dict:
    """Time the object and array paths over the same sweep; return the record.

    Both paths run every (protocol, seed) instance to delivery or budget;
    ``rounds`` counts the rounds actually executed (budget rounds for a
    failed instance), so ``rounds_per_sec`` is genuine execution
    throughput, not success-biased.
    """
    if n < 1:
        raise AnalysisError(f"need at least one node, got n={n}")
    if seeds < 1:
        raise AnalysisError(f"need at least one seed, got seeds={seeds}")
    params = resolve_params(preset, backend)
    if topology not in TOPOLOGY_NAMES:
        raise AnalysisError(
            f"unknown topology {topology!r}; choose from {TOPOLOGY_NAMES}"
        )
    if protocols is None:
        protocols = DEFAULT_PROTOCOLS
    unknown = [p for p in protocols if p not in runners.BROADCAST_PROTOCOL_NAMES]
    if unknown:
        raise AnalysisError(
            f"unknown protocols {unknown}; choose from {runners.BROADCAST_PROTOCOL_NAMES}"
        )
    try:
        nets = [from_spec(topology, n, seed=seed) for seed in range(seeds)]
    except TopologyError as exc:
        raise AnalysisError(f"cannot build {topology} with n={n}: {exc}") from exc
    # Warm the topology caches so neither path pays BFS inside its timing.
    for net in nets:
        net.eccentricity()

    results = []
    for protocol in protocols:
        spec = broadcast_spec(protocol)
        budgets = [spec.budget_for(params, net, net.n, {}) for net in nets]

        runner = broadcast_runner(protocol)
        rounds_object = 0
        completed_object = 0
        t0 = time.perf_counter()
        for seed, (net, budget) in enumerate(zip(nets, budgets)):
            try:
                result = runner(net, params, seed=seed)
            except BroadcastFailure:
                rounds_object += budget
                continue
            rounds_object += result.sim.rounds_run
            completed_object += 1
        object_seconds = time.perf_counter() - t0

        rounds_array = 0
        completed_array = 0
        telemetry: dict = {}
        t0 = time.perf_counter()
        batch = run_broadcast_batch(
            protocol, nets, seeds=range(seeds), params=params, telemetry=telemetry
        )
        array_seconds = time.perf_counter() - t0
        sample_rounds: list[int] = []
        for result, budget in zip(batch, budgets):
            if isinstance(result, BroadcastFailure):
                rounds_array += budget
                continue
            rounds_array += result.sim.rounds_run
            completed_array += 1
            sample_rounds.append(result.rounds_to_delivery)

        entry = {
            "protocol": protocol,
            "topology": topology,
            "n": n,
            "seeds": seeds,
            "rounds_to_delivery_mean": (
                round(statistics.mean(sample_rounds), 2) if sample_rounds else None
            ),
            "object": _path_entry(rounds_object, object_seconds, completed_object, seeds),
            "array": {
                **_path_entry(rounds_array, array_seconds, completed_array, seeds),
                # Where the array path's time goes, from the engine's own
                # phase timers (act / channel / feedback).
                "phase_seconds": telemetry["phase_seconds"],
            },
        }
        if rounds_array != rounds_object or completed_array != completed_object:
            # The equivalence suite makes this unreachable; keep the record
            # honest if a regression ever slips through.
            entry["paths_diverged"] = True
        if object_seconds > 0 and array_seconds > 0 and rounds_object:
            entry["speedup_rounds_per_sec"] = round(
                (rounds_array / array_seconds) / (rounds_object / object_seconds), 2
            )
        results.append(entry)

    return bench_record(
        "engine",
        preset=preset,
        channel_backend=backend,
        topology=topology,
        n=n,
        seeds=seeds,
        protocols=list(protocols),
        results=results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.engine_bench",
        description="Time the object vs array execution paths over one sweep.",
    )
    parser.add_argument("--n", type=int, default=256, help="nodes per network")
    parser.add_argument("--seeds", type=int, default=30, help="seeds per protocol")
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="grid")
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_PROTOCOLS),
        choices=runners.BROADCAST_PROTOCOL_NAMES,
        metavar="PROTO",
        help=f"protocols to time (default: {' '.join(DEFAULT_PROTOCOLS)})",
    )
    parser.add_argument("--preset", choices=("paper", "fast"), default="fast")
    parser.add_argument(
        "--backend",
        choices=("auto", "dense", "sparse", "bitpacked"),
        default="auto",
        help="channel-kernel backend for the array path (results identical)",
    )
    parser.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="smoke-test ceiling: fail if the array path's whole sweep "
        "takes longer than this many seconds",
    )
    args = parser.parse_args(argv)
    try:
        record = bench_engines(
            n=args.n,
            seeds=args.seeds,
            topology=args.topology,
            protocols=tuple(args.protocols),
            preset=args.preset,
            backend=args.backend,
        )
    except AnalysisError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(record, args.out)
    for entry in record["results"]:
        speedup = entry.get("speedup_rounds_per_sec")
        print(
            f"{entry['protocol']:>6s} on {entry['topology']} n={entry['n']}: "
            f"object={entry['object']['rounds_per_sec']} r/s "
            f"array={entry['array']['rounds_per_sec']} r/s "
            f"speedup={speedup}x"
        )
    print(f"wrote {path}")
    if args.max_seconds is not None:
        slowest = max(entry["array"]["seconds"] for entry in record["results"])
        if slowest > args.max_seconds:
            print(
                f"SMOKE FAIL: array path took {slowest:.2f}s > "
                f"ceiling {args.max_seconds:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK: array path under {args.max_seconds:.2f}s ceiling")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
