"""The beep-wave synchronization layer (Section 2 of the paper).

With collision detection a listening node can tell *something was sent*
apart from *nothing was sent* even when the something is garbled — a
collision is as informative as a clean packet.  That 1-bit channel turns a
transmission into a **beep**, and beeps propagate as a **wave**: the source
beeps in round 0, and every node that detects its first beep in round
``r`` (necessarily from hop distance ``r``) re-beeps in round ``r + 1``.
The wave therefore advances exactly one hop per round, regardless of how
many nodes beep simultaneously, and teaches every node its exact BFS
distance from the source — a distributed round/phase synchronization
primitive that collision-*blind* radios fundamentally lack (without
detection the wave stalls wherever two relays overlap).

The layer exports:

* :data:`WAVE_PULSE` — the sentinel payload of a pure synchronization
  pulse.  Pulses may be transmitted with any payload (receivers that only
  detect a collision never see it), so protocols stacked on the wave are
  free to piggyback real data on their pulses; the sentinel marks a pulse
  that carries none.
* :func:`is_beep` — the CD predicate: feedback counts as a beep iff it is
  not silence.
* :func:`in_layer_slot` — slot arithmetic for wave pipelining: with a
  spacing of at least 3 rounds, layer ``d``'s repeat slots
  (``round ≡ d  (mod spacing)``) never collide with the forward wave from
  layer ``d - 1`` or the backward echo from layer ``d + 1``.
* :class:`BeepWaveProtocol` / :func:`run_beep_wave` — the single-wave
  protocol on its own, used to test the layer and to measure distances.

:mod:`repro.sim.ghk_broadcast` builds the paper's broadcast on top of
these pieces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BroadcastFailure
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import (
    ArrayContext,
    ArrayProtocol,
    RoundPlan,
    register_array_protocol,
)
from repro.sim.core.channel import ChannelRound
from repro.sim.engine import Engine, SimResult
from repro.sim.protocol import (
    Action,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
    register_protocol,
)
from repro.sim.topology import RadioNetwork

__all__ = [
    "WAVE_PULSE",
    "is_beep",
    "in_layer_slot",
    "BeepWaveProtocol",
    "BeepWaveArrayProtocol",
    "BeepWaveResult",
    "run_beep_wave",
]


class _WavePulse:
    """Singleton payload of a content-free synchronization pulse."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WAVE_PULSE"


#: The payload a node transmits when it beeps without data to piggyback.
WAVE_PULSE = _WavePulse()


def is_beep(feedback: Feedback) -> bool:
    """Whether a listening node with collision detection heard a beep.

    Under collision detection both a clean message and a collision prove
    that at least one neighbour transmitted; only silence is not a beep.
    """
    return feedback.kind is not FeedbackKind.SILENCE


def in_layer_slot(round_index: int, wave_distance: int, spacing: int) -> bool:
    """Whether ``round_index`` is a repeat slot of layer ``wave_distance``.

    Layer ``d`` owns rounds ``d, d + spacing, d + 2·spacing, ...``; the
    first of those is the node's sync-pulse relay, so only strictly later
    rounds count as repeat slots.
    """
    return (
        round_index > wave_distance
        and (round_index - wave_distance) % spacing == 0
    )


@register_protocol("beepwave")
class BeepWaveProtocol(Protocol):
    """Propagate one synchronization beep wave and learn the BFS distance.

    Listens until the first beep, records ``wave_distance`` as that round
    plus one, relays the pulse exactly once in round ``wave_distance``, and
    then sleeps.  Under collision detection the learned distances are the
    exact BFS layers; without it the wave stalls (or detours) wherever two
    relays collide, which :func:`run_beep_wave` lets you demonstrate.
    """

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        #: hop distance from the source, learned when the wave arrives.
        self.wave_distance: int | None = 0 if ctx.is_source else None
        self._pulse_sent = False

    def act(self, round_index: int) -> Action:
        if self.wave_distance is None:
            return Action.listen()
        if not self._pulse_sent and round_index >= self.wave_distance:
            self._pulse_sent = True
            return Action.transmit(WAVE_PULSE)
        return Action.sleep()

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if self.wave_distance is None and is_beep(feedback):
            self.wave_distance = feedback.round_index + 1

    def finished(self) -> bool:
        return self._pulse_sent


@register_array_protocol("beepwave")
class BeepWaveArrayProtocol(ArrayProtocol):
    """Whole-network beep wave: all nodes' distances and pulses as arrays.

    Mirrors :class:`BeepWaveProtocol` exactly (the protocol is coin-free,
    so equivalence is purely a matter of reproducing the act/feedback
    branches), with ``wave_distance == -1`` standing in for "not yet
    reached".
    """

    def setup(self, ctx: ArrayContext) -> None:
        super().setup(ctx)
        self.wave_distance = np.full(ctx.n_nodes, -1, dtype=np.int64)
        self.wave_distance[ctx.source] = 0
        self.pulse_sent = np.zeros(ctx.n_nodes, dtype=bool)

    def act(self, round_index: int) -> RoundPlan:
        listen = self.wave_distance < 0
        transmit = ~listen & ~self.pulse_sent & (round_index >= self.wave_distance)
        self.pulse_sent |= transmit
        return RoundPlan(transmit=transmit, listen=listen)

    def on_feedback(self, round_index: int, channel: ChannelRound) -> None:
        # The CD beep predicate: anything but silence proves a neighbour
        # transmitted.  Without collision detection a collision is perceived
        # as silence, so only clean receipts count.
        beep = channel.clean | channel.collided if self.ctx.collision_detection else channel.clean
        newly = beep & (self.wave_distance < 0)
        self.wave_distance[newly] = round_index + 1

    def done(self) -> bool:
        return bool(self.pulse_sent.all())

    def wave_distances(self) -> tuple[int, ...]:
        """Per-node learned distances as plain ints (-1 where unreached)."""
        return tuple(self.wave_distance.tolist())

    def unsynchronized(self) -> tuple[int, ...]:
        """Nodes the wave never reached."""
        return tuple(np.nonzero(self.wave_distance < 0)[0].tolist())


@dataclass(frozen=True)
class BeepWaveResult:
    """Outcome of one successful :func:`run_beep_wave`."""

    network: str
    n: int
    seed: int
    budget: int
    rounds_run: int
    #: per-node distance learned from the wave (0 for the source).  Equal to
    #: the true BFS layers whenever collision detection is on.
    wave_distances: tuple[int, ...]
    sim: SimResult


def run_beep_wave(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    collision_detection: bool = True,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
) -> BeepWaveResult:
    """Run one synchronization wave from the network's source.

    Runs until every node has learned a distance and relayed the pulse, or
    the round budget (default: the deterministic
    :meth:`ProtocolParams.beepwave_rounds` for the source eccentricity)
    expires, in which case :class:`BroadcastFailure` is raised carrying the
    unsynchronized node set.  Pass ``collision_detection=False`` to watch
    the wave stall on any topology where relays collide.
    """
    params = params if params is not None else ProtocolParams.paper()
    bound = n_bound if n_bound is not None else network.n
    if budget is None:
        budget = params.beepwave_rounds(network.eccentricity())
    protocols = [BeepWaveProtocol() for _ in range(network.n)]
    engine = Engine(
        network,
        protocols,
        seed=seed,
        collision_detection=collision_detection,
        params=params,
        n_bound=bound,
        trace=trace,
    )
    sim = engine.run(budget, stop_when=lambda eng: all(p.finished() for p in protocols))
    unsynced = tuple(i for i, p in enumerate(protocols) if p.wave_distance is None)
    if unsynced:
        raise BroadcastFailure(
            f"beep wave on {network.name} (seed={seed}) left {len(unsynced)} of "
            f"{network.n} nodes unsynchronized after {budget} rounds"
            + ("" if collision_detection else " (collision detection was off)"),
            unsynced,
            sim=sim,
            budget=budget,
        )
    return BeepWaveResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=budget,
        rounds_run=sim.rounds_run,
        wave_distances=tuple(p.wave_distance for p in protocols),
        sim=sim,
    )
