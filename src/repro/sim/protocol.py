"""The node-protocol API.

Every algorithm from the paper is expressed as a :class:`Protocol`: one
instance per node, driven by the engine in lock-step rounds.  Each round the
engine calls :meth:`Protocol.act` on every node, resolves the radio channel,
and calls :meth:`Protocol.on_feedback` on every node that listened.  Nodes
have no shared state and no side channel — everything they learn arrives
through feedback, exactly as in the model of Section 1.1 of the paper.

A small registry maps protocol names to classes so sweeps and the CLI can
instantiate protocols by name.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError, SimulationError
from repro.params import ProtocolParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = [
    "ActionKind",
    "Action",
    "FeedbackKind",
    "Feedback",
    "NodeContext",
    "Protocol",
    "BroadcastProtocol",
    "register_protocol",
    "protocol_class",
    "available_protocols",
]


class ActionKind(enum.Enum):
    """What a node does with its radio in one round."""

    TRANSMIT = "transmit"
    LISTEN = "listen"
    SLEEP = "sleep"


@dataclass(frozen=True)
class Action:
    """A node's choice for one round; build via the class helpers."""

    kind: ActionKind
    message: Any = None

    @classmethod
    def transmit(cls, message: Any) -> "Action":
        if message is None:
            raise SimulationError("TRANSMIT requires a non-None message")
        return cls(ActionKind.TRANSMIT, message)

    @classmethod
    def listen(cls) -> "Action":
        return cls(ActionKind.LISTEN)

    @classmethod
    def sleep(cls) -> "Action":
        return cls(ActionKind.SLEEP)


class FeedbackKind(enum.Enum):
    """What a listening node hears.

    Without collision detection a collision is reported as ``SILENCE``
    (the model's collision-as-silence assumption); with collision detection
    the receiver can distinguish all three cases.
    """

    SILENCE = "silence"
    MESSAGE = "message"
    COLLISION = "collision"


@dataclass(frozen=True)
class Feedback:
    """Channel outcome delivered to one listening node for one round."""

    kind: FeedbackKind
    round_index: int
    message: Any = None
    sender: int | None = None


@dataclass(frozen=True)
class NodeContext:
    """Everything a node legitimately knows before round 0.

    Per the model: its own id, the public bound ``n_bound`` on the network
    size, whether it is the source, the shared parameters, whether the
    receivers have collision detection (Section 1.1 — the capability is part
    of the model, so nodes may rely on it), and a private random stream.
    Nodes do *not* get the topology.
    """

    node: int
    n_nodes: int
    n_bound: int
    is_source: bool
    params: ProtocolParams
    rng: "np.random.Generator" = field(repr=False)
    collision_detection: bool = True


class Protocol(ABC):
    """Base class for per-node protocol state machines.

    Lifecycle: the engine calls :meth:`setup` once before round 0, then for
    every round calls :meth:`act`, resolves the channel, and calls
    :meth:`on_feedback` on nodes that chose ``LISTEN``.
    """

    #: registry name, set by :func:`register_protocol`.
    name: str = ""

    def setup(self, ctx: NodeContext) -> None:
        """Bind this instance to a node; default stores ``ctx``."""
        self.ctx = ctx

    @abstractmethod
    def act(self, round_index: int) -> Action:
        """Return this node's action for the given round."""

    @abstractmethod
    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        """Receive the channel outcome of a round in which this node listened."""

    def finished(self) -> bool:
        """Whether this node considers its protocol complete (advisory)."""
        return False


class BroadcastProtocol(Protocol):
    """Base for single-message broadcast protocols.

    The payload is injected at construction — not patched onto the source
    after ``Engine.__init__`` has already run ``setup()`` — so a custom
    message never depends on call ordering.  Subclasses read
    ``self._injected_message`` in ``setup()`` (only the source actually
    holds it before round 0) and maintain an ``informed`` flag, which is
    the completion predicate shared by every ``run_*`` broadcast driver.
    """

    def __init__(self, message: Any = "broadcast") -> None:
        if message is None:
            raise ConfigurationError("the broadcast message must be non-None")
        self._injected_message = message


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, type[Protocol]] = {}


def register_protocol(name: str) -> Callable[[type[Protocol]], type[Protocol]]:
    """Class decorator registering a :class:`Protocol` under ``name``."""

    def deco(cls: type[Protocol]) -> type[Protocol]:
        if not (isinstance(cls, type) and issubclass(cls, Protocol)):
            raise SimulationError(f"{cls!r} is not a Protocol subclass")
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise SimulationError(f"protocol name {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def protocol_class(name: str) -> type[Protocol]:
    """Look up a registered protocol class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown protocol {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_protocols() -> tuple[str, ...]:
    """Names of all registered protocols, sorted."""
    return tuple(sorted(_REGISTRY))
