"""The Decay single-message broadcast protocol.

Decay (Bar-Yehuda, Goldreich, Itai 1992) is the contention-resolution
primitive the paper builds on: time is divided into phases of
``decay_phase_length`` rounds; at the start of each phase every informed
node becomes *active* and transmits the message, and after each transmission
it stays active for the next round with probability 1/2.  An uninformed
listener with ``d >= 1`` informed neighbours hears exactly one of them in
some round of the phase with constant probability, so running
``Theta(D + log n)`` phases delivers the message to every node w.h.p. —
``O((D + log n) log n)`` rounds in total, the bound the paper's
collision-detection algorithms improve upon.

Nodes that become informed mid-phase stay silent until the next phase
boundary, matching the analysis.  The protocol never uses collision
detection, so it behaves identically with and without it.

The protocol exists in both execution forms: :class:`DecayProtocol` is the
per-node object state machine, :class:`DecayArrayProtocol` holds every
node's state as arrays and is driven by the array engines.  Both consume
each node's private coin stream in the same order, so traces are bitwise
identical on shared seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.params import ProtocolParams
from repro.sim.core.array_protocol import (
    ArrayContext,
    BroadcastArrayProtocol,
    CoinDeck,
    RoundPlan,
    register_array_protocol,
)
from repro.sim.core.channel import ChannelRound
from repro.sim.core.stats import SimResult
from repro.sim.engine import run_until_all_informed
from repro.sim.faults import FaultSchedule
from repro.sim.protocol import (
    Action,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    register_protocol,
)
from repro.sim.runners import (
    BroadcastRun,
    BroadcastSpec,
    prepare_broadcast_engine,
    register_broadcast_spec,
)
from repro.sim.topology import RadioNetwork

__all__ = ["DecayProtocol", "DecayArrayProtocol", "DecayResult", "run_decay"]


@register_protocol("decay")
class DecayProtocol(BroadcastProtocol):
    """Per-node Decay state machine."""

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self.phase_length = ctx.params.decay_phase_length(ctx.n_bound)
        self.informed = ctx.is_source
        self.message: Any = self._injected_message if ctx.is_source else None
        self.informed_round: int | None = 0 if ctx.is_source else None
        self._active = False

    def act(self, round_index: int) -> Action:
        if round_index % self.phase_length == 0:
            # Phase boundary: every informed node (re-)joins the decay.
            self._active = self.informed
        if not self.informed:
            return Action.listen()
        if not self._active:
            return Action.sleep()
        # Stay active next round with probability 1/2 (decide now so the
        # whole phase consumes a deterministic number of coins per node).
        self._active = self.ctx.rng.random() < 0.5
        return Action.transmit(self.message)

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if feedback.kind is FeedbackKind.MESSAGE and not self.informed:
            self.informed = True
            self.message = feedback.message
            self.informed_round = round_index

    def finished(self) -> bool:
        return self.informed


@register_array_protocol("decay")
class DecayArrayProtocol(BroadcastArrayProtocol):
    """Whole-network Decay: all nodes' state as arrays, one act() per round.

    Mirrors :class:`DecayProtocol` exactly — same phase boundaries, same
    transmit set, and one coin per transmitting node per round drawn from
    that node's private stream — so the two forms produce identical traces
    on identical seeds.
    """

    def setup(self, ctx: ArrayContext) -> None:
        super().setup(ctx)
        self.phase_length = ctx.params.decay_phase_length(ctx.n_bound)
        self._init_broadcast_state(ctx)
        self._active = np.zeros(ctx.n_nodes, dtype=bool)
        self._coins = CoinDeck(ctx.streams)

    def act(self, round_index: int) -> RoundPlan:
        if round_index % self.phase_length == 0:
            np.copyto(self._active, self.informed)
        transmit = self.informed & self._active
        listen = ~self.informed
        transmitters = np.nonzero(transmit)[0]
        if transmitters.size:
            self._active[transmitters] = self._coins.draw(transmitters) < 0.5
        return RoundPlan(transmit=transmit, listen=listen)

    def on_feedback(self, round_index: int, channel: ChannelRound) -> None:
        # Every Decay transmission carries the payload, so any clean receipt
        # informs the listener.
        newly = channel.clean & ~self.informed
        if newly.any():
            self.informed |= newly
            self.informed_round[newly] = round_index


@dataclass(frozen=True)
class DecayResult:
    """Outcome of one successful :func:`run_decay`."""

    network: str
    n: int
    seed: int
    budget: int
    #: rounds executed until every node was informed.
    rounds_to_delivery: int
    #: per-node round at which the message arrived (0 for the source).
    informed_rounds: tuple[int, ...]
    #: rounds per Decay phase in this run.
    phase_length: int
    sim: SimResult

    @property
    def phases_to_delivery(self) -> int:
        return -(-self.rounds_to_delivery // self.phase_length)


def run_decay(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    collision_detection: bool = False,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    faults: FaultSchedule | None = None,
    sanitize: bool | None = None,
) -> DecayResult:
    """Broadcast ``message`` from the network's source via Decay.

    Runs until every node is informed or the round budget (default:
    :meth:`ProtocolParams.decay_broadcast_rounds` for the source
    eccentricity) expires, in which case :class:`BroadcastFailure` is raised
    carrying the undelivered node set.
    """
    prepared = prepare_broadcast_engine(
        DECAY_SPEC,
        network,
        params,
        seed=seed,
        message=message,
        collision_detection=collision_detection,
        n_bound=n_bound,
        budget=budget,
        trace=trace,
        faults=faults,
        sanitize=sanitize,
    )
    sim = run_until_all_informed(prepared.engine, prepared.budget, label="Decay", seed=seed)
    return DecayResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=prepared.budget,
        rounds_to_delivery=sim.rounds_run,
        informed_rounds=tuple(p.informed_round for p in prepared.protocols),
        phase_length=prepared.params.decay_phase_length(prepared.n_bound),
        sim=sim,
    )


def _decay_array_result(run: BroadcastRun) -> DecayResult:
    return DecayResult(
        network=run.network.name,
        n=run.network.n,
        seed=run.seed,
        budget=run.budget,
        rounds_to_delivery=run.sim.rounds_run,
        informed_rounds=run.protocol.informed_rounds(),
        phase_length=run.params.decay_phase_length(run.n_bound),
        sim=run.sim,
    )


DECAY_SPEC = register_broadcast_spec(
    BroadcastSpec(
        name="decay",
        label="Decay",
        runner=run_decay,
        protocol_factory=DecayProtocol,
        array_factory=DecayArrayProtocol,
        budget_for=lambda params, net, bound, options: params.decay_broadcast_rounds(
            net.eccentricity(), bound
        ),
        default_collision_detection=False,
        requires_collision_detection=False,
        build_result=_decay_array_result,
    )
)
