"""The Decay single-message broadcast protocol.

Decay (Bar-Yehuda, Goldreich, Itai 1992) is the contention-resolution
primitive the paper builds on: time is divided into phases of
``decay_phase_length`` rounds; at the start of each phase every informed
node becomes *active* and transmits the message, and after each transmission
it stays active for the next round with probability 1/2.  An uninformed
listener with ``d >= 1`` informed neighbours hears exactly one of them in
some round of the phase with constant probability, so running
``Theta(D + log n)`` phases delivers the message to every node w.h.p. —
``O((D + log n) log n)`` rounds in total, the bound the paper's
collision-detection algorithms improve upon.

Nodes that become informed mid-phase stay silent until the next phase
boundary, matching the analysis.  The protocol never uses collision
detection, so it behaves identically with and without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.params import ProtocolParams
from repro.sim.engine import Engine, SimResult, run_until_all_informed
from repro.sim.protocol import (
    Action,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    register_protocol,
)
from repro.sim.topology import RadioNetwork

__all__ = ["DecayProtocol", "DecayResult", "run_decay"]


@register_protocol("decay")
class DecayProtocol(BroadcastProtocol):
    """Per-node Decay state machine."""

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self.phase_length = ctx.params.decay_phase_length(ctx.n_bound)
        self.informed = ctx.is_source
        self.message: Any = self._injected_message if ctx.is_source else None
        self.informed_round: int | None = 0 if ctx.is_source else None
        self._active = False

    def act(self, round_index: int) -> Action:
        if round_index % self.phase_length == 0:
            # Phase boundary: every informed node (re-)joins the decay.
            self._active = self.informed
        if not self.informed:
            return Action.listen()
        if not self._active:
            return Action.sleep()
        # Stay active next round with probability 1/2 (decide now so the
        # whole phase consumes a deterministic number of coins per node).
        self._active = self.ctx.rng.random() < 0.5
        return Action.transmit(self.message)

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if feedback.kind is FeedbackKind.MESSAGE and not self.informed:
            self.informed = True
            self.message = feedback.message
            self.informed_round = round_index

    def finished(self) -> bool:
        return self.informed


@dataclass(frozen=True)
class DecayResult:
    """Outcome of one successful :func:`run_decay`."""

    network: str
    n: int
    seed: int
    budget: int
    #: rounds executed until every node was informed.
    rounds_to_delivery: int
    #: per-node round at which the message arrived (0 for the source).
    informed_rounds: tuple[int, ...]
    #: rounds per Decay phase in this run.
    phase_length: int
    sim: SimResult

    @property
    def phases_to_delivery(self) -> int:
        return -(-self.rounds_to_delivery // self.phase_length)


def run_decay(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    collision_detection: bool = False,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
) -> DecayResult:
    """Broadcast ``message`` from the network's source via Decay.

    Runs until every node is informed or the round budget (default:
    :meth:`ProtocolParams.decay_broadcast_rounds` for the source
    eccentricity) expires, in which case :class:`BroadcastFailure` is raised
    carrying the undelivered node set.
    """
    if message is None:
        raise ConfigurationError("run_decay needs a non-None message to broadcast")
    params = params if params is not None else ProtocolParams.paper()
    bound = n_bound if n_bound is not None else network.n
    if budget is None:
        budget = params.decay_broadcast_rounds(network.eccentricity(), bound)
    protocols = [DecayProtocol(message=message) for _ in range(network.n)]
    engine = Engine(
        network,
        protocols,
        seed=seed,
        collision_detection=collision_detection,
        params=params,
        n_bound=bound,
        trace=trace,
    )
    sim = run_until_all_informed(engine, budget, label="Decay", seed=seed)
    return DecayResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=budget,
        rounds_to_delivery=sim.rounds_run,
        informed_rounds=tuple(p.informed_round for p in protocols),
        phase_length=params.decay_phase_length(bound),
        sim=sim,
    )
