"""Round-synchronous radio-network simulation engine.

The engine drives one :class:`~repro.sim.protocol.Protocol` instance per
node through lock-step rounds and resolves the single-hop radio channel
with vectorized numpy kernels:

* collect every node's :class:`~repro.sim.protocol.Action`;
* ``counts = A @ transmit_mask`` gives, for every node, how many of its
  neighbours transmitted this round;
* a listener with count 0 hears silence, with count 1 receives the unique
  neighbour's message, with count >= 2 suffers a collision — reported as
  ``COLLISION`` when the run models collision detection and as ``SILENCE``
  otherwise (collision-as-silence);
* transmitters hear nothing (half-duplex radios, as in the paper's model).

Per-round ground-truth statistics (transmitter set, deliveries, collisions)
are always collected in aggregate and optionally per round (``trace=True``)
so tests and analyses can observe collision events the nodes themselves may
not be able to see.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BroadcastFailure, SimulationError
from repro.params import ProtocolParams
from repro.sim.protocol import (
    Action,
    ActionKind,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
)
from repro.sim.rng import SeededStreams
from repro.sim.topology import RadioNetwork

__all__ = ["Engine", "RoundStats", "SimResult", "run_until_all_informed"]


@dataclass(frozen=True)
class RoundStats:
    """Omniscient record of one round (ground truth, not node knowledge)."""

    round_index: int
    transmitters: tuple[int, ...]
    #: (receiver, sender) pairs that cleanly received this round.
    deliveries: tuple[tuple[int, int], ...]
    #: listening nodes with >= 2 transmitting neighbours, regardless of
    #: whether the run models collision detection.
    collisions: tuple[int, ...]


@dataclass(frozen=True)
class SimResult:
    """Outcome of :meth:`Engine.run`."""

    rounds_run: int
    stopped_early: bool
    total_transmissions: int
    total_deliveries: int
    total_collisions: int
    #: per-round records; empty unless the engine was built with ``trace=True``.
    history: tuple[RoundStats, ...] = field(default=())


class Engine:
    """Synchronous simulator for one protocol run on one network."""

    def __init__(
        self,
        network: RadioNetwork,
        protocols: Sequence[Protocol],
        *,
        seed: int = 0,
        collision_detection: bool = True,
        params: ProtocolParams | None = None,
        n_bound: int | None = None,
        trace: bool = False,
    ):
        if len(protocols) != network.n:
            raise SimulationError(
                f"need exactly one protocol per node: got {len(protocols)} "
                f"protocols for {network.n} nodes"
            )
        if len(set(map(id, protocols))) != len(protocols):
            raise SimulationError("the same Protocol instance was given for two nodes")
        if n_bound is not None and n_bound < network.n:
            raise SimulationError(
                f"n_bound {n_bound} is below the actual network size {network.n}"
            )
        self.network = network
        self.protocols = tuple(protocols)
        self.collision_detection = collision_detection
        self.params = params if params is not None else ProtocolParams.paper()
        self.n_bound = n_bound if n_bound is not None else network.n
        self.trace = trace
        self.streams = SeededStreams(seed, network.n)
        self._adj = network.adjacency_matrix().astype(np.int32)
        self._round = 0
        self._total_transmissions = 0
        self._total_deliveries = 0
        self._total_collisions = 0
        self._history: list[RoundStats] = []
        for node, proto in enumerate(self.protocols):
            proto.setup(
                NodeContext(
                    node=node,
                    n_nodes=network.n,
                    n_bound=self.n_bound,
                    is_source=(node == network.source),
                    params=self.params,
                    rng=self.streams.nodes[node],
                    collision_detection=collision_detection,
                )
            )

    @property
    def round_index(self) -> int:
        """Index of the next round to be executed."""
        return self._round

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def step(self) -> RoundStats:
        """Execute one round and return its omniscient record."""
        r = self._round
        n = self.network.n
        actions: list[Action] = []
        transmit = np.zeros(n, dtype=bool)
        listen = np.zeros(n, dtype=bool)
        for node, proto in enumerate(self.protocols):
            action = proto.act(r)
            if not isinstance(action, Action):
                raise SimulationError(
                    f"protocol at node {node} returned {action!r} from act(); "
                    "expected an Action"
                )
            if action.kind is ActionKind.TRANSMIT:
                if action.message is None:
                    raise SimulationError(
                        f"node {node} transmitted a None message in round {r}"
                    )
                transmit[node] = True
            elif action.kind is ActionKind.LISTEN:
                listen[node] = True
            actions.append(action)

        counts = self._adj @ transmit
        t_idx = np.nonzero(transmit)[0]
        clean = np.nonzero(listen & (counts == 1))[0]
        collided = np.nonzero(listen & (counts >= 2))[0]
        silent = np.nonzero(listen & (counts == 0))[0]

        deliveries: list[tuple[int, int]] = []
        if clean.size:
            # For each clean receiver, its unique transmitting neighbour.
            senders = t_idx[self._adj[np.ix_(clean, t_idx)].argmax(axis=1)]
            for recv, send in zip(clean.tolist(), senders.tolist()):
                deliveries.append((recv, send))
                self.protocols[recv].on_feedback(
                    r,
                    Feedback(
                        FeedbackKind.MESSAGE,
                        round_index=r,
                        message=actions[send].message,
                        sender=send,
                    ),
                )
        collision_kind = (
            FeedbackKind.COLLISION if self.collision_detection else FeedbackKind.SILENCE
        )
        for recv in collided.tolist():
            self.protocols[recv].on_feedback(
                r, Feedback(collision_kind, round_index=r)
            )
        for recv in silent.tolist():
            self.protocols[recv].on_feedback(
                r, Feedback(FeedbackKind.SILENCE, round_index=r)
            )

        stats = RoundStats(
            round_index=r,
            transmitters=tuple(t_idx.tolist()),
            deliveries=tuple(deliveries),
            collisions=tuple(collided.tolist()),
        )
        self._round += 1
        self._total_transmissions += int(t_idx.size)
        self._total_deliveries += len(deliveries)
        self._total_collisions += int(collided.size)
        if self.trace:
            self._history.append(stats)
        return stats

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> SimResult:
        """Run up to ``max_rounds`` rounds, stopping early if ``stop_when(engine)``.

        The predicate is evaluated before the first round and after every
        round, so a vacuously-satisfied goal costs zero rounds.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        # Snapshot so the result covers exactly this run() call, even when
        # step() or a previous run() already advanced the engine.
        start_round = self._round
        start_transmissions = self._total_transmissions
        start_deliveries = self._total_deliveries
        start_collisions = self._total_collisions
        start_history = len(self._history)
        stopped_early = False
        if stop_when is not None and stop_when(self):
            stopped_early = True
        else:
            for _ in range(max_rounds):
                self.step()
                if stop_when is not None and stop_when(self):
                    stopped_early = True
                    break
        return SimResult(
            rounds_run=self._round - start_round,
            stopped_early=stopped_early,
            total_transmissions=self._total_transmissions - start_transmissions,
            total_deliveries=self._total_deliveries - start_deliveries,
            total_collisions=self._total_collisions - start_collisions,
            history=tuple(self._history[start_history:]),
        )


def run_until_all_informed(engine: Engine, budget: int, *, label: str, seed: int) -> SimResult:
    """The shared tail of every single-message broadcast driver.

    Runs ``engine`` until every protocol's ``informed`` flag is set (the
    :class:`~repro.sim.protocol.BroadcastProtocol` completion predicate) or
    the round ``budget`` expires, in which case :class:`BroadcastFailure`
    is raised carrying the undelivered node set.
    """
    protocols = engine.protocols
    sim = engine.run(budget, stop_when=lambda eng: all(p.informed for p in protocols))
    undelivered = tuple(i for i, p in enumerate(protocols) if not p.informed)
    if undelivered:
        raise BroadcastFailure(
            f"{label} on {engine.network.name} (seed={seed}) left "
            f"{len(undelivered)} of {engine.network.n} nodes uninformed "
            f"after {budget} rounds",
            undelivered,
        )
    return sim
