"""Round-synchronous radio-network simulation engine (object path).

The engine drives one :class:`~repro.sim.protocol.Protocol` instance per
node through lock-step rounds.  Since the introduction of the execution
core it is a thin shell: the per-node objects are wrapped in an
:class:`~repro.sim.core.adapter.ObjectProtocolAdapter` and driven by the
same :class:`~repro.sim.core.batch.ArrayEngine` round loop and channel
kernel the array-native path uses:

* collect every node's :class:`~repro.sim.protocol.Action`;
* ``counts = transmit @ A`` gives, for every node, how many of its
  neighbours transmitted this round;
* a listener with count 0 hears silence, with count 1 receives the unique
  neighbour's message, with count >= 2 suffers a collision — reported as
  ``COLLISION`` when the run models collision detection and as ``SILENCE``
  otherwise (collision-as-silence);
* transmitters hear nothing (half-duplex radios, as in the paper's model).

Per-round ground-truth statistics (transmitter set, deliveries, collisions)
are always collected in aggregate and optionally per round (``trace=True``)
so tests and analyses can observe collision events the nodes themselves may
not be able to see.  Because both paths share one round loop, the object
path and pure-array protocols produce bitwise-identical records on the
same seeds; this object path remains the reference and the home of
arbitrary per-node protocol objects.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import BroadcastFailure, SimulationError
from repro.params import ProtocolParams
from repro.sim.core.adapter import ObjectProtocolAdapter
from repro.sim.core.batch import ArrayEngine, RoundObserver
from repro.sim.core.channel import round_stats
from repro.sim.core.stats import RoundStats, RunTelemetry, SimResult
from repro.sim.faults import FaultSchedule
from repro.sim.protocol import Protocol
from repro.sim.rng import SeededStreams
from repro.sim.topology import RadioNetwork

__all__ = ["Engine", "RoundStats", "SimResult", "run_until_all_informed"]


class Engine:
    """Synchronous simulator for one object-protocol run on one network.

    All round-loop semantics (early stop, counters, trace history) live in
    the wrapped :class:`ArrayEngine`; this class adds the object-specific
    contract: per-node protocol validation, an always-materialized
    :class:`RoundStats` from :meth:`step`, and the classic attribute
    surface (``protocols``, ``streams``, ...).
    """

    def __init__(
        self,
        network: RadioNetwork,
        protocols: Sequence[Protocol],
        *,
        seed: int = 0,
        collision_detection: bool = True,
        params: ProtocolParams | None = None,
        n_bound: int | None = None,
        trace: bool = False,
        observers: Sequence[RoundObserver] | None = None,
        faults: FaultSchedule | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if len(protocols) != network.n:
            raise SimulationError(
                f"need exactly one protocol per node: got {len(protocols)} "
                f"protocols for {network.n} nodes"
            )
        if len(set(map(id, protocols))) != len(protocols):
            raise SimulationError("the same Protocol instance was given for two nodes")
        self.protocols = tuple(protocols)
        self._core = ArrayEngine(
            network,
            ObjectProtocolAdapter(self.protocols),
            seed=seed,
            collision_detection=collision_detection,
            params=params,
            n_bound=n_bound,
            trace=trace,
            observers=observers,
            faults=faults,
            sanitize=sanitize,
        )

    # Classic attribute surface, delegated to the core.
    @property
    def network(self) -> RadioNetwork:
        return self._core.network

    @property
    def collision_detection(self) -> bool:
        return self._core.collision_detection

    @property
    def params(self) -> ProtocolParams:
        return self._core.params

    @property
    def n_bound(self) -> int:
        return self._core.n_bound

    @property
    def trace(self) -> bool:
        return self._core.trace

    @property
    def streams(self) -> SeededStreams:
        return self._core.streams

    @property
    def round_index(self) -> int:
        """Index of the next round to be executed."""
        return self._core.round_index

    @property
    def sanitized(self) -> bool:
        """Whether the wrapped core runs with the runtime sanitizer attached."""
        return self._core.sanitized

    def telemetry(self) -> RunTelemetry:
        """Wall-clock observables of the wrapped round loop so far."""
        return self._core.telemetry()

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def step(self) -> RoundStats:
        """Execute one round and return its omniscient record."""
        core = self._core
        r = core.round_index
        plan = core.begin_round()
        channel = core.resolve_round()
        # complete_round materializes the record itself when tracing or
        # when observers are installed.  The fallback builds it from the
        # channel the radios *perceived* (faults applied), which is the
        # raw one on fault-free runs — so traced and untraced runs agree.
        stats = core.complete_round(channel)
        if stats is not None:
            return stats
        perceived = core.last_channel
        if perceived is None:
            raise SimulationError("array core has no completed channel round")
        return round_stats(r, plan.transmit, perceived)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> SimResult:
        """Run up to ``max_rounds`` rounds, stopping early if ``stop_when(engine)``.

        The predicate is evaluated before the first round and after every
        round, so a vacuously-satisfied goal costs zero rounds.
        """
        predicate = None if stop_when is None else (lambda _core: stop_when(self))
        return self._core.run(max_rounds, stop_when=predicate)


def run_until_all_informed(engine: Engine, budget: int, *, label: str, seed: int) -> SimResult:
    """The shared tail of every single-message broadcast driver.

    Runs ``engine`` until every protocol's ``informed`` flag is set (the
    :class:`~repro.sim.protocol.BroadcastProtocol` completion predicate) or
    the round ``budget`` expires, in which case :class:`BroadcastFailure`
    is raised carrying the undelivered node set.
    """
    protocols = engine.protocols
    lacking = [
        (node, type(p).__name__)
        for node, p in enumerate(protocols)
        if not hasattr(p, "informed")
    ]
    if lacking:
        node, cls = lacking[0]
        raise SimulationError(
            f"run_until_all_informed needs broadcast protocols with an 'informed' "
            f"flag (see BroadcastProtocol), but {len(lacking)} of {len(protocols)} "
            f"lack one (first: {cls} at node {node})"
        )
    sim = engine.run(budget, stop_when=lambda eng: all(p.informed for p in protocols))
    undelivered = tuple(i for i, p in enumerate(protocols) if not p.informed)
    if undelivered:
        raise BroadcastFailure(
            f"{label} on {engine.network.name} (seed={seed}) left "
            f"{len(undelivered)} of {engine.network.n} nodes uninformed "
            f"after {budget} rounds",
            undelivered,
            sim=sim,
            budget=budget,
        )
    return sim
