"""Seeded, per-node random streams.

Every source of randomness in a simulation run is derived from one integer
seed through :class:`numpy.random.SeedSequence` spawning, so a run is fully
reproducible: same seed, same topology, same protocol code => bit-identical
round-by-round behaviour.  Each node owns an independent stream (nodes in a
radio network cannot share coins), and the engine owns one extra stream for
anything that is not attributable to a single node.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeededStreams", "node_streams", "stream"]


def stream(seed: int, *key: int) -> np.random.Generator:
    """Return one generator for ``seed``, domain-separated by ``key``.

    Different ``key`` tuples under the same seed yield statistically
    independent streams; topology generators use this so that building a
    graph never consumes the coins the protocol run will use.
    """
    ss = np.random.SeedSequence(seed, spawn_key=tuple(key))
    return np.random.Generator(np.random.PCG64(ss))


def node_streams(seed: int, count: int) -> tuple[np.random.Generator, ...]:
    """Return ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return tuple(np.random.Generator(np.random.PCG64(c)) for c in children)


class SeededStreams:
    """The full complement of streams used by one :class:`~repro.sim.engine.Engine` run.

    ``nodes[i]`` is node *i*'s private stream; ``engine`` is reserved for the
    simulator itself (e.g. future adversarial channel noise) so that adding
    engine-side randomness never perturbs node-side coin flips.
    """

    def __init__(self, seed: int, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        root = np.random.SeedSequence(seed)
        children = root.spawn(n_nodes + 1)
        self.seed = seed
        self.engine = np.random.Generator(np.random.PCG64(children[0]))
        self.nodes = tuple(np.random.Generator(np.random.PCG64(c)) for c in children[1:])

    def __len__(self) -> int:
        return len(self.nodes)
