"""Radio-network topologies.

A :class:`RadioNetwork` is an undirected, connected graph with a designated
broadcast source.  The engine only ever sees the adjacency structure; all
the generators below exist so that protocols can be exercised on the graph
families the paper's guarantees must survive: long paths (diameter-bound),
stars and cliques (contention-bound), grids and unit-disk graphs (the
geometric radio setting), sparse random graphs, and "dumbbell" graphs whose
narrow bridge stresses progress through a single bottleneck edge.

Every generator validates its output (connected, source present, no self
loops) and is deterministic given its seed.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.sim.rng import stream

__all__ = [
    "RadioNetwork",
    "line",
    "ring",
    "star",
    "grid2d",
    "gnp",
    "dumbbell",
    "unit_disk",
    "from_spec",
    "TOPOLOGY_NAMES",
]


class RadioNetwork:
    """An undirected connected graph plus a broadcast source node.

    Construction validates the structure once; afterwards the instance is
    immutable and caches the derived views the engine and the budgets need
    (dense adjacency matrix, BFS layers, eccentricity, diameter).
    """

    def __init__(
        self,
        neighbors: Sequence[Iterable[int]],
        *,
        source: int = 0,
        name: str = "custom",
    ) -> None:
        n = len(neighbors)
        if n < 1:
            raise TopologyError("a RadioNetwork needs at least one node")
        if not 0 <= source < n:
            raise TopologyError(f"source {source} out of range for {n} nodes")
        adj: list[tuple[int, ...]] = []
        for u, nbrs in enumerate(neighbors):
            seen = set()
            for v in nbrs:
                v = int(v)
                if v == u:
                    raise TopologyError(f"self-loop at node {u}")
                if not 0 <= v < n:
                    raise TopologyError(f"edge ({u}, {v}) out of range for {n} nodes")
                seen.add(v)
            adj.append(tuple(sorted(seen)))
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                if u not in adj[v]:
                    raise TopologyError(f"edge ({u}, {v}) is not symmetric")
        self._neighbors = tuple(adj)
        self._n = n
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._finalize(source, name)

    @classmethod
    def from_edges(
        cls,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        *,
        source: int = 0,
        name: str = "custom",
    ) -> "RadioNetwork":
        """Build a network from an undirected edge list, fully vectorized.

        Each ``(u[i], v[i])`` pair contributes the edge in both directions;
        duplicate pairs are deduplicated.  Provides the same guarantees as
        the list-of-neighbours constructor (range, self-loop, connectivity
        validation) but with array operations and no per-node Python loop
        or n×n intermediate — this is the constructor the sparse-native
        random generators use at large n.
        """
        if n < 1:
            raise TopologyError("a RadioNetwork needs at least one node")
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise TopologyError(
                f"edge endpoint arrays must have matching length, got "
                f"{u.size} and {v.size}"
            )
        if u.size:
            endpoints = np.concatenate([u, v])
            out_of_range = (endpoints < 0) | (endpoints >= n)
            if out_of_range.any():
                bad = int(endpoints[out_of_range][0])
                raise TopologyError(f"edge endpoint {bad} out of range for {n} nodes")
            loops = u == v
            if loops.any():
                raise TopologyError(
                    f"self-loop at node {int(u[np.nonzero(loops)[0][0]])}"
                )
        # Encode directed pairs as u*n + v; unique() both deduplicates and
        # sorts them into CSR order (row-major, ascending neighbours).
        enc = np.unique(np.concatenate([u * n + v, v * n + u]))
        rows, cols = np.divmod(enc, n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        net = object.__new__(cls)
        net._n = n
        net._neighbors = tuple(
            tuple(row.tolist()) for row in np.split(cols, indptr[1:-1])
        )
        indptr.setflags(write=False)
        cols.setflags(write=False)
        net._csr = (indptr, cols)
        net._finalize(source, name)
        return net

    def _finalize(self, source: int, name: str) -> None:
        """Shared constructor tail: caches, source check, connectivity check."""
        n = self._n
        if not 0 <= source < n:
            raise TopologyError(f"source {source} out of range for {n} nodes")
        self._source = source
        self._name = name
        self._adjacency: np.ndarray | None = None
        self._adjacency_key: bytes | None = None
        self._layers: dict[int, tuple[tuple[int, ...], ...]] = {}
        self._diameter: int | None = None
        if n > 1:
            reached = sum(len(layer) for layer in self.bfs_layers(source))
            if reached != n:
                raise TopologyError(
                    f"graph is disconnected: {n - reached} of {n} nodes "
                    f"unreachable from source {source}"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def source(self) -> int:
        return self._source

    @property
    def name(self) -> str:
        return self._name

    def neighbors(self, v: int) -> tuple[int, ...]:
        return self._neighbors[v]

    def degree(self, v: int) -> int:
        return len(self._neighbors[v])

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._neighbors) // 2

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric 0/1 matrix, cached; the engine's channel kernel.

        The returned array is the cache itself, marked read-only: a caller
        mutating it would silently corrupt every later run (and the batch
        engine's topology grouping), so writes raise ``ValueError``.
        """
        if self._adjacency is None:
            mat = np.zeros((self._n, self._n), dtype=np.int8)
            for u, nbrs in enumerate(self._neighbors):
                for v in nbrs:
                    mat[u, v] = 1
            mat.setflags(write=False)
            self._adjacency = mat
        return self._adjacency

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached CSR neighbour arrays ``(indptr, indices)``, read-only int64.

        ``indices[indptr[v]:indptr[v+1]]`` lists node ``v``'s neighbours in
        ascending order.  This is the sparse channel backend's operand;
        it is built straight from the neighbour lists, so requesting it
        never materializes the dense n×n matrix.  Both arrays are the cache
        itself, marked read-only for the same reason as
        :meth:`adjacency_matrix`.
        """
        if self._csr is None:
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum([len(nbrs) for nbrs in self._neighbors], out=indptr[1:])
            indices = np.fromiter(
                (w for nbrs in self._neighbors for w in nbrs),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._csr = (indptr, indices)
        return self._csr

    def adjacency_key(self) -> bytes:
        """Cached byte serialization of the CSR structure — a hashable topology key.

        The batch engine groups same-topology instances by this key; basing
        it on the CSR arrays (with the node count prefixed to keep the
        encoding unambiguous) keeps it O(edges) and dense-matrix-free, so
        grouping huge sparse graphs never allocates n² bytes.
        """
        if self._adjacency_key is None:
            indptr, indices = self.csr()
            self._adjacency_key = (
                np.int64(self._n).tobytes() + indptr.tobytes() + indices.tobytes()
            )
        return self._adjacency_key

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def bfs_layers(self, root: int | None = None) -> tuple[tuple[int, ...], ...]:
        """Nodes grouped by hop distance from ``root`` (default: the source).

        ``layers[d]`` holds every node at distance exactly ``d``; unreachable
        nodes (only possible during construction) are absent.
        """
        root = self._source if root is None else root
        if not 0 <= root < self._n:
            raise TopologyError(f"root {root} out of range for {self._n} nodes")
        if root in self._layers:
            return self._layers[root]
        dist = [-1] * self._n
        dist[root] = 0
        queue = deque([root])
        layers: list[list[int]] = [[root]]
        while queue:
            u = queue.popleft()
            for v in self._neighbors[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    if dist[v] == len(layers):
                        layers.append([])
                    layers[dist[v]].append(v)
                    queue.append(v)
        result = tuple(tuple(layer) for layer in layers)
        self._layers[root] = result
        return result

    def eccentricity(self, root: int | None = None) -> int:
        """Largest hop distance from ``root`` (default: the source)."""
        return len(self.bfs_layers(root)) - 1

    def diameter(self) -> int:
        """Exact diameter via BFS from every node (cached; n is small)."""
        if self._diameter is None:
            self._diameter = max(self.eccentricity(v) for v in range(self._n))
        return self._diameter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RadioNetwork(name={self._name!r}, n={self._n}, "
            f"edges={self.num_edges}, source={self._source})"
        )


# ---------------------------------------------------------------------- #
# Deterministic families
# ---------------------------------------------------------------------- #
def _check_size(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise TopologyError(f"need at least {minimum} nodes, got {n}")


def line(n: int, *, source: int = 0) -> RadioNetwork:
    """Path 0 - 1 - ... - (n-1); the diameter-stress topology."""
    _check_size(n)
    nbrs = [[] for _ in range(n)]
    for u in range(n - 1):
        nbrs[u].append(u + 1)
        nbrs[u + 1].append(u)
    return RadioNetwork(nbrs, source=source, name=f"line-{n}")


def ring(n: int, *, source: int = 0) -> RadioNetwork:
    """Cycle on ``n`` nodes (n >= 3)."""
    _check_size(n, 3)
    nbrs = [[(u - 1) % n, (u + 1) % n] for u in range(n)]
    return RadioNetwork(nbrs, source=source, name=f"ring-{n}")


def star(n: int, *, source: int = 0) -> RadioNetwork:
    """Node 0 is the hub, nodes 1..n-1 are leaves; the contention-stress case."""
    _check_size(n, 2)
    nbrs = [list(range(1, n))] + [[0] for _ in range(n - 1)]
    return RadioNetwork(nbrs, source=source, name=f"star-{n}")


def grid2d(
    rows: int | None = None,
    cols: int | None = None,
    *,
    n: int | None = None,
    source: int = 0,
) -> RadioNetwork:
    """4-neighbour grid.

    Either pass explicit ``rows``/``cols``, or pass ``n`` alone to get a
    near-square grid truncated to exactly ``n`` nodes in row-major order —
    truncation keeps the graph connected.
    """
    if n is not None:
        if rows is not None or cols is not None:
            raise TopologyError("pass either rows/cols or n, not both")
        _check_size(n)
        rows = max(1, int(math.isqrt(n)))
        cols = math.ceil(n / rows)
    else:
        if rows is None:
            raise TopologyError("grid2d needs rows/cols or n")
        cols = rows if cols is None else cols
        if rows < 1 or cols < 1:
            raise TopologyError(f"grid needs positive dimensions, got {rows}x{cols}")
        n = rows * cols
    nbrs: list[list[int]] = [[] for _ in range(n)]
    for idx in range(n):
        r, c = divmod(idx, cols)
        for dr, dc in ((0, 1), (1, 0)):
            rr, cc = r + dr, c + dc
            jdx = rr * cols + cc
            if rr < rows and cc < cols and jdx < n:
                nbrs[idx].append(jdx)
                nbrs[jdx].append(idx)
    return RadioNetwork(nbrs, source=source, name=f"grid-{rows}x{cols}-n{n}")


def dumbbell(clique_size: int, bridge_length: int = 4, *, source: int = 0) -> RadioNetwork:
    """Two cliques of ``clique_size`` nodes joined by a path of ``bridge_length`` nodes.

    High contention inside the clusters, single-edge bottleneck between
    them — the hardest mix for a contention-resolution broadcast.
    """
    if clique_size < 2:
        raise TopologyError(f"clique_size must be >= 2, got {clique_size}")
    if bridge_length < 0:
        raise TopologyError(f"bridge_length must be >= 0, got {bridge_length}")
    n = 2 * clique_size + bridge_length
    nbrs: list[set[int]] = [set() for _ in range(n)]
    left = range(0, clique_size)
    right = range(clique_size + bridge_length, n)
    for grp in (left, right):
        for u in grp:
            for v in grp:
                if u < v:
                    nbrs[u].add(v)
                    nbrs[v].add(u)
    chain = [clique_size - 1, *range(clique_size, clique_size + bridge_length), clique_size + bridge_length]
    for u, v in zip(chain, chain[1:]):
        nbrs[u].add(v)
        nbrs[v].add(u)
    return RadioNetwork(
        [sorted(s) for s in nbrs],
        source=source,
        name=f"dumbbell-{clique_size}+{bridge_length}+{clique_size}",
    )


# ---------------------------------------------------------------------- #
# Random families
# ---------------------------------------------------------------------- #
_RANDOM_TRIES = 50


def _sample_distinct(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """A uniform ``count``-subset of ``range(population)``, as a sorted array.

    Vectorized rejection sampling: draw with replacement in passes and keep
    the first ``count`` distinct values — first-appearance order is exactly
    the sequential draw-until-new process, so the kept set is a uniform
    ``count``-subset.  Rejection hits the coupon-collector tail when
    ``count`` approaches ``population``, so dense requests sample the
    *complement* instead (a uniform complement yields a uniform subset);
    either way the cost stays O(min(count, population - count)) draws.
    """
    if 2 * count > population:
        dropped = _sample_distinct(rng, population, population - count)
        keep = np.ones(population, dtype=bool)
        keep[dropped] = False
        return np.nonzero(keep)[0]
    picked = np.empty(0, dtype=np.int64)
    while picked.size < count:
        need = count - picked.size
        draw = rng.integers(0, population, size=need + (need >> 2) + 16)
        merged = np.concatenate([picked, draw])
        _, first_seen = np.unique(merged, return_index=True)
        picked = merged[np.sort(first_seen)][:count]
    return np.sort(picked)


def gnp(n: int, p: float, *, seed: int = 0, source: int = 0, max_tries: int = _RANDOM_TRIES) -> RadioNetwork:
    """Erdős–Rényi G(n, p), resampled until connected (or :class:`TopologyError`).

    Edge-sampled: the edge count is drawn from ``Binomial(C(n,2), p)`` and
    then that many distinct vertex pairs are sampled uniformly — the same
    G(n, p) distribution as per-pair Bernoulli coins, but Θ(n + edges)
    memory instead of an n×n Bernoulli matrix, so sparse graphs scale past
    the dense wall.  (The per-seed graphs differ from the dense sampler
    this replaced; the pinned regressions were updated accordingly.)
    """
    _check_size(n)
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {p}")
    if not 0 <= source < n:
        raise TopologyError(f"source {source} out of range for {n} nodes")
    total_pairs = n * (n - 1) // 2
    # rowstart[a] = number of pairs (i, j) with i < j and i < a, i.e. the
    # linearized-index offset where row a's pairs begin.
    firsts = np.arange(n, dtype=np.int64)
    rowstart = firsts * (2 * n - firsts - 1) // 2
    for attempt in range(max_tries):
        rng = stream(seed, 1, attempt)
        edge_count = (
            total_pairs if p == 1.0 else int(rng.binomial(total_pairs, p))
        )
        if edge_count == total_pairs:
            picked = np.arange(total_pairs, dtype=np.int64)  # complete graph
        else:
            picked = _sample_distinct(rng, total_pairs, edge_count)
        i = np.searchsorted(rowstart, picked, side="right") - 1
        j = picked - rowstart[i] + i + 1
        try:
            net = RadioNetwork.from_edges(
                n, i, j, source=source, name=f"gnp-{n}-p{p:.3g}"
            )
        except TopologyError:
            continue
        return net
    raise TopologyError(
        f"G({n}, {p}) was disconnected in {max_tries} attempts; increase p"
    )


def _close_pairs(pts: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Directed index pairs ``(i, j)``, ``i != j``, within ``radius`` of each other.

    Cell binning: points are bucketed into a grid of radius-sized cells, so
    any two points within ``radius`` sit in the same or in adjacent cells.
    Sorting points by cell id makes each of the three cell *columns* around
    a point one contiguous run, so candidate pairs come out of three
    vectorized range expansions instead of the all-pairs delta tensor.
    The distance predicate is evaluated with the same expression shape
    (dx² + dy² <= r²) as the dense version, keeping seeds-to-graph
    behaviour bit-identical.
    """
    n = pts.shape[0]
    cells = max(1, math.ceil(1.0 / radius))
    cx = np.minimum((pts[:, 0] / radius).astype(np.int64), cells - 1)
    cy = np.minimum((pts[:, 1] / radius).astype(np.int64), cells - 1)
    cid = cx * cells + cy
    order = np.argsort(cid, kind="stable")
    cid_sorted = cid[order]
    lo_row = cx * cells + np.maximum(cy - 1, 0)
    hi_row = cx * cells + np.minimum(cy + 1, cells - 1)
    all_left: list[np.ndarray] = []
    all_right: list[np.ndarray] = []
    r_sq = radius * radius
    for dx in (-1, 0, 1):
        shift = dx * cells
        # Out-of-range columns encode to ids below 0 or above cells²-1, so
        # searchsorted collapses them to empty ranges with no special case.
        lo = np.searchsorted(cid_sorted, lo_row + shift, side="left")
        hi = np.searchsorted(cid_sorted, hi_row + shift, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            continue
        left = np.repeat(np.arange(n, dtype=np.int64), counts)
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        right = order[np.arange(total, dtype=np.int64) - offsets + np.repeat(lo, counts)]
        keep = left != right
        dxs = pts[left, 0] - pts[right, 0]
        dys = pts[left, 1] - pts[right, 1]
        keep &= (dxs * dxs + dys * dys) <= r_sq
        all_left.append(left[keep])
        all_right.append(right[keep])
    if not all_left:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(all_left), np.concatenate(all_right)


def unit_disk(
    n: int,
    radius: float,
    *,
    seed: int = 0,
    source: int = 0,
    max_tries: int = _RANDOM_TRIES,
) -> RadioNetwork:
    """Unit-disk graph: ``n`` points in the unit square, edge iff distance <= radius.

    Cell-binned (:func:`_close_pairs`): only points in the same or adjacent
    radius-sized cells are compared, so building the graph costs
    Θ(n + candidate pairs) instead of the ~3·n² float64 the all-pairs delta
    tensor used to peak at.  The point sampling, edge predicate, and
    retry-until-connected semantics are unchanged, so every seed maps to
    exactly the same graph as the all-pairs version.
    """
    _check_size(n)
    if radius <= 0:
        raise TopologyError(f"radius must be positive, got {radius}")
    if not 0 <= source < n:
        raise TopologyError(f"source {source} out of range for {n} nodes")
    for attempt in range(max_tries):
        rng = stream(seed, 2, attempt)
        pts = rng.random((n, 2))
        left, right = _close_pairs(pts, radius)
        try:
            net = RadioNetwork.from_edges(
                n, left, right, source=source, name=f"udg-{n}-r{radius:.3g}"
            )
        except TopologyError:
            continue
        return net
    raise TopologyError(
        f"unit-disk({n}, r={radius}) was disconnected in {max_tries} attempts; "
        "increase the radius"
    )


# ---------------------------------------------------------------------- #
# Name-based construction (CLI / sweeps)
# ---------------------------------------------------------------------- #
TOPOLOGY_NAMES = ("line", "ring", "star", "grid", "gnp", "dumbbell", "unit_disk")


def from_spec(
    name: str,
    n: int,
    *,
    seed: int = 0,
    source: int = 0,
    p: float | None = None,
    radius: float | None = None,
) -> RadioNetwork:
    """Build a topology by family name with sensible defaults.

    ``p`` defaults to ``min(1, 4 ln n / n)`` (safely above the connectivity
    threshold) and ``radius`` to ``sqrt(8 ln n / (pi n))`` for the same
    reason.  ``dumbbell`` splits ``n`` into two cliques plus a 4-node bridge.
    """
    if name == "line":
        return line(n, source=source)
    if name == "ring":
        return ring(n, source=source)
    if name == "star":
        return star(n, source=source)
    if name == "grid":
        return grid2d(n=n, source=source)
    if name == "gnp":
        if p is None:
            p = min(1.0, 4.0 * math.log(max(2, n)) / n)
        return gnp(n, p, seed=seed, source=source)
    if name == "dumbbell":
        bridge = min(4, max(0, n - 4))
        clique = (n - bridge) // 2
        if clique < 2:
            raise TopologyError(f"dumbbell needs n >= 4, got {n}")
        return dumbbell(clique, n - 2 * clique, source=source)
    if name == "unit_disk":
        if radius is None:
            radius = math.sqrt(8.0 * math.log(max(2, n)) / (math.pi * n))
        return unit_disk(n, radius, seed=seed, source=source)
    raise TopologyError(f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}")
