"""Radio-network topologies.

A :class:`RadioNetwork` is an undirected, connected graph with a designated
broadcast source.  The engine only ever sees the adjacency structure; all
the generators below exist so that protocols can be exercised on the graph
families the paper's guarantees must survive: long paths (diameter-bound),
stars and cliques (contention-bound), grids and unit-disk graphs (the
geometric radio setting), sparse random graphs, and "dumbbell" graphs whose
narrow bridge stresses progress through a single bottleneck edge.

Every generator validates its output (connected, source present, no self
loops) and is deterministic given its seed.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.sim.rng import stream

__all__ = [
    "RadioNetwork",
    "line",
    "ring",
    "star",
    "grid2d",
    "gnp",
    "dumbbell",
    "unit_disk",
    "from_spec",
    "TOPOLOGY_NAMES",
]


class RadioNetwork:
    """An undirected connected graph plus a broadcast source node.

    Construction validates the structure once; afterwards the instance is
    immutable and caches the derived views the engine and the budgets need
    (dense adjacency matrix, BFS layers, eccentricity, diameter).
    """

    def __init__(
        self,
        neighbors: Sequence[Iterable[int]],
        *,
        source: int = 0,
        name: str = "custom",
    ):
        n = len(neighbors)
        if n < 1:
            raise TopologyError("a RadioNetwork needs at least one node")
        if not 0 <= source < n:
            raise TopologyError(f"source {source} out of range for {n} nodes")
        adj: list[tuple[int, ...]] = []
        for u, nbrs in enumerate(neighbors):
            seen = set()
            for v in nbrs:
                v = int(v)
                if v == u:
                    raise TopologyError(f"self-loop at node {u}")
                if not 0 <= v < n:
                    raise TopologyError(f"edge ({u}, {v}) out of range for {n} nodes")
                seen.add(v)
            adj.append(tuple(sorted(seen)))
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                if u not in adj[v]:
                    raise TopologyError(f"edge ({u}, {v}) is not symmetric")
        self._neighbors = tuple(adj)
        self._n = n
        self._source = source
        self._name = name
        self._adjacency: np.ndarray | None = None
        self._adjacency_key: bytes | None = None
        self._layers: dict[int, tuple[tuple[int, ...], ...]] = {}
        self._diameter: int | None = None
        if n > 1:
            reached = sum(len(layer) for layer in self.bfs_layers(source))
            if reached != n:
                raise TopologyError(
                    f"graph is disconnected: {n - reached} of {n} nodes "
                    f"unreachable from source {source}"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def source(self) -> int:
        return self._source

    @property
    def name(self) -> str:
        return self._name

    def neighbors(self, v: int) -> tuple[int, ...]:
        return self._neighbors[v]

    def degree(self, v: int) -> int:
        return len(self._neighbors[v])

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._neighbors) // 2

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric 0/1 matrix, cached; the engine's channel kernel.

        The returned array is the cache itself, marked read-only: a caller
        mutating it would silently corrupt every later run (and the batch
        engine's topology grouping), so writes raise ``ValueError``.
        """
        if self._adjacency is None:
            mat = np.zeros((self._n, self._n), dtype=np.int8)
            for u, nbrs in enumerate(self._neighbors):
                for v in nbrs:
                    mat[u, v] = 1
            mat.setflags(write=False)
            self._adjacency = mat
        return self._adjacency

    def adjacency_key(self) -> bytes:
        """Cached ``adjacency_matrix().tobytes()`` — a hashable topology key.

        The batch engine groups same-topology instances by this key; caching
        it here keeps that grouping O(1) per item instead of re-serializing
        O(n^2) matrix bytes for every instance.
        """
        if self._adjacency_key is None:
            self._adjacency_key = self.adjacency_matrix().tobytes()
        return self._adjacency_key

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def bfs_layers(self, root: int | None = None) -> tuple[tuple[int, ...], ...]:
        """Nodes grouped by hop distance from ``root`` (default: the source).

        ``layers[d]`` holds every node at distance exactly ``d``; unreachable
        nodes (only possible during construction) are absent.
        """
        root = self._source if root is None else root
        if not 0 <= root < self._n:
            raise TopologyError(f"root {root} out of range for {self._n} nodes")
        if root in self._layers:
            return self._layers[root]
        dist = [-1] * self._n
        dist[root] = 0
        queue = deque([root])
        layers: list[list[int]] = [[root]]
        while queue:
            u = queue.popleft()
            for v in self._neighbors[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    if dist[v] == len(layers):
                        layers.append([])
                    layers[dist[v]].append(v)
                    queue.append(v)
        result = tuple(tuple(layer) for layer in layers)
        self._layers[root] = result
        return result

    def eccentricity(self, root: int | None = None) -> int:
        """Largest hop distance from ``root`` (default: the source)."""
        return len(self.bfs_layers(root)) - 1

    def diameter(self) -> int:
        """Exact diameter via BFS from every node (cached; n is small)."""
        if self._diameter is None:
            self._diameter = max(self.eccentricity(v) for v in range(self._n))
        return self._diameter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RadioNetwork(name={self._name!r}, n={self._n}, "
            f"edges={self.num_edges}, source={self._source})"
        )


# ---------------------------------------------------------------------- #
# Deterministic families
# ---------------------------------------------------------------------- #
def _check_size(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise TopologyError(f"need at least {minimum} nodes, got {n}")


def line(n: int, *, source: int = 0) -> RadioNetwork:
    """Path 0 - 1 - ... - (n-1); the diameter-stress topology."""
    _check_size(n)
    nbrs = [[] for _ in range(n)]
    for u in range(n - 1):
        nbrs[u].append(u + 1)
        nbrs[u + 1].append(u)
    return RadioNetwork(nbrs, source=source, name=f"line-{n}")


def ring(n: int, *, source: int = 0) -> RadioNetwork:
    """Cycle on ``n`` nodes (n >= 3)."""
    _check_size(n, 3)
    nbrs = [[(u - 1) % n, (u + 1) % n] for u in range(n)]
    return RadioNetwork(nbrs, source=source, name=f"ring-{n}")


def star(n: int, *, source: int = 0) -> RadioNetwork:
    """Node 0 is the hub, nodes 1..n-1 are leaves; the contention-stress case."""
    _check_size(n, 2)
    nbrs = [list(range(1, n))] + [[0] for _ in range(n - 1)]
    return RadioNetwork(nbrs, source=source, name=f"star-{n}")


def grid2d(
    rows: int | None = None,
    cols: int | None = None,
    *,
    n: int | None = None,
    source: int = 0,
) -> RadioNetwork:
    """4-neighbour grid.

    Either pass explicit ``rows``/``cols``, or pass ``n`` alone to get a
    near-square grid truncated to exactly ``n`` nodes in row-major order —
    truncation keeps the graph connected.
    """
    if n is not None:
        if rows is not None or cols is not None:
            raise TopologyError("pass either rows/cols or n, not both")
        _check_size(n)
        rows = max(1, int(math.isqrt(n)))
        cols = math.ceil(n / rows)
    else:
        if rows is None:
            raise TopologyError("grid2d needs rows/cols or n")
        cols = rows if cols is None else cols
        if rows < 1 or cols < 1:
            raise TopologyError(f"grid needs positive dimensions, got {rows}x{cols}")
        n = rows * cols
    nbrs: list[list[int]] = [[] for _ in range(n)]
    for idx in range(n):
        r, c = divmod(idx, cols)
        for dr, dc in ((0, 1), (1, 0)):
            rr, cc = r + dr, c + dc
            jdx = rr * cols + cc
            if rr < rows and cc < cols and jdx < n:
                nbrs[idx].append(jdx)
                nbrs[jdx].append(idx)
    return RadioNetwork(nbrs, source=source, name=f"grid-{rows}x{cols}-n{n}")


def dumbbell(clique_size: int, bridge_length: int = 4, *, source: int = 0) -> RadioNetwork:
    """Two cliques of ``clique_size`` nodes joined by a path of ``bridge_length`` nodes.

    High contention inside the clusters, single-edge bottleneck between
    them — the hardest mix for a contention-resolution broadcast.
    """
    if clique_size < 2:
        raise TopologyError(f"clique_size must be >= 2, got {clique_size}")
    if bridge_length < 0:
        raise TopologyError(f"bridge_length must be >= 0, got {bridge_length}")
    n = 2 * clique_size + bridge_length
    nbrs: list[set[int]] = [set() for _ in range(n)]
    left = range(0, clique_size)
    right = range(clique_size + bridge_length, n)
    for grp in (left, right):
        for u in grp:
            for v in grp:
                if u < v:
                    nbrs[u].add(v)
                    nbrs[v].add(u)
    chain = [clique_size - 1, *range(clique_size, clique_size + bridge_length), clique_size + bridge_length]
    for u, v in zip(chain, chain[1:]):
        nbrs[u].add(v)
        nbrs[v].add(u)
    return RadioNetwork(
        [sorted(s) for s in nbrs],
        source=source,
        name=f"dumbbell-{clique_size}+{bridge_length}+{clique_size}",
    )


# ---------------------------------------------------------------------- #
# Random families
# ---------------------------------------------------------------------- #
_RANDOM_TRIES = 50


def gnp(n: int, p: float, *, seed: int = 0, source: int = 0, max_tries: int = _RANDOM_TRIES) -> RadioNetwork:
    """Erdős–Rényi G(n, p), resampled until connected (or :class:`TopologyError`)."""
    _check_size(n)
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {p}")
    if not 0 <= source < n:
        raise TopologyError(f"source {source} out of range for {n} nodes")
    for attempt in range(max_tries):
        rng = stream(seed, 1, attempt)
        upper = np.triu(rng.random((n, n)) < p, k=1)
        mat = upper | upper.T
        nbrs = [np.nonzero(mat[u])[0].tolist() for u in range(n)]
        try:
            net = RadioNetwork(nbrs, source=source, name=f"gnp-{n}-p{p:.3g}")
        except TopologyError:
            continue
        return net
    raise TopologyError(
        f"G({n}, {p}) was disconnected in {max_tries} attempts; increase p"
    )


def unit_disk(
    n: int,
    radius: float,
    *,
    seed: int = 0,
    source: int = 0,
    max_tries: int = _RANDOM_TRIES,
) -> RadioNetwork:
    """Unit-disk graph: ``n`` points in the unit square, edge iff distance <= radius."""
    _check_size(n)
    if radius <= 0:
        raise TopologyError(f"radius must be positive, got {radius}")
    if not 0 <= source < n:
        raise TopologyError(f"source {source} out of range for {n} nodes")
    for attempt in range(max_tries):
        rng = stream(seed, 2, attempt)
        pts = rng.random((n, 2))
        delta = pts[:, None, :] - pts[None, :, :]
        close = (delta**2).sum(axis=2) <= radius * radius
        np.fill_diagonal(close, False)
        nbrs = [np.nonzero(close[u])[0].tolist() for u in range(n)]
        try:
            net = RadioNetwork(nbrs, source=source, name=f"udg-{n}-r{radius:.3g}")
        except TopologyError:
            continue
        return net
    raise TopologyError(
        f"unit-disk({n}, r={radius}) was disconnected in {max_tries} attempts; "
        "increase the radius"
    )


# ---------------------------------------------------------------------- #
# Name-based construction (CLI / sweeps)
# ---------------------------------------------------------------------- #
TOPOLOGY_NAMES = ("line", "ring", "star", "grid", "gnp", "dumbbell", "unit_disk")


def from_spec(
    name: str,
    n: int,
    *,
    seed: int = 0,
    source: int = 0,
    p: float | None = None,
    radius: float | None = None,
) -> RadioNetwork:
    """Build a topology by family name with sensible defaults.

    ``p`` defaults to ``min(1, 4 ln n / n)`` (safely above the connectivity
    threshold) and ``radius`` to ``sqrt(8 ln n / (pi n))`` for the same
    reason.  ``dumbbell`` splits ``n`` into two cliques plus a 4-node bridge.
    """
    if name == "line":
        return line(n, source=source)
    if name == "ring":
        return ring(n, source=source)
    if name == "star":
        return star(n, source=source)
    if name == "grid":
        return grid2d(n=n, source=source)
    if name == "gnp":
        if p is None:
            p = min(1.0, 4.0 * math.log(max(2, n)) / n)
        return gnp(n, p, seed=seed, source=source)
    if name == "dumbbell":
        bridge = min(4, max(0, n - 4))
        clique = (n - bridge) // 2
        if clique < 2:
            raise TopologyError(f"dumbbell needs n >= 4, got {n}")
        return dumbbell(clique, n - 2 * clique, source=source)
    if name == "unit_disk":
        if radius is None:
            radius = math.sqrt(8.0 * math.log(max(2, n)) / (math.pi * n))
        return unit_disk(n, radius, seed=seed, source=source)
    raise TopologyError(f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}")
