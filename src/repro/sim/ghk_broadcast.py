"""The paper's collision-detection broadcast (GHK), built on beep waves.

The protocol layers two mechanisms on the :mod:`repro.sim.beepwave`
primitive to beat Decay's ``O((D + log n) log n)`` bound:

1. **Wave synchronization.**  A single beep wave sweeps the network in
   ``D`` rounds and teaches every node its BFS layer ``d``
   (``wave_distance``).  The source's pulse — and every relay pulse sent
   by a node that already holds the message — carries the *actual
   broadcast message* as its payload, so wherever the wavefront is locally
   uncontended (one relay per receiver: paths, rings, bridges, cluster
   heads) the message is delivered by the wave itself at one hop per
   round.  Only receivers whose pulse arrived as a collision still need
   the second mechanism.

2. **Layered slot schedule with decay backoff.**  After the wave has
   passed, round ``t`` belongs to layer ``d ≡ t (mod wave_spacing)``.
   With a spacing of at least 3, a listener in layer ``d + 1`` can only
   ever hear layer-``d`` transmitters during layer ``d``'s slots — the
   schedule removes *all* cross-layer collisions, which is what lets
   progress pipeline at one slot per hop instead of one ``Θ(log n)``
   Decay phase per hop.  Within a layer, informed nodes resolve residual
   same-layer contention Decay-style: in its ``k``-th owned slot since
   becoming informed, a node transmits the message with probability
   ``2^-(k mod B)`` where ``B = Θ(log n)`` slots
   (:meth:`ProtocolParams.ghk_backoff_slots`), so some slot has roughly
   one expected transmitter no matter the layer's informed population.

Total: ``D`` rounds of wave plus ``O(log^2 n)`` slots of worst-layer
contention, pipelined — the ``O(D + log^2 n)`` regime of the paper,
against Decay's ``O((D + log n) log n)``.

The protocol is *only correct with collision detection* (the wave stalls
without it), so :func:`run_ghk_broadcast` and
:meth:`GHKBroadcastProtocol.setup` reject collision-blind channels with
:class:`ConfigurationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.params import ProtocolParams
from repro.sim.beepwave import WAVE_PULSE, in_layer_slot, is_beep
from repro.sim.engine import Engine, SimResult, run_until_all_informed
from repro.sim.protocol import (
    Action,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    register_protocol,
)
from repro.sim.topology import RadioNetwork

__all__ = ["GHKBroadcastProtocol", "GHKResult", "run_ghk_broadcast"]


@register_protocol("ghk")
class GHKBroadcastProtocol(BroadcastProtocol):
    """Per-node state machine of the collision-detection broadcast."""

    def __init__(self, message: Any = "broadcast"):
        super().__init__(message)
        if message is WAVE_PULSE:
            # The sentinel marks a *content-free* pulse; a broadcast whose
            # payload is the sentinel could never be recognised as
            # delivered (on_feedback deliberately ignores it).
            raise ConfigurationError(
                "WAVE_PULSE is reserved for synchronization pulses and "
                "cannot be the broadcast message"
            )

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        if not ctx.collision_detection:
            raise ConfigurationError(
                "GHKBroadcastProtocol requires collision detection: without it "
                "the synchronization beep wave stalls at the first contended hop"
            )
        self.spacing = ctx.params.wave_spacing
        self.backoff_slots = ctx.params.ghk_backoff_slots(ctx.n_bound)
        self.informed = ctx.is_source
        self.message: Any = self._injected_message if ctx.is_source else None
        self.informed_round: int | None = 0 if ctx.is_source else None
        #: BFS layer, learned when the sync wave arrives (0 for the source).
        self.wave_distance: int | None = 0 if ctx.is_source else None
        self._pulse_sent = False
        self._slots_since_informed = 0

    # ------------------------------------------------------------------ #
    # Round behaviour
    # ------------------------------------------------------------------ #
    def act(self, round_index: int) -> Action:
        if self.wave_distance is None:
            # Waiting for the sync wave; the first beep fixes our layer.
            return Action.listen()
        if not self._pulse_sent and round_index >= self.wave_distance:
            # Relay the wave exactly once; piggyback the message if we have
            # it so uncontended receivers are informed by the wave itself.
            self._pulse_sent = True
            return Action.transmit(self.message if self.informed else WAVE_PULSE)
        if self.informed:
            if in_layer_slot(round_index, self.wave_distance, self.spacing):
                k = self._slots_since_informed % self.backoff_slots
                self._slots_since_informed += 1
                if self.ctx.rng.random() < 2.0 ** (-k):
                    return Action.transmit(self.message)
            return Action.sleep()
        # Uninformed but synchronized: listen everywhere — the message may
        # arrive from the previous layer's slot, from a same-layer
        # neighbour, or even from behind.
        return Action.listen()

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if self.wave_distance is None:
            if is_beep(feedback):
                self.wave_distance = feedback.round_index + 1
            else:
                return
        if (
            not self.informed
            and feedback.kind is FeedbackKind.MESSAGE
            and feedback.message is not WAVE_PULSE
        ):
            self.informed = True
            self.message = feedback.message
            self.informed_round = round_index

    def finished(self) -> bool:
        return self.informed


@dataclass(frozen=True)
class GHKResult:
    """Outcome of one successful :func:`run_ghk_broadcast`."""

    network: str
    n: int
    seed: int
    budget: int
    #: rounds executed until every node was informed.
    rounds_to_delivery: int
    #: per-node round at which the message arrived (0 for the source).
    informed_rounds: tuple[int, ...]
    #: per-node BFS layer as learned from the sync wave.
    wave_distances: tuple[int, ...]
    #: layer-slot reuse period used by this run.
    wave_spacing: int
    sim: SimResult


def run_ghk_broadcast(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    collision_detection: bool = True,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
) -> GHKResult:
    """Broadcast ``message`` from the source with the GHK protocol.

    Runs until every node is informed or the round budget (default:
    :meth:`ProtocolParams.ghk_broadcast_rounds` for the source
    eccentricity) expires, in which case :class:`BroadcastFailure` is
    raised carrying the undelivered node set — the same contract as
    :func:`repro.sim.decay.run_decay`, so sweeps can drive both uniformly.
    """
    if message is None:
        raise ConfigurationError(
            "run_ghk_broadcast needs a non-None message to broadcast"
        )
    if message is WAVE_PULSE:
        raise ConfigurationError(
            "WAVE_PULSE is reserved for synchronization pulses and cannot be "
            "the broadcast message"
        )
    if not collision_detection:
        raise ConfigurationError(
            "run_ghk_broadcast models the paper's collision-detection setting; "
            "use run_decay for the collision-blind baseline"
        )
    params = params if params is not None else ProtocolParams.paper()
    bound = n_bound if n_bound is not None else network.n
    if budget is None:
        budget = params.ghk_broadcast_rounds(network.eccentricity(), bound)
    protocols = [GHKBroadcastProtocol(message=message) for _ in range(network.n)]
    engine = Engine(
        network,
        protocols,
        seed=seed,
        collision_detection=True,
        params=params,
        n_bound=bound,
        trace=trace,
    )
    sim = run_until_all_informed(engine, budget, label="GHK", seed=seed)
    return GHKResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=budget,
        rounds_to_delivery=sim.rounds_run,
        informed_rounds=tuple(p.informed_round for p in protocols),
        wave_distances=tuple(p.wave_distance for p in protocols),
        wave_spacing=params.wave_spacing,
        sim=sim,
    )
