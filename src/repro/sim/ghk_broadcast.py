"""The paper's collision-detection broadcast (GHK), built on beep waves.

The protocol layers two mechanisms on the :mod:`repro.sim.beepwave`
primitive to beat Decay's ``O((D + log n) log n)`` bound:

1. **Wave synchronization.**  A single beep wave sweeps the network in
   ``D`` rounds and teaches every node its BFS layer ``d``
   (``wave_distance``).  The source's pulse — and every relay pulse sent
   by a node that already holds the message — carries the *actual
   broadcast message* as its payload, so wherever the wavefront is locally
   uncontended (one relay per receiver: paths, rings, bridges, cluster
   heads) the message is delivered by the wave itself at one hop per
   round.  Only receivers whose pulse arrived as a collision still need
   the second mechanism.

2. **Layered slot schedule with decay backoff.**  After the wave has
   passed, round ``t`` belongs to layer ``d ≡ t (mod wave_spacing)``.
   With a spacing of at least 3, a listener in layer ``d + 1`` can only
   ever hear layer-``d`` transmitters during layer ``d``'s slots — the
   schedule removes *all* cross-layer collisions, which is what lets
   progress pipeline at one slot per hop instead of one ``Θ(log n)``
   Decay phase per hop.  Within a layer, informed nodes resolve residual
   same-layer contention Decay-style: in its ``k``-th owned slot since
   becoming informed, a node transmits the message with probability
   ``2^-(k mod B)`` where ``B = Θ(log n)`` slots
   (:meth:`ProtocolParams.ghk_backoff_slots`), so some slot has roughly
   one expected transmitter no matter the layer's informed population.

Total: ``D`` rounds of wave plus ``O(log^2 n)`` slots of worst-layer
contention, pipelined — the ``O(D + log^2 n)`` regime of the paper,
against Decay's ``O((D + log n) log n)``.

The protocol is *only correct with collision detection* (the wave stalls
without it), so :func:`run_ghk_broadcast` and both protocol forms reject
collision-blind channels with :class:`ConfigurationError`.

Like Decay, the protocol exists in both execution forms:
:class:`GHKBroadcastProtocol` per node, :class:`GHKArrayProtocol` for the
whole network at once, coin-for-coin identical on shared seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.params import ProtocolParams
from repro.sim.beepwave import WAVE_PULSE, in_layer_slot, is_beep
from repro.sim.core.array_protocol import (
    ArrayContext,
    BroadcastArrayProtocol,
    CoinDeck,
    RoundPlan,
    register_array_protocol,
)
from repro.sim.core.channel import ChannelRound
from repro.sim.core.stats import SimResult
from repro.sim.engine import run_until_all_informed
from repro.sim.faults import FaultSchedule
from repro.sim.protocol import (
    Action,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    register_protocol,
)
from repro.sim.runners import (
    BroadcastRun,
    BroadcastSpec,
    prepare_broadcast_engine,
    register_broadcast_spec,
)
from repro.sim.topology import RadioNetwork

__all__ = ["GHKBroadcastProtocol", "GHKArrayProtocol", "GHKResult", "run_ghk_broadcast"]


@register_protocol("ghk")
class GHKBroadcastProtocol(BroadcastProtocol):
    """Per-node state machine of the collision-detection broadcast."""

    def __init__(self, message: Any = "broadcast") -> None:
        super().__init__(message)
        if message is WAVE_PULSE:
            # The sentinel marks a *content-free* pulse; a broadcast whose
            # payload is the sentinel could never be recognised as
            # delivered (on_feedback deliberately ignores it).
            raise ConfigurationError(
                "WAVE_PULSE is reserved for synchronization pulses and "
                "cannot be the broadcast message"
            )

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        if not ctx.collision_detection:
            raise ConfigurationError(
                "GHKBroadcastProtocol requires collision detection: without it "
                "the synchronization beep wave stalls at the first contended hop"
            )
        self.spacing = ctx.params.wave_spacing
        self.backoff_slots = ctx.params.ghk_backoff_slots(ctx.n_bound)
        self.informed = ctx.is_source
        self.message: Any = self._injected_message if ctx.is_source else None
        self.informed_round: int | None = 0 if ctx.is_source else None
        #: BFS layer, learned when the sync wave arrives (0 for the source).
        self.wave_distance: int | None = 0 if ctx.is_source else None
        self._pulse_sent = False
        self._slots_since_informed = 0

    # ------------------------------------------------------------------ #
    # Round behaviour
    # ------------------------------------------------------------------ #
    def act(self, round_index: int) -> Action:
        if self.wave_distance is None:
            # Waiting for the sync wave; the first beep fixes our layer.
            return Action.listen()
        if not self._pulse_sent and round_index >= self.wave_distance:
            # Relay the wave exactly once; piggyback the message if we have
            # it so uncontended receivers are informed by the wave itself.
            self._pulse_sent = True
            return Action.transmit(self.message if self.informed else WAVE_PULSE)
        if self.informed:
            if in_layer_slot(round_index, self.wave_distance, self.spacing):
                k = self._slots_since_informed % self.backoff_slots
                self._slots_since_informed += 1
                if self.ctx.rng.random() < 2.0 ** (-k):
                    return Action.transmit(self.message)
            return Action.sleep()
        # Uninformed but synchronized: listen everywhere — the message may
        # arrive from the previous layer's slot, from a same-layer
        # neighbour, or even from behind.
        return Action.listen()

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if self.wave_distance is None:
            if is_beep(feedback):
                self.wave_distance = feedback.round_index + 1
            else:
                return
        if (
            not self.informed
            and feedback.kind is FeedbackKind.MESSAGE
            and feedback.message is not WAVE_PULSE
        ):
            self.informed = True
            self.message = feedback.message
            self.informed_round = round_index

    def finished(self) -> bool:
        return self.informed


@register_array_protocol("ghk")
class GHKArrayProtocol(BroadcastArrayProtocol):
    """Whole-network GHK: wave, layer slots, and backoff as array state.

    Mirrors :class:`GHKBroadcastProtocol` branch-for-branch — relay pulses
    take precedence over layer slots, backoff coins are drawn only by
    informed nodes in their owned slots, and a node can learn its layer and
    the message from the same clean pulse — so the two forms produce
    identical traces on identical seeds.
    """

    def __init__(self, message: Any = "broadcast") -> None:
        super().__init__(message)
        if message is WAVE_PULSE:
            raise ConfigurationError(
                "WAVE_PULSE is reserved for synchronization pulses and "
                "cannot be the broadcast message"
            )

    def setup(self, ctx: ArrayContext) -> None:
        super().setup(ctx)
        if not ctx.collision_detection:
            raise ConfigurationError(
                "GHKArrayProtocol requires collision detection: without it "
                "the synchronization beep wave stalls at the first contended hop"
            )
        self.spacing = ctx.params.wave_spacing
        self.backoff_slots = ctx.params.ghk_backoff_slots(ctx.n_bound)
        self._init_broadcast_state(ctx)
        self.wave_distance = np.full(ctx.n_nodes, -1, dtype=np.int64)
        self.wave_distance[ctx.source] = 0
        self._pulse_sent = np.zeros(ctx.n_nodes, dtype=bool)
        self._slots_since_informed = np.zeros(ctx.n_nodes, dtype=np.int64)
        self._coins = CoinDeck(ctx.streams)
        #: which transmitters carried the real message (vs a bare pulse)
        #: in the round being resolved; receivers index it by sender id.
        self._tx_has_message = np.zeros(ctx.n_nodes, dtype=bool)

    def act(self, round_index: int) -> RoundPlan:
        r = round_index
        unsynced = self.wave_distance < 0
        relay = ~unsynced & ~self._pulse_sent & (r >= self.wave_distance)
        self._pulse_sent |= relay
        settled = ~unsynced & ~relay
        transmit = relay.copy()
        # Layer slots: r > d and r ≡ d (mod spacing); unsynced rows hold -1
        # but are masked out by `settled`.
        slot = (
            settled
            & self.informed
            & (r > self.wave_distance)
            & ((r - self.wave_distance) % self.spacing == 0)
        )
        owners = np.nonzero(slot)[0]
        if owners.size:
            k = self._slots_since_informed[owners] % self.backoff_slots
            self._slots_since_informed[owners] += 1
            fire = self._coins.draw(owners) < np.power(2.0, -k.astype(np.float64))
            transmit[owners[fire]] = True
        listen = unsynced | (settled & ~self.informed)
        np.copyto(self._tx_has_message, transmit & self.informed)
        return RoundPlan(transmit=transmit, listen=listen)

    def on_feedback(self, round_index: int, channel: ChannelRound) -> None:
        r = round_index
        # Beep: any non-silent outcome (collision detection is guaranteed
        # by setup), fixing the layer of every first-time hearer.
        beep = channel.clean | channel.collided
        newly_synced = beep & (self.wave_distance < 0)
        self.wave_distance[newly_synced] = r + 1
        # Message receipt: a clean transmission whose sender piggybacked the
        # payload — possibly in the very round the wave arrived.
        newly_informed = (
            channel.clean & ~self.informed & self._tx_has_message[channel.senders]
        )
        if newly_informed.any():
            self.informed |= newly_informed
            self.informed_round[newly_informed] = r

    def wave_distances(self) -> tuple[int, ...]:
        """Per-node BFS layers as plain ints (-1 where the wave never arrived)."""
        return tuple(self.wave_distance.tolist())


@dataclass(frozen=True)
class GHKResult:
    """Outcome of one successful :func:`run_ghk_broadcast`."""

    network: str
    n: int
    seed: int
    budget: int
    #: rounds executed until every node was informed.
    rounds_to_delivery: int
    #: per-node round at which the message arrived (0 for the source).
    informed_rounds: tuple[int, ...]
    #: per-node BFS layer as learned from the sync wave.
    wave_distances: tuple[int, ...]
    #: layer-slot reuse period used by this run.
    wave_spacing: int
    sim: SimResult


def run_ghk_broadcast(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    collision_detection: bool = True,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    faults: FaultSchedule | None = None,
    sanitize: bool | None = None,
) -> GHKResult:
    """Broadcast ``message`` from the source with the GHK protocol.

    Runs until every node is informed or the round budget (default:
    :meth:`ProtocolParams.ghk_broadcast_rounds` for the source
    eccentricity) expires, in which case :class:`BroadcastFailure` is
    raised carrying the undelivered node set — the same contract as
    :func:`repro.sim.decay.run_decay`, so sweeps can drive both uniformly.
    """
    if message is WAVE_PULSE:
        raise ConfigurationError(
            "WAVE_PULSE is reserved for synchronization pulses and cannot be "
            "the broadcast message"
        )
    if not collision_detection:
        raise ConfigurationError(
            "run_ghk_broadcast models the paper's collision-detection setting; "
            "use run_decay for the collision-blind baseline"
        )
    prepared = prepare_broadcast_engine(
        GHK_SPEC,
        network,
        params,
        seed=seed,
        message=message,
        collision_detection=True,
        n_bound=n_bound,
        budget=budget,
        trace=trace,
        faults=faults,
        sanitize=sanitize,
    )
    sim = run_until_all_informed(prepared.engine, prepared.budget, label="GHK", seed=seed)
    return GHKResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=prepared.budget,
        rounds_to_delivery=sim.rounds_run,
        informed_rounds=tuple(p.informed_round for p in prepared.protocols),
        wave_distances=tuple(p.wave_distance for p in prepared.protocols),
        wave_spacing=prepared.params.wave_spacing,
        sim=sim,
    )


def _ghk_array_result(run: BroadcastRun) -> GHKResult:
    protocol = run.protocol
    if not isinstance(protocol, GHKArrayProtocol):
        raise SimulationError(
            f"GHK result requested for {type(protocol).__name__}, "
            "not a GHKArrayProtocol run"
        )
    return GHKResult(
        network=run.network.name,
        n=run.network.n,
        seed=run.seed,
        budget=run.budget,
        rounds_to_delivery=run.sim.rounds_run,
        informed_rounds=protocol.informed_rounds(),
        wave_distances=protocol.wave_distances(),
        wave_spacing=run.params.wave_spacing,
        sim=run.sim,
    )


GHK_SPEC = register_broadcast_spec(
    BroadcastSpec(
        name="ghk",
        label="GHK",
        runner=run_ghk_broadcast,
        protocol_factory=GHKBroadcastProtocol,
        array_factory=GHKArrayProtocol,
        budget_for=lambda params, net, bound, options: params.ghk_broadcast_rounds(
            net.eccentricity(), bound
        ),
        default_collision_detection=True,
        requires_collision_detection=True,
        build_result=_ghk_array_result,
    )
)
