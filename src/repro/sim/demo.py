"""Smoke-test CLI: run one broadcast protocol end-to-end on a chosen topology.

Example::

    python -m repro.sim.demo --topology grid --n 64 --seed 0 --protocol ghk

Prints the topology summary, the round budget, and the rounds it took to
inform every node; exits non-zero on a :class:`BroadcastFailure` so the
command doubles as a shell-scriptable smoke test.  ``--protocol decay``
(the default) runs the collision-blind baseline; ``--protocol ghk`` runs
the paper's collision-detection broadcast, which always models collision
detection regardless of the flag.

Runs go through the array-native batch engine by default;
``--engine object`` drives the classic per-node protocol objects instead
(both paths produce identical results on the same seed).  ``--json``
emits one machine-readable JSON object on stdout instead of prose, and
``--trace`` logs every round's ground truth (transmitters, deliveries,
collisions) so a run can be inspected without writing code.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import BroadcastFailure, TopologyError
from repro.params import ProtocolParams
from repro.sim import runners
from repro.sim.decay import DecayResult
from repro.sim.ghk_broadcast import GHKResult
from repro.sim.runners import run_broadcast
from repro.sim.topology import TOPOLOGY_NAMES, from_spec


def _seed(value: str) -> int:
    seed = int(value)
    if seed < 0:
        raise argparse.ArgumentTypeError("seed must be a non-negative integer")
    return seed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.demo",
        description="Broadcast one message with a registered protocol.",
    )
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="grid")
    parser.add_argument("--n", type=int, default=64, help="number of nodes")
    parser.add_argument(
        "--protocol",
        choices=runners.BROADCAST_PROTOCOL_NAMES,
        default="decay",
        help="broadcast protocol to run (default: decay)",
    )
    parser.add_argument("--seed", type=_seed, default=0, help="run seed (topology + coins)")
    parser.add_argument(
        "--preset",
        choices=("paper", "fast"),
        default="fast",
        help="ProtocolParams preset (default: fast)",
    )
    parser.add_argument("--p", type=float, default=None, help="edge probability for gnp")
    parser.add_argument("--radius", type=float, default=None, help="radius for unit_disk")
    parser.add_argument(
        "--collision-detection",
        action="store_true",
        help="model collision detection (Decay ignores it; ghk always has it)",
    )
    parser.add_argument(
        "--engine",
        choices=("array", "object"),
        default="array",
        help="execution path: array-native batch engine (default) or "
        "per-node protocol objects; results are identical",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of prose",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="log every round's ground truth (transmitters/deliveries/collisions)",
    )
    return parser


def _print_trace(history) -> None:
    for stats in history:
        print(
            f"round {stats.round_index:>4d}: "
            f"tx={list(stats.transmitters)} "
            f"deliveries={[list(p) for p in stats.deliveries]} "
            f"collisions={list(stats.collisions)}"
        )


def _trace_rows(history) -> list[dict]:
    return [
        {
            "round": stats.round_index,
            "transmitters": list(stats.transmitters),
            "deliveries": [list(pair) for pair in stats.deliveries],
            "collisions": list(stats.collisions),
        }
        for stats in history
    ]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = ProtocolParams.paper() if args.preset == "paper" else ProtocolParams.fast()
    try:
        net = from_spec(args.topology, args.n, seed=args.seed, p=args.p, radius=args.radius)
    except TopologyError as exc:
        print(f"topology error: {exc}", file=sys.stderr)
        return 2
    if not args.json:
        print(
            f"{net.name}: n={net.n} edges={net.num_edges} "
            f"source-ecc={net.eccentricity()} diameter={net.diameter()}"
        )
    # GHK always models collision detection; for Decay it is a choice
    # (which the protocol then ignores anyway).
    collision_detection = True if args.protocol == "ghk" else args.collision_detection
    payload = {
        "protocol": args.protocol,
        "engine": args.engine,
        "topology": net.name,
        "n": net.n,
        "edges": net.num_edges,
        "source_eccentricity": net.eccentricity(),
        "diameter": net.diameter(),
        "seed": args.seed,
        "preset": args.preset,
        "collision_detection": collision_detection,
    }
    try:
        result = run_broadcast(
            args.protocol,
            net,
            params,
            seed=args.seed,
            engine=args.engine,
            collision_detection=collision_detection,
            trace=args.trace,
        )
    except BroadcastFailure as exc:
        # The failure carries the executed rounds, so --trace still shows
        # what happened — the case where a trace is most useful.
        history = exc.sim.history if exc.sim is not None else ()
        if args.json:
            payload.update(status="failed", error=str(exc), undelivered=sorted(exc.undelivered))
            if args.trace:
                payload["trace"] = _trace_rows(history)
            print(json.dumps(payload, indent=2))
        else:
            if args.trace:
                _print_trace(history)
            print(f"FAILED: {exc} (undelivered: {sorted(exc.undelivered)})", file=sys.stderr)
        return 1
    if args.trace and not args.json:
        _print_trace(result.sim.history)
    if args.json:
        payload.update(
            status="delivered",
            budget=result.budget,
            rounds_to_delivery=result.rounds_to_delivery,
            informed_rounds=list(result.informed_rounds),
            transmissions=result.sim.total_transmissions,
            deliveries=result.sim.total_deliveries,
            collisions=result.sim.total_collisions,
        )
        if isinstance(result, DecayResult):
            payload.update(
                phase_length=result.phase_length,
                phases_to_delivery=result.phases_to_delivery,
            )
        elif isinstance(result, GHKResult):
            payload.update(
                wave_depth=max(result.wave_distances),
                wave_spacing=result.wave_spacing,
            )
        if args.trace:
            payload["trace"] = _trace_rows(result.sim.history)
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.protocol}: delivered to all {result.n} nodes in "
        f"{result.rounds_to_delivery} rounds within budget {result.budget}"
    )
    if isinstance(result, DecayResult):
        print(
            f"{result.phases_to_delivery} Decay phases of {result.phase_length} rounds"
        )
    elif isinstance(result, GHKResult):
        print(
            f"wave depth {max(result.wave_distances)}, "
            f"layer-slot period {result.wave_spacing}"
        )
    print(
        f"transmissions={result.sim.total_transmissions} "
        f"deliveries={result.sim.total_deliveries} "
        f"collisions={result.sim.total_collisions}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
