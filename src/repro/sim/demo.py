"""Smoke-test CLI: run one broadcast protocol end-to-end on a chosen topology.

Example::

    python -m repro.sim.demo --topology grid --n 64 --seed 0 --protocol ghk

Prints the topology summary, the round budget, and the rounds it took to
inform every node; exits non-zero on a :class:`BroadcastFailure` so the
command doubles as a shell-scriptable smoke test.  ``--protocol decay``
(the default) runs the collision-blind baseline; ``--protocol ghk`` runs
the paper's collision-detection broadcast, which always models collision
detection regardless of the flag.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import BroadcastFailure, TopologyError
from repro.params import ProtocolParams
from repro.sim.decay import DecayResult
from repro.sim.ghk_broadcast import GHKResult
from repro.sim.runners import BROADCAST_PROTOCOL_NAMES, broadcast_runner
from repro.sim.topology import TOPOLOGY_NAMES, from_spec


def _seed(value: str) -> int:
    seed = int(value)
    if seed < 0:
        raise argparse.ArgumentTypeError("seed must be a non-negative integer")
    return seed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.demo",
        description="Broadcast one message with a registered protocol.",
    )
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="grid")
    parser.add_argument("--n", type=int, default=64, help="number of nodes")
    parser.add_argument(
        "--protocol",
        choices=BROADCAST_PROTOCOL_NAMES,
        default="decay",
        help="broadcast protocol to run (default: decay)",
    )
    parser.add_argument("--seed", type=_seed, default=0, help="run seed (topology + coins)")
    parser.add_argument(
        "--preset",
        choices=("paper", "fast"),
        default="fast",
        help="ProtocolParams preset (default: fast)",
    )
    parser.add_argument("--p", type=float, default=None, help="edge probability for gnp")
    parser.add_argument("--radius", type=float, default=None, help="radius for unit_disk")
    parser.add_argument(
        "--collision-detection",
        action="store_true",
        help="model collision detection (Decay ignores it; ghk always has it)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = ProtocolParams.paper() if args.preset == "paper" else ProtocolParams.fast()
    try:
        net = from_spec(args.topology, args.n, seed=args.seed, p=args.p, radius=args.radius)
    except TopologyError as exc:
        print(f"topology error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{net.name}: n={net.n} edges={net.num_edges} "
        f"source-ecc={net.eccentricity()} diameter={net.diameter()}"
    )
    runner = broadcast_runner(args.protocol)
    kwargs = {}
    if args.protocol == "decay":
        # GHK always models collision detection; for Decay it is a choice
        # (which the protocol then ignores anyway).
        kwargs["collision_detection"] = args.collision_detection
    try:
        result = runner(net, params, seed=args.seed, **kwargs)
    except BroadcastFailure as exc:
        print(f"FAILED: {exc} (undelivered: {sorted(exc.undelivered)})", file=sys.stderr)
        return 1
    print(
        f"{args.protocol}: delivered to all {result.n} nodes in "
        f"{result.rounds_to_delivery} rounds within budget {result.budget}"
    )
    if isinstance(result, DecayResult):
        print(
            f"{result.phases_to_delivery} Decay phases of {result.phase_length} rounds"
        )
    elif isinstance(result, GHKResult):
        print(
            f"wave depth {max(result.wave_distances)}, "
            f"layer-slot period {result.wave_spacing}"
        )
    print(
        f"transmissions={result.sim.total_transmissions} "
        f"deliveries={result.sim.total_deliveries} "
        f"collisions={result.sim.total_collisions}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
