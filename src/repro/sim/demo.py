"""Smoke-test CLI: run Decay end-to-end on a chosen topology.

Example::

    python -m repro.sim.demo --topology grid --n 64 --seed 0

Prints the topology summary, the round budget, and the rounds/phases it
took to inform every node; exits non-zero on a :class:`BroadcastFailure`
so the command doubles as a shell-scriptable smoke test.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import BroadcastFailure, TopologyError
from repro.params import ProtocolParams
from repro.sim.decay import run_decay
from repro.sim.topology import TOPOLOGY_NAMES, from_spec


def _seed(value: str) -> int:
    seed = int(value)
    if seed < 0:
        raise argparse.ArgumentTypeError("seed must be a non-negative integer")
    return seed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.demo",
        description="Broadcast one message with the Decay protocol.",
    )
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="grid")
    parser.add_argument("--n", type=int, default=64, help="number of nodes")
    parser.add_argument("--seed", type=_seed, default=0, help="run seed (topology + coins)")
    parser.add_argument(
        "--preset",
        choices=("paper", "fast"),
        default="fast",
        help="ProtocolParams preset (default: fast)",
    )
    parser.add_argument("--p", type=float, default=None, help="edge probability for gnp")
    parser.add_argument("--radius", type=float, default=None, help="radius for unit_disk")
    parser.add_argument(
        "--collision-detection",
        action="store_true",
        help="model collision detection (Decay ignores it; affects feedback only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = ProtocolParams.paper() if args.preset == "paper" else ProtocolParams.fast()
    try:
        net = from_spec(args.topology, args.n, seed=args.seed, p=args.p, radius=args.radius)
    except TopologyError as exc:
        print(f"topology error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{net.name}: n={net.n} edges={net.num_edges} "
        f"source-ecc={net.eccentricity()} diameter={net.diameter()}"
    )
    try:
        result = run_decay(
            net,
            params,
            seed=args.seed,
            collision_detection=args.collision_detection,
        )
    except BroadcastFailure as exc:
        print(f"FAILED: {exc} (undelivered: {sorted(exc.undelivered)})", file=sys.stderr)
        return 1
    print(
        f"delivered to all {result.n} nodes in {result.rounds_to_delivery} rounds "
        f"({result.phases_to_delivery} phases of {result.phase_length}) "
        f"within budget {result.budget}"
    )
    print(
        f"transmissions={result.sim.total_transmissions} "
        f"deliveries={result.sim.total_deliveries} "
        f"collisions={result.sim.total_collisions}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
