"""Smoke-test CLI: run one broadcast protocol end-to-end on a chosen topology.

Example::

    python -m repro.sim.demo --topology grid --n 64 --seed 0 --protocol ghk

Prints the topology summary, the round budget, and the rounds it took to
inform every node; exits non-zero on a :class:`BroadcastFailure` so the
command doubles as a shell-scriptable smoke test.  ``--protocol decay``
(the default) runs the collision-blind baseline; ``--protocol ghk`` runs
the paper's collision-detection broadcast, which always models collision
detection regardless of the flag.

Runs go through the array-native batch engine by default;
``--engine object`` drives the classic per-node protocol objects instead
(both paths produce identical results on the same seed).  ``--messages K``
broadcasts ``K`` distinct messages with the k-message pipeline
(``--protocol multimessage``), ``--budget`` overrides the round budget
(handy for forcing a failure), ``--json`` emits one machine-readable JSON
object on stdout instead of prose, and ``--trace`` logs every round's
ground truth (transmitters, deliveries, collisions) so a run can be
inspected without writing code.

The ``--json`` payload has one shape for both run outcomes: the shared
keys (topology header, ``budget``, ``rounds_run``, channel totals,
per-node ``traffic`` counters with the ``energy`` awake-slot total, and
wall-clock ``telemetry``) are always present and ``status`` discriminates
``"delivered"`` from ``"failed"``, so one consumer schema parses every
run.  Value errors
caught before any simulation (a non-positive ``--budget``, a topology
that cannot be built, ``--messages`` on a single-message protocol) emit a
reduced payload with ``status: "error"`` and an ``error`` message, and
exit 2.  Malformed flags that argparse itself rejects (e.g. a
non-integer ``--budget``) exit 2 with the standard usage text on stderr,
before any JSON contract applies.

``--backend {auto,dense,sparse,bitpacked}`` selects the channel-kernel
backend (dense matmul, sparse CSR, or bit-packed popcount); ``auto`` picks
by topology density and size, and all three
give bitwise-identical runs, so the flag is purely a speed/memory knob.

``--crash-rate``, ``--loss-rate`` and ``--jammers`` inject seeded faults
(see :mod:`repro.sim.faults`): each non-source node crashes for one
window with the crash probability, each clean reception is dropped with
the loss probability, and the jammer count places always-on jammers.
The schedule is sampled from the run seed (its own stream — coins are
unchanged), both ``--json`` shapes carry the knobs under ``"faults"``
plus the injected totals under ``"fault_totals"``, and all three at
their defaults leave the run bitwise-identical to a fault-free one.

``--sanitize`` attaches the simsan runtime sanitizer
(:mod:`repro.analysis.simsan`): every round is checked against the
kernel-boundary contracts, conservation laws, and a differential dense
re-execution of the channel; violations abort the run with a structured
:class:`~repro.errors.SanitizerError`.  Without the flag the run also
honours ``REPRO_SANITIZE=1`` from the environment.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence

from repro.errors import BroadcastFailure, TopologyError
from repro.params import ProtocolParams
from repro.sim import runners
from repro.sim.core import RoundStats, SimResult, resolve_channel_backend
from repro.sim.decay import DecayResult
from repro.sim.faults import sample_fault_schedule
from repro.sim.ghk_broadcast import GHKResult
from repro.sim.multi_message import MultiMessageResult
from repro.sim.runners import run_broadcast
from repro.sim.topology import TOPOLOGY_NAMES, from_spec


def _seed(value: str) -> int:
    seed = int(value)
    if seed < 0:
        raise argparse.ArgumentTypeError("seed must be a non-negative integer")
    return seed


def _positive(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("expected a positive integer")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.demo",
        description="Broadcast one message with a registered protocol.",
    )
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="grid")
    parser.add_argument("--n", type=int, default=64, help="number of nodes")
    parser.add_argument(
        "--protocol",
        choices=runners.BROADCAST_PROTOCOL_NAMES,
        default="decay",
        help="broadcast protocol to run (default: decay)",
    )
    parser.add_argument("--seed", type=_seed, default=0, help="run seed (topology + coins)")
    parser.add_argument(
        "--messages",
        type=_positive,
        default=1,
        metavar="K",
        help="number of distinct messages to broadcast (protocols with "
        "k-message support, e.g. multimessage; default: 1)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="override the protocol's round budget (e.g. to force a failure); "
        "must be positive",
    )
    parser.add_argument(
        "--preset",
        choices=("paper", "fast"),
        default="fast",
        help="ProtocolParams preset (default: fast)",
    )
    parser.add_argument("--p", type=float, default=None, help="edge probability for gnp")
    parser.add_argument("--radius", type=float, default=None, help="radius for unit_disk")
    parser.add_argument(
        "--collision-detection",
        action="store_true",
        help="model collision detection (Decay ignores it; ghk always has it)",
    )
    parser.add_argument(
        "--engine",
        choices=("array", "object"),
        default="array",
        help="execution path: array-native batch engine (default) or "
        "per-node protocol objects; results are identical",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "dense", "sparse", "bitpacked"),
        default="auto",
        help="channel-kernel backend: auto (default) picks dense, sparse "
        "CSR, or bit-packed popcount per topology density and size; "
        "results are identical either way",
    )
    parser.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability each non-source node crashes for one window "
        "of the run (seeded fault injection; default: 0)",
    )
    parser.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability each clean reception is independently dropped "
        "(default: 0)",
    )
    parser.add_argument(
        "--jammers",
        type=int,
        default=0,
        metavar="J",
        help="number of always-on jamming nodes (never the source); every "
        "listener they cover perceives a collision (default: 0)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the simsan runtime sanitizer: per-round invariant "
        "and differential-backend checks (see repro.analysis.simsan)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of prose",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="log every round's ground truth (transmitters/deliveries/collisions)",
    )
    return parser


# Both trace renderings come from RoundStats.as_row() — one row schema,
# so the prose and JSON traces cannot drift apart.
def _print_trace(history: Sequence[RoundStats]) -> None:
    for stats in history:
        row = stats.as_row()
        print(
            f"round {row['round']:>4d}: "
            f"tx={row['transmitters']} "
            f"deliveries={row['deliveries']} "
            f"collisions={row['collisions']}"
        )


def _trace_rows(history: Sequence[RoundStats]) -> list[dict]:
    return [stats.as_row() for stats in history]


def _traffic_payload(sim: SimResult | None) -> dict | None:
    """Per-node traffic/energy totals of a run, or ``None`` without a sim."""
    if sim is None or sim.traffic is None:
        return None
    return sim.traffic.as_dict()


def _fault_totals_payload(sim: SimResult | None) -> dict | None:
    """Injected-fault totals of a run, or ``None`` on fault-free runs."""
    if sim is None or sim.faults is None:
        return None
    return sim.faults.as_dict()


def _telemetry_payload(wall_seconds: float, rounds: int | None, engine_telemetry: dict) -> dict:
    """Wall-clock observables: demo-level wall time plus engine phase timers.

    ``phase_seconds`` is only available on the array path (the object
    drivers own their engines), so it is ``None`` for ``--engine object``.
    """
    rps = (
        round(rounds / wall_seconds, 1)
        if rounds and wall_seconds > 0
        else None
    )
    return {
        "wall_seconds": round(wall_seconds, 6),
        "rounds_per_sec": rps,
        "phase_seconds": engine_telemetry.get("phase_seconds"),
    }


def _usage_error(args: argparse.Namespace, message: str) -> int:
    """Report a pre-run input error: JSON ``status: "error"`` or stderr prose."""
    if args.json:
        print(
            json.dumps(
                {
                    "status": "error",
                    "protocol": args.protocol,
                    "topology": args.topology,
                    "n": args.n,
                    "seed": args.seed,
                    "error": message,
                },
                indent=2,
            )
        )
    else:
        print(f"error: {message}", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.budget is not None and args.budget < 1:
        # Rejected up front with a clean usage error — letting a
        # non-positive budget through would surface as a confusing
        # BroadcastFailure ("0 rounds were not enough").
        return _usage_error(
            args, f"--budget must be a positive round count, got {args.budget}"
        )
    for flag, rate in (("--crash-rate", args.crash_rate), ("--loss-rate", args.loss_rate)):
        if not 0.0 <= rate <= 1.0:
            return _usage_error(args, f"{flag} must be in [0, 1], got {rate}")
    if args.jammers < 0:
        return _usage_error(args, f"--jammers must be non-negative, got {args.jammers}")
    if args.jammers >= args.n:
        return _usage_error(
            args,
            f"--jammers {args.jammers} needs at least {args.jammers + 1} nodes "
            f"(the source is never a jammer), got --n {args.n}",
        )
    params = ProtocolParams.paper() if args.preset == "paper" else ProtocolParams.fast()
    params = params.with_overrides(channel_backend=args.backend)
    spec = runners.broadcast_spec(args.protocol)
    options = {}
    if "k_messages" in spec.option_names:
        options["k_messages"] = args.messages
    elif args.messages != 1:
        return _usage_error(
            args,
            f"protocol {args.protocol!r} does not support --messages; "
            "choose a k-message protocol (e.g. multimessage)",
        )
    try:
        net = from_spec(args.topology, args.n, seed=args.seed, p=args.p, radius=args.radius)
    except TopologyError as exc:
        return _usage_error(args, f"topology error: {exc}")
    if not args.json:
        print(
            f"{net.name}: n={net.n} edges={net.num_edges} "
            f"source-ecc={net.eccentricity()} diameter={net.diameter()}"
        )
    # Protocols that require collision detection always model it; for the
    # rest (Decay, which ignores it anyway) it is the caller's choice.
    collision_detection = (
        True if spec.requires_collision_detection else args.collision_detection
    )
    # All knobs at zero means no schedule at all (not an empty one), so
    # the default demo run is bitwise-identical to the pre-fault CLI.
    faults = None
    if args.crash_rate > 0 or args.loss_rate > 0 or args.jammers > 0:
        horizon = (
            args.budget
            if args.budget is not None
            else spec.budget_for(params, net, net.n, options)
        )
        faults = sample_fault_schedule(
            net,
            seed=args.seed,
            horizon=horizon,
            crash_rate=args.crash_rate,
            loss_rate=args.loss_rate,
            jammers=args.jammers,
        )
    # Report both the requested backend policy and the backend it resolves
    # to on this topology, so --backend auto payloads are self-describing.
    payload = {
        "protocol": args.protocol,
        "engine": args.engine,
        "backend": args.backend,
        "backend_resolved": resolve_channel_backend(net, params),
        "topology": net.name,
        "n": net.n,
        "edges": net.num_edges,
        "source_eccentricity": net.eccentricity(),
        "diameter": net.diameter(),
        "seed": args.seed,
        "messages": args.messages,
        "preset": args.preset,
        "collision_detection": collision_detection,
        "sanitized": args.sanitize,
        "faults": {
            "crash_rate": args.crash_rate,
            "loss_rate": args.loss_rate,
            "jammers": args.jammers,
        },
    }
    engine_telemetry: dict = {}
    t0 = time.perf_counter()
    try:
        result = run_broadcast(
            args.protocol,
            net,
            params,
            seed=args.seed,
            engine=args.engine,
            collision_detection=collision_detection,
            budget=args.budget,
            trace=args.trace,
            options=options,
            telemetry=engine_telemetry if args.engine == "array" else None,
            faults=faults,
            # None (not False) without the flag, so REPRO_SANITIZE still
            # opts un-flagged demo runs in.
            sanitize=True if args.sanitize else None,
        )
    except BroadcastFailure as exc:
        wall_seconds = time.perf_counter() - t0
        # The failure carries the executed rounds, so --trace still shows
        # what happened — the case where a trace is most useful.
        sim = exc.sim
        history = sim.history if sim is not None else ()
        if args.json:
            # Same shape as the success payload (shared keys + status
            # discriminator) so one consumer schema parses both.
            payload.update(
                status="failed",
                budget=exc.budget,
                rounds_run=sim.rounds_run if sim is not None else None,
                transmissions=sim.total_transmissions if sim is not None else None,
                deliveries=sim.total_deliveries if sim is not None else None,
                collisions=sim.total_collisions if sim is not None else None,
                error=str(exc),
                undelivered=sorted(exc.undelivered),
                traffic=_traffic_payload(sim),
                fault_totals=_fault_totals_payload(sim),
                telemetry=_telemetry_payload(
                    wall_seconds,
                    sim.rounds_run if sim is not None else None,
                    engine_telemetry,
                ),
            )
            if args.trace:
                payload["trace"] = _trace_rows(history)
            print(json.dumps(payload, indent=2))
        else:
            if args.trace:
                _print_trace(history)
            print(f"FAILED: {exc} (undelivered: {sorted(exc.undelivered)})", file=sys.stderr)
        return 1
    wall_seconds = time.perf_counter() - t0
    if args.trace and not args.json:
        _print_trace(result.sim.history)
    if args.json:
        payload.update(
            status="delivered",
            budget=result.budget,
            rounds_run=result.sim.rounds_run,
            transmissions=result.sim.total_transmissions,
            deliveries=result.sim.total_deliveries,
            collisions=result.sim.total_collisions,
            rounds_to_delivery=result.rounds_to_delivery,
            informed_rounds=list(result.informed_rounds),
            traffic=_traffic_payload(result.sim),
            fault_totals=_fault_totals_payload(result.sim),
            telemetry=_telemetry_payload(
                wall_seconds, result.sim.rounds_run, engine_telemetry
            ),
        )
        if isinstance(result, DecayResult):
            payload.update(
                phase_length=result.phase_length,
                phases_to_delivery=result.phases_to_delivery,
            )
        elif isinstance(result, (GHKResult, MultiMessageResult)):
            if isinstance(result, MultiMessageResult):
                payload.update(k_messages=result.k_messages)
            payload.update(
                wave_depth=max(result.wave_distances),
                wave_spacing=result.wave_spacing,
            )
        if args.trace:
            payload["trace"] = _trace_rows(result.sim.history)
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.protocol}: delivered to all {result.n} nodes in "
        f"{result.rounds_to_delivery} rounds within budget {result.budget}"
    )
    if isinstance(result, DecayResult):
        print(
            f"{result.phases_to_delivery} Decay phases of {result.phase_length} rounds"
        )
    elif isinstance(result, (GHKResult, MultiMessageResult)):
        pipelined = (
            f"{result.k_messages} messages pipelined, "
            if isinstance(result, MultiMessageResult)
            else ""
        )
        print(
            f"{pipelined}wave depth {max(result.wave_distances)}, "
            f"layer-slot period {result.wave_spacing}"
        )
    print(
        f"transmissions={result.sim.total_transmissions} "
        f"deliveries={result.sim.total_deliveries} "
        f"collisions={result.sim.total_collisions}"
    )
    fault_totals = result.sim.faults
    if fault_totals is not None:
        print(
            f"faults: dropped={fault_totals.dropped_receptions} "
            f"jammed={fault_totals.jammed_listens} "
            f"crashed-node-rounds={fault_totals.crashed_node_rounds}"
        )
    traffic = result.sim.traffic
    if traffic is not None:
        rounds = result.sim.rounds_run
        rps = f"{rounds / wall_seconds:.1f}" if wall_seconds > 0 else "-"
        print(
            f"energy={traffic.energy} awake slots "
            f"({traffic.energy / result.n:.1f}/node over {rounds} rounds)  "
            f"throughput={rps} rounds/sec"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
