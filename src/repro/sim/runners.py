"""Broadcast driver dispatch, shared driver plumbing, and the batch API.

Three layers live here:

* **Specs.**  A :class:`BroadcastSpec` bundles everything a protocol needs
  to be driven end-to-end — its object runner (``run_decay``,
  ``run_ghk_broadcast``, ...), its array-protocol factory, its round-budget
  rule, its collision-detection requirements, and its result builder.
  Algorithm modules register their spec at import time; the lookup
  functions lazily import them so ``runners`` never imports an algorithm
  module at its own import time (which would be circular — the algorithm
  modules import the shared helpers below).

* **Shared driver preamble.**  :func:`prepare_broadcast_engine` is the
  once-copy-pasted head of every object-path ``run_*`` driver: resolve the
  params preset, the public size bound, and the round budget; choose the
  collision-detection setting; build one protocol instance per node; and
  construct the :class:`~repro.sim.engine.Engine`.

* **Batch execution.**  :func:`run_broadcast_batch` drives any number of
  (network, seed) instances of one protocol through the array-native
  :class:`~repro.sim.core.batch.BatchEngine` — one process, per-topology
  fused kernel calls, early exit per instance — and returns per-instance
  results; :func:`run_broadcast` is the single-instance convenience used
  by the demo CLI.  Array runs are bitwise-equivalent to the object path
  on the same seeds (see ``tests/test_equivalence.py``), just much faster.

Every result object exposes at least ``rounds_to_delivery``,
``informed_rounds``, ``budget`` and ``sim``, which is what the demo CLI
and the experiments harness rely on to treat protocols uniformly.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BroadcastFailure, ConfigurationError, SimulationError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import BroadcastArrayProtocol
from repro.sim.core.batch import BatchEngine, BatchItem
from repro.sim.core.stats import RoundStats, SimResult
from repro.sim.engine import Engine
from repro.sim.faults import FaultSchedule
from repro.sim.protocol import BroadcastProtocol
from repro.sim.topology import RadioNetwork

__all__ = [
    "BROADCAST_RUNNERS",
    "BROADCAST_PROTOCOL_NAMES",
    "BroadcastSpec",
    "broadcast_runner",
    "broadcast_spec",
    "prepare_broadcast_engine",
    "register_broadcast_spec",
    "run_broadcast",
    "run_broadcast_batch",
]

#: All runnable broadcast protocol names, sorted; rebound on every spec
#: registration so it always mirrors the registry (read it as
#: ``runners.BROADCAST_PROTOCOL_NAMES`` at use time, not via a from-import
#: snapshot, if registrations may happen after your module loads).
BROADCAST_PROTOCOL_NAMES: tuple[str, ...] = ()

#: Broadcast object-path drivers by protocol name, populated by spec
#: registration; each uses the collision-detection setting its protocol is
#: designed for (Decay is collision-blind, GHK requires detection).
BROADCAST_RUNNERS: dict[str, Callable[..., Any]] = {}


@dataclass(frozen=True)
class BroadcastSpec:
    """Everything needed to drive one broadcast protocol end-to-end."""

    name: str
    #: human-readable label used in failure messages ("Decay", "GHK").
    label: str
    #: the object-path driver (``run_decay``-shaped signature).
    runner: Callable[..., Any]
    #: per-node object protocol factory, called with ``message=...`` plus
    #: any per-run options the spec declares in :attr:`option_names`.
    protocol_factory: Callable[..., BroadcastProtocol]
    #: whole-network array protocol factory, called with ``message=...``
    #: plus the same per-run options.
    array_factory: Callable[..., BroadcastArrayProtocol]
    #: default round budget: ``(params, network, n_bound, options) -> rounds``.
    budget_for: Callable[[ProtocolParams, RadioNetwork, int, Mapping[str, Any]], int]
    #: collision-detection setting used when the caller does not choose.
    default_collision_detection: bool
    #: whether the protocol is only correct *with* collision detection.
    requires_collision_detection: bool
    #: build the protocol's result object after a successful array run:
    #: ``(spec_run_info) -> result``; see :func:`run_broadcast_batch`.
    build_result: Callable[["BroadcastRun"], Any]
    #: per-run option names this protocol accepts (e.g. ``k_messages``);
    #: the run APIs reject options outside this set up front.
    option_names: frozenset[str] = frozenset()


@dataclass(frozen=True)
class BroadcastRun:
    """The ingredients a :attr:`BroadcastSpec.build_result` hook receives."""

    network: RadioNetwork
    seed: int
    budget: int
    params: ProtocolParams
    n_bound: int
    protocol: BroadcastArrayProtocol
    sim: SimResult
    #: the per-run options the instance was built with (``{}`` when none).
    options: Mapping[str, Any] = field(default_factory=dict)


_SPECS: dict[str, BroadcastSpec] = {}


def _resolve_options(
    spec: BroadcastSpec, options: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Validate per-run options against the spec's declared option names."""
    if options is None:
        return {}
    unknown = sorted(set(options) - spec.option_names)
    if unknown:
        supported = sorted(spec.option_names) or "none"
        raise ConfigurationError(
            f"{spec.label} does not accept option(s) {unknown}; supported: {supported}"
        )
    return dict(options)


def _default_budget(
    spec: BroadcastSpec,
    params: ProtocolParams,
    network: RadioNetwork,
    bound: int,
    options: Mapping[str, Any],
    faults: FaultSchedule | None,
) -> int:
    """The spec's budget rule, scaled by the fault slack on faulted runs.

    An explicit caller budget is never scaled — only the default — and a
    missing or empty schedule leaves the default untouched, so fault-free
    budgets are bit-for-bit what they were.
    """
    budget = spec.budget_for(params, network, bound, options)
    if faults is not None and not faults.is_empty and params.fault_budget_slack != 1.0:
        budget = int(math.ceil(budget * params.fault_budget_slack))
    return budget


def register_broadcast_spec(spec: BroadcastSpec) -> BroadcastSpec:
    """Register a protocol's driver spec (called by the algorithm modules)."""
    global BROADCAST_PROTOCOL_NAMES
    if spec.name in _SPECS:
        raise ConfigurationError(
            f"broadcast protocol {spec.name!r} is already registered"
        )
    _SPECS[spec.name] = spec
    BROADCAST_RUNNERS[spec.name] = spec.runner
    BROADCAST_PROTOCOL_NAMES = tuple(sorted(_SPECS))
    return spec


def _ensure_specs_loaded() -> None:
    # The algorithm modules register their specs at import time; importing
    # them here (instead of at module top) keeps runners <-> algorithms
    # acyclic while making every lookup self-sufficient.
    import repro.sim.decay  # noqa: F401
    import repro.sim.ghk_broadcast  # noqa: F401
    import repro.sim.multi_message  # noqa: F401


def broadcast_spec(name: str) -> BroadcastSpec:
    """Look up a broadcast driver spec by protocol name."""
    _ensure_specs_loaded()
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown broadcast protocol {name!r}; "
            f"choose from {BROADCAST_PROTOCOL_NAMES}"
        ) from None


def broadcast_runner(name: str) -> Callable[..., Any]:
    """Look up a broadcast object-path driver by protocol name."""
    return broadcast_spec(name).runner


# ---------------------------------------------------------------------- #
# Shared object-path driver preamble
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PreparedBroadcast:
    """The fully-resolved head of one object-path broadcast run."""

    engine: Engine
    protocols: tuple[BroadcastProtocol, ...]
    params: ProtocolParams
    n_bound: int
    budget: int
    collision_detection: bool


def prepare_broadcast_engine(
    spec: BroadcastSpec,
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    collision_detection: bool | None = None,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    options: Mapping[str, Any] | None = None,
    faults: FaultSchedule | None = None,
    sanitize: bool | None = None,
) -> PreparedBroadcast:
    """Resolve defaults and build the engine for one object-path run.

    This is the driver preamble shared by every ``run_*`` broadcast driver:
    params preset, public size bound, round budget via the spec's budget
    rule, collision-detection choice (the spec's default unless the caller
    picks, with a hard requirement check), one protocol instance per node,
    and the :class:`Engine` wiring them together.  ``options`` carries
    per-run protocol options (validated against the spec's
    :attr:`~BroadcastSpec.option_names`) into the protocol factory and the
    budget rule.
    """
    if message is None:
        raise ConfigurationError(
            f"{spec.runner.__name__} needs a non-None message to broadcast"
        )
    if collision_detection is None:
        collision_detection = spec.default_collision_detection
    if spec.requires_collision_detection and not collision_detection:
        raise ConfigurationError(
            f"{spec.label} requires collision detection; "
            f"{spec.runner.__name__} cannot model a collision-blind channel"
        )
    options = _resolve_options(spec, options)
    params = params if params is not None else ProtocolParams.paper()
    bound = n_bound if n_bound is not None else network.n
    if budget is None:
        budget = _default_budget(spec, params, network, bound, options, faults)
    protocols = tuple(
        spec.protocol_factory(message=message, **options) for _ in range(network.n)
    )
    engine = Engine(
        network,
        protocols,
        seed=seed,
        collision_detection=collision_detection,
        params=params,
        n_bound=bound,
        trace=trace,
        faults=faults,
        sanitize=sanitize,
    )
    return PreparedBroadcast(
        engine=engine,
        protocols=protocols,
        params=params,
        n_bound=bound,
        budget=budget,
        collision_detection=collision_detection,
    )


# ---------------------------------------------------------------------- #
# Array-native batch execution
# ---------------------------------------------------------------------- #
def run_broadcast_batch(
    protocol: str,
    networks: Sequence[RadioNetwork],
    *,
    seeds: Sequence[int] | None = None,
    params: ProtocolParams | None = None,
    message: Any = "broadcast",
    collision_detection: bool | None = None,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    options: Mapping[str, Any] | None = None,
    observers: Sequence[Callable[[int, RoundStats], None]] | None = None,
    telemetry: dict | None = None,
    faults: FaultSchedule | Sequence[FaultSchedule | None] | None = None,
    sanitize: bool | None = None,
) -> list[Any]:
    """Run one broadcast instance per (network, seed) through the batch engine.

    Returns one entry per instance, in order: the protocol's result object
    on success, or the :class:`~repro.errors.BroadcastFailure` (as a value,
    not raised) when the instance exhausted its budget — sweeps count
    failures rather than crash, exactly like the object-path harnesses.
    ``options`` carries per-run protocol options (e.g. ``k_messages`` for
    the multi-message broadcast) into every instance's protocol factory and
    budget rule.  ``observers`` stream every executed round as
    ``(instance_index, RoundStats)`` in O(1) memory; passing a dict as
    ``telemetry`` fills it with the batch's wall-clock observables
    (:meth:`~repro.sim.core.stats.RunTelemetry.as_dict`) after the run.
    ``faults`` attaches fault schedules (see :mod:`repro.sim.faults`):
    one schedule shared by every instance, or a sequence with one entry
    (possibly ``None``) per instance.  ``sanitize`` opts every instance
    into the runtime sanitizer (``None`` defers to ``REPRO_SANITIZE``).
    """
    spec = broadcast_spec(protocol)
    if seeds is None:
        seeds = range(len(networks))
    seeds = list(seeds)
    if len(seeds) != len(networks):
        raise ConfigurationError(
            f"need one seed per network: got {len(seeds)} seeds "
            f"for {len(networks)} networks"
        )
    if faults is None or isinstance(faults, FaultSchedule):
        fault_list: list[FaultSchedule | None] = [faults] * len(networks)
    else:
        fault_list = list(faults)
        if len(fault_list) != len(networks):
            raise ConfigurationError(
                f"need one fault schedule per network: got {len(fault_list)} "
                f"schedules for {len(networks)} networks"
            )
    if collision_detection is None:
        collision_detection = spec.default_collision_detection
    if spec.requires_collision_detection and not collision_detection:
        raise ConfigurationError(
            f"{spec.label} requires collision detection; "
            f"run_broadcast_batch cannot model a collision-blind channel for it"
        )
    options = _resolve_options(spec, options)
    params = params if params is not None else ProtocolParams.paper()
    items: list[BatchItem] = []
    for net, seed, schedule in zip(networks, seeds, fault_list):
        bound = n_bound if n_bound is not None else net.n
        items.append(
            BatchItem(
                network=net,
                protocol=spec.array_factory(message=message, **options),
                budget=(
                    budget
                    if budget is not None
                    else _default_budget(spec, params, net, bound, options, schedule)
                ),
                seed=seed,
                collision_detection=collision_detection,
                params=params,
                n_bound=bound,
                tag=seed,
                faults=schedule,
            )
        )
    batch = BatchEngine(items, trace=trace, observers=observers, sanitize=sanitize)
    outcomes = batch.run()
    if telemetry is not None:
        telemetry.update(batch.telemetry().as_dict())
    results: list[Any] = []
    for outcome in outcomes:
        item = outcome.item
        proto = item.protocol
        if not isinstance(proto, BroadcastArrayProtocol):
            raise SimulationError(
                f"broadcast batch yielded {type(proto).__name__}, "
                "not a BroadcastArrayProtocol"
            )
        if not outcome.completed:
            undelivered = proto.undelivered()
            results.append(
                BroadcastFailure(
                    f"{spec.label} on {item.network.name} (seed={item.seed}) left "
                    f"{len(undelivered)} of {item.network.n} nodes uninformed "
                    f"after {item.budget} rounds",
                    undelivered,
                    sim=outcome.sim,
                    budget=item.budget,
                )
            )
            continue
        results.append(
            spec.build_result(
                BroadcastRun(
                    # params/n_bound were resolved when the item was built,
                    # so they are never None here.
                    network=item.network,
                    seed=item.seed,
                    budget=item.budget,
                    params=item.params,
                    n_bound=item.n_bound,
                    protocol=proto,
                    sim=outcome.sim,
                    options=options,
                )
            )
        )
    return results


def run_broadcast(
    protocol: str,
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    engine: str = "array",
    message: Any = "broadcast",
    collision_detection: bool | None = None,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    options: Mapping[str, Any] | None = None,
    observers: Sequence[Callable[[int, RoundStats], None]] | None = None,
    telemetry: dict | None = None,
    faults: FaultSchedule | None = None,
    sanitize: bool | None = None,
) -> Any:
    """Run one broadcast end-to-end on the chosen execution path.

    ``engine="array"`` (the default) goes through the batch engine;
    ``engine="object"`` dispatches to the protocol's classic per-node
    driver.  Both paths produce the same result values on the same seed and
    raise :class:`~repro.errors.BroadcastFailure` on an undelivered run.
    Per-run ``options`` (validated against the spec) reach the protocol on
    either path — object drivers accept them as keyword arguments.
    ``observers``/``telemetry`` stream rounds and collect wall-clock
    observables on the array path (the single instance has index 0);
    they are rejected for ``engine="object"``, whose drivers own their
    engines — drive an :class:`~repro.sim.engine.Engine` directly for
    object-path observation.
    """
    if engine == "object":
        if observers is not None or telemetry is not None:
            raise ConfigurationError(
                "observers/telemetry are array-path features; the object "
                "drivers own their engines (build an Engine directly instead)"
            )
        spec = broadcast_spec(protocol)
        kwargs: dict[str, Any] = _resolve_options(spec, options)
        if collision_detection is not None:
            kwargs["collision_detection"] = collision_detection
        if faults is not None:
            kwargs["faults"] = faults
        if sanitize is not None:
            kwargs["sanitize"] = sanitize
        return spec.runner(
            network,
            params,
            seed=seed,
            message=message,
            n_bound=n_bound,
            budget=budget,
            trace=trace,
            **kwargs,
        )
    if engine != "array":
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose 'array' or 'object'"
        )
    (result,) = run_broadcast_batch(
        protocol,
        [network],
        seeds=[seed],
        params=params,
        message=message,
        collision_detection=collision_detection,
        n_bound=n_bound,
        budget=budget,
        trace=trace,
        options=options,
        observers=observers,
        telemetry=telemetry,
        faults=faults,
        sanitize=sanitize,
    )
    if isinstance(result, BroadcastFailure):
        raise result
    return result
