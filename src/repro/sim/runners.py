"""Name-based dispatch of end-to-end broadcast drivers.

The protocol registry (:mod:`repro.sim.protocol`) maps names to per-node
``Protocol`` classes; this module maps the same names to the *drivers*
(``run_decay``, ``run_ghk_broadcast``, ...) that build a full protocol
array, pick a round budget, run the engine, and either return a result
object or raise :class:`~repro.errors.BroadcastFailure`.  Every driver
shares the signature::

    runner(network, params=None, *, seed=0, message="broadcast",
           n_bound=None, budget=None, trace=False, ...)

and every result object exposes at least ``rounds_to_delivery``,
``informed_rounds``, ``budget`` and ``sim``, which is what the demo CLI
and the experiments harness rely on to treat protocols uniformly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ConfigurationError
from repro.sim.decay import run_decay
from repro.sim.ghk_broadcast import run_ghk_broadcast

__all__ = ["BROADCAST_RUNNERS", "BROADCAST_PROTOCOL_NAMES", "broadcast_runner"]

#: Broadcast drivers by protocol name; each uses the collision-detection
#: setting its protocol is designed for (Decay is collision-blind, GHK
#: requires detection).
BROADCAST_RUNNERS: dict[str, Callable[..., Any]] = {
    "decay": run_decay,
    "ghk": run_ghk_broadcast,
}

#: All runnable broadcast protocol names, sorted.
BROADCAST_PROTOCOL_NAMES: tuple[str, ...] = tuple(sorted(BROADCAST_RUNNERS))


def broadcast_runner(name: str) -> Callable[..., Any]:
    """Look up a broadcast driver by protocol name."""
    try:
        return BROADCAST_RUNNERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown broadcast protocol {name!r}; "
            f"choose from {BROADCAST_PROTOCOL_NAMES}"
        ) from None
