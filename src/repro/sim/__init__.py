"""Round-synchronous radio-network simulation subsystem.

Layers, bottom-up:

* :mod:`repro.sim.rng` — seeded per-node random streams (reproducibility);
* :mod:`repro.sim.topology` — :class:`RadioNetwork` and graph generators;
* :mod:`repro.sim.protocol` — the per-node protocol API and registry;
* :mod:`repro.sim.core` — the array-native execution core: the batched
  channel kernel, the :class:`ArrayProtocol` API, the object-protocol
  adapter, and the single/batch array engines;
* :mod:`repro.sim.engine` — the per-node object round loop, a shell over
  the core's kernel and adapter;
* :mod:`repro.sim.decay` — the collision-blind Decay baseline (BGI 1992);
* :mod:`repro.sim.beepwave` — the collision-detection beep-wave layer:
  1-bit pulses that advance one hop per round and synchronize the network;
* :mod:`repro.sim.ghk_broadcast` — the paper's broadcast on top of the
  wave: layered slot schedule + decay backoff, ``O(D + log^2 n)``;
* :mod:`repro.sim.multi_message` — the k-message pipeline on the same
  schedule: one message per owned slot, ``O(D + k log n + log^2 n)``;
* :mod:`repro.sim.runners` — driver dispatch, the shared driver preamble,
  and the array-native batch execution API.
"""

from repro.sim.beepwave import (
    WAVE_PULSE,
    BeepWaveArrayProtocol,
    BeepWaveProtocol,
    BeepWaveResult,
    in_layer_slot,
    is_beep,
    run_beep_wave,
)
from repro.sim.core import (
    ArrayContext,
    ArrayEngine,
    ArrayProtocol,
    BatchEngine,
    BatchItem,
    BatchOutcome,
    BitOperand,
    BroadcastArrayProtocol,
    ChannelRound,
    CoinDeck,
    DenseOperand,
    FaultTotals,
    ObjectProtocolAdapter,
    RoundPlan,
    SparseOperand,
    array_protocol_class,
    available_array_protocols,
    register_array_protocol,
    resolve_channel,
    resolve_channel_backend,
    select_kernel_operand,
)
from repro.sim.decay import DecayArrayProtocol, DecayProtocol, DecayResult, run_decay
from repro.sim.engine import Engine, RoundStats, SimResult, run_until_all_informed
from repro.sim.faults import (
    EdgeFlip,
    FaultSchedule,
    FaultState,
    Jammer,
    NodeCrash,
    sample_fault_schedule,
)
from repro.sim.ghk_broadcast import (
    GHKArrayProtocol,
    GHKBroadcastProtocol,
    GHKResult,
    run_ghk_broadcast,
)
from repro.sim.multi_message import (
    MultiMessageArrayProtocol,
    MultiMessageProtocol,
    MultiMessageResult,
    run_multi_message,
)
from repro.sim.protocol import (
    Action,
    ActionKind,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
    available_protocols,
    protocol_class,
    register_protocol,
)
from repro.sim.rng import SeededStreams, node_streams, stream
from repro.sim.runners import (
    BROADCAST_PROTOCOL_NAMES,
    BROADCAST_RUNNERS,
    BroadcastSpec,
    broadcast_runner,
    broadcast_spec,
    prepare_broadcast_engine,
    register_broadcast_spec,
    run_broadcast,
    run_broadcast_batch,
)
from repro.sim.topology import (
    TOPOLOGY_NAMES,
    RadioNetwork,
    dumbbell,
    from_spec,
    gnp,
    grid2d,
    line,
    ring,
    star,
    unit_disk,
)

__all__ = [
    "Action",
    "ActionKind",
    "ArrayContext",
    "ArrayEngine",
    "ArrayProtocol",
    "BROADCAST_PROTOCOL_NAMES",
    "BROADCAST_RUNNERS",
    "BatchEngine",
    "BitOperand",
    "BatchItem",
    "BatchOutcome",
    "BeepWaveArrayProtocol",
    "BeepWaveProtocol",
    "BeepWaveResult",
    "BroadcastArrayProtocol",
    "BroadcastProtocol",
    "BroadcastSpec",
    "ChannelRound",
    "CoinDeck",
    "DecayArrayProtocol",
    "DecayProtocol",
    "DecayResult",
    "DenseOperand",
    "EdgeFlip",
    "Engine",
    "FaultSchedule",
    "FaultState",
    "FaultTotals",
    "Feedback",
    "FeedbackKind",
    "GHKArrayProtocol",
    "GHKBroadcastProtocol",
    "GHKResult",
    "Jammer",
    "MultiMessageArrayProtocol",
    "MultiMessageProtocol",
    "MultiMessageResult",
    "NodeContext",
    "NodeCrash",
    "ObjectProtocolAdapter",
    "Protocol",
    "RadioNetwork",
    "RoundPlan",
    "RoundStats",
    "SeededStreams",
    "SimResult",
    "SparseOperand",
    "TOPOLOGY_NAMES",
    "WAVE_PULSE",
    "array_protocol_class",
    "available_array_protocols",
    "available_protocols",
    "broadcast_runner",
    "broadcast_spec",
    "dumbbell",
    "from_spec",
    "gnp",
    "grid2d",
    "in_layer_slot",
    "is_beep",
    "line",
    "node_streams",
    "prepare_broadcast_engine",
    "protocol_class",
    "register_array_protocol",
    "register_broadcast_spec",
    "register_protocol",
    "resolve_channel",
    "resolve_channel_backend",
    "ring",
    "run_beep_wave",
    "run_broadcast",
    "run_broadcast_batch",
    "run_decay",
    "run_ghk_broadcast",
    "run_multi_message",
    "run_until_all_informed",
    "sample_fault_schedule",
    "select_kernel_operand",
    "star",
    "stream",
    "unit_disk",
]
