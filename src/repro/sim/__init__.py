"""Round-synchronous radio-network simulation subsystem.

Layers, bottom-up:

* :mod:`repro.sim.rng` — seeded per-node random streams (reproducibility);
* :mod:`repro.sim.topology` — :class:`RadioNetwork` and graph generators;
* :mod:`repro.sim.protocol` — the per-node protocol API and registry;
* :mod:`repro.sim.engine` — the vectorized round loop and channel model;
* :mod:`repro.sim.decay` — the collision-blind Decay baseline (BGI 1992);
* :mod:`repro.sim.beepwave` — the collision-detection beep-wave layer:
  1-bit pulses that advance one hop per round and synchronize the network;
* :mod:`repro.sim.ghk_broadcast` — the paper's broadcast on top of the
  wave: layered slot schedule + decay backoff, ``O(D + log^2 n)``;
* :mod:`repro.sim.runners` — name-based dispatch of the ``run_*`` drivers.
"""

from repro.sim.beepwave import (
    WAVE_PULSE,
    BeepWaveProtocol,
    BeepWaveResult,
    in_layer_slot,
    is_beep,
    run_beep_wave,
)
from repro.sim.decay import DecayProtocol, DecayResult, run_decay
from repro.sim.engine import Engine, RoundStats, SimResult
from repro.sim.ghk_broadcast import GHKBroadcastProtocol, GHKResult, run_ghk_broadcast
from repro.sim.protocol import (
    Action,
    ActionKind,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
    available_protocols,
    protocol_class,
    register_protocol,
)
from repro.sim.rng import SeededStreams, node_streams, stream
from repro.sim.runners import (
    BROADCAST_PROTOCOL_NAMES,
    BROADCAST_RUNNERS,
    broadcast_runner,
)
from repro.sim.topology import (
    TOPOLOGY_NAMES,
    RadioNetwork,
    dumbbell,
    from_spec,
    gnp,
    grid2d,
    line,
    ring,
    star,
    unit_disk,
)

__all__ = [
    "Action",
    "ActionKind",
    "BROADCAST_PROTOCOL_NAMES",
    "BROADCAST_RUNNERS",
    "BeepWaveProtocol",
    "BeepWaveResult",
    "BroadcastProtocol",
    "DecayProtocol",
    "DecayResult",
    "Engine",
    "Feedback",
    "FeedbackKind",
    "GHKBroadcastProtocol",
    "GHKResult",
    "NodeContext",
    "Protocol",
    "RadioNetwork",
    "RoundStats",
    "SeededStreams",
    "SimResult",
    "TOPOLOGY_NAMES",
    "WAVE_PULSE",
    "available_protocols",
    "broadcast_runner",
    "dumbbell",
    "from_spec",
    "gnp",
    "grid2d",
    "in_layer_slot",
    "is_beep",
    "line",
    "node_streams",
    "protocol_class",
    "register_protocol",
    "ring",
    "run_beep_wave",
    "run_decay",
    "run_ghk_broadcast",
    "star",
    "stream",
    "unit_disk",
]
