"""Round-synchronous radio-network simulation subsystem.

Layers, bottom-up:

* :mod:`repro.sim.rng` — seeded per-node random streams (reproducibility);
* :mod:`repro.sim.topology` — :class:`RadioNetwork` and graph generators;
* :mod:`repro.sim.protocol` — the per-node protocol API and registry;
* :mod:`repro.sim.engine` — the vectorized round loop and channel model;
* :mod:`repro.sim.decay` — the first protocol on the engine (Decay).
"""

from repro.sim.decay import DecayProtocol, DecayResult, run_decay
from repro.sim.engine import Engine, RoundStats, SimResult
from repro.sim.protocol import (
    Action,
    ActionKind,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
    available_protocols,
    protocol_class,
    register_protocol,
)
from repro.sim.rng import SeededStreams, node_streams, stream
from repro.sim.topology import (
    TOPOLOGY_NAMES,
    RadioNetwork,
    dumbbell,
    from_spec,
    gnp,
    grid2d,
    line,
    ring,
    star,
    unit_disk,
)

__all__ = [
    "Action",
    "ActionKind",
    "DecayProtocol",
    "DecayResult",
    "Engine",
    "Feedback",
    "FeedbackKind",
    "NodeContext",
    "Protocol",
    "RadioNetwork",
    "RoundStats",
    "SeededStreams",
    "SimResult",
    "TOPOLOGY_NAMES",
    "available_protocols",
    "dumbbell",
    "from_spec",
    "gnp",
    "grid2d",
    "line",
    "node_streams",
    "protocol_class",
    "register_protocol",
    "ring",
    "run_decay",
    "star",
    "stream",
    "unit_disk",
]
