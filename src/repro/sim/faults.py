"""Seeded fault injection: crashes, dynamic edges, message loss, jammers.

The simulator's channel kernel reports the *physics* of a round; this
module injects the ways real deployments deviate from the clean model,
as a declarative, seed-reproducible :class:`FaultSchedule`:

* **Node crashes** (:class:`NodeCrash`) — a crashed node's transmit and
  listen masks are forced off for every round in its down window, so it
  sends nothing, hears nothing, and accrues no awake slots (crashed
  radios are powered off in the energy model).  Nodes revive when the
  window ends, keeping whatever protocol state they had (fail-stop with
  resume, the dynamic join/leave model).
* **Edge flips** (:class:`EdgeFlip`) — the network is time-varying: a
  flip toggles one undirected edge at the start of its round, and the
  channel for that round onwards is resolved against the *current*
  adjacency via a per-round kernel operand rebuilt on the engine's own
  backend (dense matrix or sparse CSR).
* **Message loss** (:attr:`FaultSchedule.loss_rate`) — each clean
  reception is independently dropped with this probability; the dropped
  listener perceives silence, exactly as if the frame were corrupted.
* **Jammers** (:class:`Jammer`) — a jamming node blankets itself and its
  current neighbourhood with noise while active: every covered listener
  perceives a collision regardless of what was actually on the air.

Faults act on *perception*, not ground truth: :meth:`FaultState.perceive`
rewrites the ``clean``/``collided``/``silent``/``senders`` masks the
protocol feedback sees, while ``counts`` stays the physical transmit
count (no protocol consumes it).  All fault randomness is drawn from the
engine's own stream (:attr:`~repro.sim.rng.SeededStreams.engine`), which
node protocols never touch — so attaching an empty schedule, or none,
leaves every run bitwise-identical to the fault-free simulator, and a
faulted run is reproducible across the object/array execution paths and
the dense/sparse channel backends alike.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.core.channel import (
    ChannelRound,
    KernelOperand,
    operand_from_csr,
)
from repro.sim.core.stats import FaultTotals
from repro.sim.rng import stream
from repro.sim.topology import RadioNetwork

__all__ = [
    "EdgeFlip",
    "FaultSchedule",
    "FaultState",
    "Jammer",
    "NodeCrash",
    "sample_fault_schedule",
]

#: Spawn key for the fault-sampling stream — domain-separated from the
#: run's protocol streams and from the topology generators (which use
#: keys 1 and 2), so sampling a schedule never perturbs either.
_FAULT_STREAM_KEY = 3


def _check_window(kind: str, start: int, stop: int | None) -> None:
    if start < 0:
        raise ConfigurationError(f"{kind} start must be non-negative, got {start}")
    if stop is not None and stop <= start:
        raise ConfigurationError(
            f"{kind} window must satisfy start < stop, got [{start}, {stop})"
        )


@dataclass(frozen=True)
class NodeCrash:
    """One node's down window: crashed for rounds in ``[start, stop)``.

    ``stop=None`` means the node never revives.  A crashed node's radio
    is off: it cannot transmit or listen and pays no awake slots.
    """

    node: int
    start: int = 0
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"crash node must be >= 0, got {self.node}")
        _check_window("crash", self.start, self.stop)

    def down(self, round_index: int) -> bool:
        return self.start <= round_index and (
            self.stop is None or round_index < self.stop
        )


@dataclass(frozen=True)
class EdgeFlip:
    """Toggle the undirected edge ``{u, v}`` at the start of ``round_index``.

    Present edges disappear, absent edges appear — so a pair of flips at
    rounds ``r1 < r2`` models an outage window ``[r1, r2)`` (or a link
    that joins at ``r1`` and drops at ``r2``, if the edge was absent).
    """

    round_index: int
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ConfigurationError(
                f"edge flip round must be >= 0, got {self.round_index}"
            )
        if self.u < 0 or self.v < 0:
            raise ConfigurationError(
                f"edge flip endpoints must be >= 0, got ({self.u}, {self.v})"
            )
        if self.u == self.v:
            raise ConfigurationError(f"edge flip cannot be a self-loop at {self.u}")


@dataclass(frozen=True)
class Jammer:
    """A node emitting noise over its neighbourhood for rounds ``[start, stop)``.

    While active, every listener in the jammer's closed neighbourhood
    (itself plus its *current* neighbours, tracking edge flips) perceives
    a collision, whatever was actually transmitted.
    """

    node: int
    start: int = 0
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"jammer node must be >= 0, got {self.node}")
        _check_window("jammer", self.start, self.stop)

    def active(self, round_index: int) -> bool:
        return self.start <= round_index and (
            self.stop is None or round_index < self.stop
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, engine-independent description of one run's faults.

    The schedule is pure data — node ids are validated against the actual
    network when a :class:`FaultState` is built, so one schedule can be
    constructed before (or independently of) the topology.  An empty
    schedule (:attr:`is_empty`) injects nothing and consumes no
    randomness, so attaching it leaves a run bitwise-identical to not
    attaching one.
    """

    crashes: tuple[NodeCrash, ...] = ()
    edge_flips: tuple[EdgeFlip, ...] = ()
    #: probability that each clean reception is independently dropped.
    loss_rate: float = 0.0
    jammers: tuple[Jammer, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "edge_flips", tuple(self.edge_flips))
        object.__setattr__(self, "jammers", tuple(self.jammers))
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {self.loss_rate!r}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether this schedule injects no faults at all."""
        return (
            not self.crashes
            and not self.edge_flips
            and self.loss_rate == 0.0
            and not self.jammers
        )

    def max_node(self) -> int:
        """The largest node id the schedule references (-1 when none)."""
        ids = [c.node for c in self.crashes]
        ids += [j.node for j in self.jammers]
        ids += [v for f in self.edge_flips for v in (f.u, f.v)]
        return max(ids, default=-1)


#: Indices of the fault counter vector a :class:`FaultState` accumulates.
_DROPPED, _JAMMED, _CRASHED, _FLIPPED = range(4)


class FaultState:
    """The per-run, mutable realization of one :class:`FaultSchedule`.

    Owned by a single :class:`~repro.sim.core.batch.ArrayEngine`; tracks
    the current (possibly flipped) adjacency, rebuilds the kernel operand
    on the engine's backend whenever an edge flips, and draws every coin
    from the engine stream passed in — never from a node stream.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        network: RadioNetwork,
        operand: KernelOperand,
        rng: np.random.Generator,
    ) -> None:
        n = network.n
        top = schedule.max_node()
        if top >= n:
            raise ConfigurationError(
                f"fault schedule references node {top}, but the network has "
                f"only {n} nodes"
            )
        self.schedule = schedule
        self.network = network
        self._n = n
        self._rng = rng
        self._operand = operand
        self._backend = operand.backend
        # Counter vector windowed by the engine exactly like its traffic
        # counters: dropped receptions, jammed listens, crashed node
        # rounds, edge flips applied.
        self.counters = np.zeros(4, dtype=np.int64)
        # Edge flips are applied by a cursor over the round-sorted list,
        # against a mutable neighbour-set mirror of the network (the
        # network object itself is never mutated — it may be shared).
        self._flips = sorted(
            schedule.edge_flips, key=lambda f: (f.round_index, f.u, f.v)
        )
        self._flip_cursor = 0
        self._neighbors: list[set[int]] | None = None
        if self._flips:
            self._neighbors = [set(network.neighbors(v)) for v in range(n)]
        # Jam coverage depends on (active jammer set, current adjacency);
        # cache it keyed by both so static phases pay nothing per round.
        self._adjacency_version = 0
        self._jam_cache: tuple[tuple[int, ...], int, np.ndarray] | None = None

    @property
    def operand(self) -> KernelOperand:
        """The kernel operand for the *current* adjacency."""
        return self._operand

    @property
    def adjacency_version(self) -> int:
        """Monotone counter of edge flips applied so far.

        Two calls observing the same version are guaranteed to see the
        same current adjacency — the sanitizer's differential checker
        keys its reference-operand rebuilds on this, and the bisector
        records it in repro bundles.
        """
        return self._adjacency_version

    def current_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR neighbour arrays of the *current* (possibly flipped) adjacency.

        Freshly built on each call once any flip has been applied (callers
        should key on :attr:`adjacency_version` to avoid rebuilding);
        before the first flip it is the network's own cached CSR.
        """
        if self._neighbors is None:
            return self.network.csr()
        return self._neighbors_csr()

    def totals(self, counters: np.ndarray) -> FaultTotals:
        """Freeze one counter window (see :attr:`counters`)."""
        return FaultTotals(
            dropped_receptions=int(counters[_DROPPED]),
            jammed_listens=int(counters[_JAMMED]),
            crashed_node_rounds=int(counters[_CRASHED]),
            edge_flips_applied=int(counters[_FLIPPED]),
        )

    # ------------------------------------------------------------------ #
    # Per-round hooks (called by the engine)
    # ------------------------------------------------------------------ #
    def begin_round(self, round_index: int) -> np.ndarray | None:
        """Advance edge flips up to ``round_index``; return the crash mask.

        The cursor makes this idempotent for a repeated round index, so a
        re-issued ``begin_round`` never double-applies a flip.  Returns
        ``None`` when no node is crashed this round (the common case).
        """
        while (
            self._flip_cursor < len(self._flips)
            and self._flips[self._flip_cursor].round_index <= round_index
        ):
            self._apply_flip(self._flips[self._flip_cursor])
            self._flip_cursor += 1
        crashed: np.ndarray | None = None
        for crash in self.schedule.crashes:
            if crash.down(round_index):
                if crashed is None:
                    crashed = np.zeros(self._n, dtype=bool)
                crashed[crash.node] = True
        if crashed is not None:
            self.counters[_CRASHED] += int(crashed.sum())
        return crashed

    def perceive(
        self, round_index: int, listen: np.ndarray, channel: ChannelRound
    ) -> ChannelRound:
        """Rewrite one resolved round into what the (faulty) radios report.

        Jamming forces every covered listener to a perceived collision;
        loss then independently drops surviving clean receptions into
        perceived silence.  ``counts`` is left as physical ground truth.
        When the round is untouched the original channel object is
        returned, so fault-free rounds allocate nothing.
        """
        cover = self._jam_cover(round_index)
        jammed = (listen & cover) if cover is not None else None
        # The loss coins are drawn once per round whenever the schedule
        # has a loss rate — independent of how many clean receptions this
        # round produced — so stream consumption (and therefore every
        # later draw) is identical across execution paths and backends.
        coins = self._rng.random(self._n) if self.schedule.loss_rate > 0.0 else None
        clean = channel.clean
        collided = channel.collided
        silent = channel.silent
        if jammed is not None and jammed.any():
            clean = clean & ~jammed
            collided = collided | jammed
            silent = silent & ~jammed
            self.counters[_JAMMED] += int(jammed.sum())
        if coins is not None:
            dropped = clean & (coins < self.schedule.loss_rate)
            if dropped.any():
                clean = clean & ~dropped
                silent = silent | dropped
                self.counters[_DROPPED] += int(dropped.sum())
        if clean is channel.clean and collided is channel.collided:
            return channel
        return ChannelRound(
            counts=channel.counts,
            clean=clean,
            collided=collided,
            silent=silent,
            senders=np.where(clean, channel.senders, 0),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _apply_flip(self, flip: EdgeFlip) -> None:
        if self._neighbors is None:
            raise SimulationError("edge flip before neighbour sets were built")
        u, v = flip.u, flip.v
        if v in self._neighbors[u]:
            self._neighbors[u].discard(v)
            self._neighbors[v].discard(u)
        else:
            self._neighbors[u].add(v)
            self._neighbors[v].add(u)
        self.counters[_FLIPPED] += 1
        self._adjacency_version += 1
        self._rebuild_operand()

    def _neighbors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The mutable neighbour-set mirror as sorted CSR arrays."""
        if self._neighbors is None:
            raise SimulationError("CSR rebuild before neighbour sets were built")
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum([len(nbrs) for nbrs in self._neighbors], out=indptr[1:])
        indices = np.fromiter(
            (w for nbrs in self._neighbors for w in sorted(nbrs)),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        return indptr, indices

    def _rebuild_operand(self) -> None:
        """Rebuild the kernel operand for the current adjacency.

        Stays on the backend the engine started with, so cross-backend
        bitwise equivalence holds round by round even mid-flip.
        """
        indptr, indices = self._neighbors_csr()
        self._operand = operand_from_csr(self._backend, indptr, indices)

    def _current_neighbors(self, v: int) -> Sequence[int] | set[int]:
        if self._neighbors is not None:
            return self._neighbors[v]
        return self.network.neighbors(v)

    def _jam_cover(self, round_index: int) -> np.ndarray | None:
        active = tuple(
            j.node for j in self.schedule.jammers if j.active(round_index)
        )
        if not active:
            return None
        cache = self._jam_cache
        if (
            cache is not None
            and cache[0] == active
            and cache[1] == self._adjacency_version
        ):
            return cache[2]
        cover = np.zeros(self._n, dtype=bool)
        for node in active:
            cover[node] = True
            cover[list(self._current_neighbors(node))] = True
        self._jam_cache = (active, self._adjacency_version, cover)
        return cover


def sample_fault_schedule(
    network: RadioNetwork,
    *,
    seed: int,
    horizon: int,
    crash_rate: float = 0.0,
    loss_rate: float = 0.0,
    jammers: int = 0,
    edge_flip_rate: float = 0.0,
    protect_source: bool = True,
) -> FaultSchedule:
    """Sample one reproducible schedule from per-family intensity knobs.

    ``crash_rate`` is the probability each node gets one down window
    (start and length uniform within the first/any half of ``horizon``),
    ``edge_flip_rate`` the probability each edge gets one outage window,
    ``jammers`` the count of distinct jamming nodes (each active for its
    own sampled window, like a crash), and ``loss_rate`` passes through.
    The draw uses its own domain-separated stream of ``seed``, so the
    same seed drives the same protocol coins
    with or without faults.  ``protect_source`` (default) keeps the
    broadcast source out of the crash and jammer pools — a crashed source
    trivially fails every delivery metric, which is rarely the question.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    for name, rate in (("crash_rate", crash_rate), ("edge_flip_rate", edge_flip_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {rate!r}")
    if jammers < 0:
        raise ConfigurationError(f"jammers must be >= 0, got {jammers}")
    n = network.n
    source = network.source
    rng = stream(seed, _FAULT_STREAM_KEY)
    half = max(1, horizon // 2)

    crashes = []
    if crash_rate > 0.0:
        for node in range(n):
            if protect_source and node == source:
                continue
            if rng.random() >= crash_rate:
                continue
            start = int(rng.integers(0, half))
            length = 1 + int(rng.integers(0, half))
            crashes.append(NodeCrash(node, start, start + length))

    flips = []
    if edge_flip_rate > 0.0:
        for u in range(n):
            for v in network.neighbors(u):
                if v <= u:
                    continue
                if rng.random() >= edge_flip_rate:
                    continue
                off = int(rng.integers(0, half))
                on = off + 1 + int(rng.integers(0, half))
                flips.append(EdgeFlip(off, u, v))
                flips.append(EdgeFlip(on, u, v))

    jam = []
    if jammers:
        pool = [v for v in range(n) if not (protect_source and v == source)]
        if jammers > len(pool):
            raise ConfigurationError(
                f"cannot place {jammers} jammers on a network with only "
                f"{len(pool)} eligible nodes"
            )
        chosen = rng.choice(len(pool), size=jammers, replace=False)
        for i in sorted(chosen.tolist()):
            start = int(rng.integers(0, half))
            length = 1 + int(rng.integers(0, half))
            jam.append(Jammer(pool[int(i)], start, start + length))

    return FaultSchedule(
        crashes=tuple(crashes),
        edge_flips=tuple(flips),
        loss_rate=loss_rate,
        jammers=tuple(jam),
    )
