"""The layered array-native execution core.

Layers, bottom-up:

* :mod:`repro.sim.core.stats` — the ground-truth record types
  (:class:`RoundStats`, :class:`SimResult`) shared by every execution path;
* :mod:`repro.sim.core.channel` — the pure, batched channel kernel:
  adjacency matmul → silence/clean/collision outcome arrays + sender ids;
* :mod:`repro.sim.core.array_protocol` — the :class:`ArrayProtocol` API
  (one instance holds all nodes' state as arrays) with per-node seeded
  randomness preserved via :class:`CoinDeck`, plus the array registry;
* :mod:`repro.sim.core.adapter` — :class:`ObjectProtocolAdapter`, which
  wraps per-node :class:`~repro.sim.protocol.Protocol` objects so the
  existing object API runs unchanged on the core;
* :mod:`repro.sim.core.batch` — :class:`ArrayEngine` (one instance) and
  :class:`BatchEngine` (many independent seed × topology × protocol
  instances, fused per-topology into batched kernel calls, with early
  exit per instance).
"""

from repro.sim.core.adapter import ObjectProtocolAdapter
from repro.sim.core.array_protocol import (
    ArrayContext,
    ArrayProtocol,
    BroadcastArrayProtocol,
    CoinDeck,
    RoundPlan,
    array_protocol_class,
    available_array_protocols,
    register_array_protocol,
)
from repro.sim.core.batch import (
    ArrayEngine,
    BatchEngine,
    BatchItem,
    BatchOutcome,
    RoundObserver,
    TraceObserver,
    resolve_channel_backend,
    select_kernel_operand,
)
from repro.sim.core.channel import (
    BitOperand,
    ChannelRound,
    DenseOperand,
    KernelOperand,
    SparseOperand,
    adjacency_operand,
    as_kernel_operand,
    resolve_channel,
    round_stats,
)
from repro.sim.core.stats import (
    FaultTotals,
    RoundStats,
    RunTelemetry,
    SimResult,
    TrafficTotals,
)

__all__ = [
    "ArrayContext",
    "ArrayEngine",
    "ArrayProtocol",
    "BatchEngine",
    "BitOperand",
    "BatchItem",
    "BatchOutcome",
    "BroadcastArrayProtocol",
    "ChannelRound",
    "CoinDeck",
    "DenseOperand",
    "FaultTotals",
    "KernelOperand",
    "ObjectProtocolAdapter",
    "RoundObserver",
    "RoundPlan",
    "RoundStats",
    "RunTelemetry",
    "SimResult",
    "SparseOperand",
    "TraceObserver",
    "TrafficTotals",
    "adjacency_operand",
    "array_protocol_class",
    "as_kernel_operand",
    "available_array_protocols",
    "register_array_protocol",
    "resolve_channel",
    "resolve_channel_backend",
    "round_stats",
    "select_kernel_operand",
]
