"""Omniscient per-round and per-run statistics records.

These are the ground-truth observables of a simulation — what actually
happened on the channel, independent of what any node could perceive.
Both execution paths (the per-node object :class:`~repro.sim.engine.Engine`
and the array-native :class:`~repro.sim.core.batch.ArrayEngine`) emit the
same record types, which is what makes the object-vs-array equivalence
suite a plain ``==`` over traces.

Two telemetry records live alongside them:

* :class:`TrafficTotals` — per-node channel-usage counters (transmissions,
  clean receptions, collisions heard, awake slots), the paper's implicit
  cost model made first-class.  Streamed as O(n) counters in the round
  loop, so every run carries them at no asymptotic cost, and
  bitwise-identical across the object/array paths and dense/sparse
  backends (the masks they sum are).
* :class:`RunTelemetry` — wall-clock observables (rounds/sec, per-phase
  kernel timers).  Deliberately *not* part of :class:`SimResult`: wall
  time differs between runs that are otherwise bitwise identical, so it
  must never participate in equivalence comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FaultTotals",
    "RoundStats",
    "RunTelemetry",
    "SimResult",
    "TrafficTotals",
    "conservation_violation",
]


@dataclass(frozen=True)
class RoundStats:
    """Omniscient record of one round (ground truth, not node knowledge)."""

    round_index: int
    transmitters: tuple[int, ...]
    #: (receiver, sender) pairs that cleanly received this round.
    deliveries: tuple[tuple[int, int], ...]
    #: listening nodes with >= 2 transmitting neighbours, regardless of
    #: whether the run models collision detection.
    collisions: tuple[int, ...]

    def as_row(self) -> dict:
        """One JSON-ready row — the single serialization of a round.

        Both the demo's prose trace and its ``--json`` trace render this
        row, so the two outputs cannot drift apart.
        """
        return {
            "round": self.round_index,
            "transmitters": list(self.transmitters),
            "deliveries": [list(pair) for pair in self.deliveries],
            "collisions": list(self.collisions),
        }


@dataclass(frozen=True)
class TrafficTotals:
    """Per-node channel-usage totals over one run window.

    The energy model is *awake slots*: a node pays one unit for every
    round it has its radio on (transmitting or listening); sleeping is
    free.  ``awake_slots[v] == transmissions[v] + listening rounds`` since
    radios are half-duplex (transmit and listen are disjoint per round).
    """

    #: rounds in which each node transmitted.
    transmissions: tuple[int, ...]
    #: rounds in which each node cleanly received a message.
    receptions: tuple[int, ...]
    #: rounds in which each node heard >= 2 neighbours (ground truth,
    #: whether or not the run models collision detection).
    collisions_heard: tuple[int, ...]
    #: rounds in which each node had its radio on (energy cost model).
    awake_slots: tuple[int, ...]

    @property
    def energy(self) -> int:
        """Total awake slots across all nodes — the run's energy cost."""
        return sum(self.awake_slots)

    def as_dict(self) -> dict:
        """JSON-ready payload (per-node lists plus the energy total)."""
        return {
            "transmissions": list(self.transmissions),
            "receptions": list(self.receptions),
            "collisions_heard": list(self.collisions_heard),
            "awake_slots": list(self.awake_slots),
            "energy": self.energy,
        }


@dataclass(frozen=True)
class FaultTotals:
    """Injected-fault totals over one run window (see :mod:`repro.sim.faults`).

    Populated only when the run carries a non-empty
    :class:`~repro.sim.faults.FaultSchedule`; fault-free runs keep
    ``SimResult.faults`` as ``None`` so equivalence comparisons against
    schedule-less runs stay a plain ``==``.
    """

    #: clean receptions converted to perceived silence by message loss.
    dropped_receptions: int
    #: listener-rounds spent inside an active jammer's coverage (each one
    #: perceived as a collision).
    jammed_listens: int
    #: node-rounds spent crashed (radio off, no awake slots accrued).
    crashed_node_rounds: int
    #: edge flips applied to the time-varying adjacency.
    edge_flips_applied: int

    def as_dict(self) -> dict:
        return {
            "dropped_receptions": self.dropped_receptions,
            "jammed_listens": self.jammed_listens,
            "crashed_node_rounds": self.crashed_node_rounds,
            "edge_flips_applied": self.edge_flips_applied,
        }


@dataclass(frozen=True)
class RunTelemetry:
    """Wall-clock observables of an engine's execution so far.

    Kept off :class:`SimResult` on purpose: two runs can be bitwise
    identical in every simulation observable yet differ here, so timing
    must never leak into equivalence comparisons.
    """

    #: rounds executed (across all instances, for a batch).
    rounds: int
    #: wall-clock seconds spent inside the engine's run loop.
    wall_seconds: float
    #: seconds per round-loop phase: ``act`` (protocol action collection),
    #: ``channel`` (kernel resolution), ``feedback`` (protocol feedback +
    #: counters).  Their sum is slightly below ``wall_seconds`` (loop
    #: overhead, early-stop predicates).
    phase_seconds: dict[str, float]

    @property
    def rounds_per_sec(self) -> float | None:
        return self.rounds / self.wall_seconds if self.wall_seconds > 0 else None

    def as_dict(self) -> dict:
        rps = self.rounds_per_sec
        return {
            "rounds": self.rounds,
            "wall_seconds": round(self.wall_seconds, 6),
            "rounds_per_sec": round(rps, 1) if rps is not None else None,
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
        }


@dataclass(frozen=True)
class SimResult:
    """Outcome of one engine run (either execution path)."""

    rounds_run: int
    stopped_early: bool
    total_transmissions: int
    total_deliveries: int
    total_collisions: int
    #: per-round records; empty unless the engine was built with ``trace=True``.
    history: tuple[RoundStats, ...] = field(default=())
    #: per-node traffic/energy totals; always populated by the engines
    #: (``None`` only on hand-built results).  The scalar totals above are
    #: the sums of these counters by construction.
    traffic: TrafficTotals | None = None
    #: injected-fault totals; ``None`` unless the run carried a non-empty
    #: fault schedule (so fault-free results compare ``==`` regardless of
    #: whether an empty schedule object was attached).
    faults: FaultTotals | None = None


def conservation_violation(result: SimResult) -> str | None:
    """The first conservation law ``result`` violates, or ``None``.

    The laws every engine-built :class:`SimResult` upholds by construction:
    the scalar totals are the sums of the per-node traffic rows, no node
    received or heard more than it had listening slots for (awake minus
    transmissions, radios being half-duplex), and a fully traced window's
    :class:`RoundStats` sum to the same totals.  Kept next to the record
    types so the law definitions cannot drift from them; the runtime
    sanitizer (:mod:`repro.analysis.simsan`) applies this to every frozen
    result under check id ``conserve.energy``.
    """
    traffic = result.traffic
    if traffic is None:
        return None
    pairs = (
        ("total_transmissions", result.total_transmissions, traffic.transmissions),
        ("total_deliveries", result.total_deliveries, traffic.receptions),
        ("total_collisions", result.total_collisions, traffic.collisions_heard),
    )
    for name, scalar, rows in pairs:
        if scalar != sum(rows):
            return f"{name}={scalar} != sum of per-node rows {sum(rows)}"
    for node, (tx, rx, coll, awake) in enumerate(
        zip(
            traffic.transmissions,
            traffic.receptions,
            traffic.collisions_heard,
            traffic.awake_slots,
        )
    ):
        if tx > awake:
            return f"node {node} transmitted {tx} rounds but was awake only {awake}"
        if rx + coll > awake - tx:
            return (
                f"node {node} heard {rx + coll} outcomes in {awake - tx} "
                f"listening slots"
            )
    if result.history and len(result.history) == result.rounds_run:
        tx_sum = sum(len(stats.transmitters) for stats in result.history)
        rx_sum = sum(len(stats.deliveries) for stats in result.history)
        coll_sum = sum(len(stats.collisions) for stats in result.history)
        for name, scalar, traced in (
            ("total_transmissions", result.total_transmissions, tx_sum),
            ("total_deliveries", result.total_deliveries, rx_sum),
            ("total_collisions", result.total_collisions, coll_sum),
        ):
            if scalar != traced:
                return f"{name}={scalar} != traced RoundStats sum {traced}"
    return None
