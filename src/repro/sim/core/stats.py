"""Omniscient per-round and per-run statistics records.

These are the ground-truth observables of a simulation — what actually
happened on the channel, independent of what any node could perceive.
Both execution paths (the per-node object :class:`~repro.sim.engine.Engine`
and the array-native :class:`~repro.sim.core.batch.ArrayEngine`) emit the
same record types, which is what makes the object-vs-array equivalence
suite a plain ``==`` over traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundStats", "SimResult"]


@dataclass(frozen=True)
class RoundStats:
    """Omniscient record of one round (ground truth, not node knowledge)."""

    round_index: int
    transmitters: tuple[int, ...]
    #: (receiver, sender) pairs that cleanly received this round.
    deliveries: tuple[tuple[int, int], ...]
    #: listening nodes with >= 2 transmitting neighbours, regardless of
    #: whether the run models collision detection.
    collisions: tuple[int, ...]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one engine run (either execution path)."""

    rounds_run: int
    stopped_early: bool
    total_transmissions: int
    total_deliveries: int
    total_collisions: int
    #: per-round records; empty unless the engine was built with ``trace=True``.
    history: tuple[RoundStats, ...] = field(default=())
