"""Adapter: drive today's per-node ``Protocol`` objects through the core.

:class:`ObjectProtocolAdapter` presents a list of per-node
:class:`~repro.sim.protocol.Protocol` instances as a single
:class:`~repro.sim.core.array_protocol.ArrayProtocol`, so the object API
keeps working unchanged on top of the shared channel kernel: the
:class:`~repro.sim.engine.Engine` is a thin shell over this adapter, and
object protocols can even ride in a :class:`~repro.sim.core.batch.BatchEngine`
next to array-native ones.

The adapter preserves the object path's exact semantics: per-node
``NodeContext`` wiring (including each node's private random stream),
action validation with the same error messages, and feedback delivery in
the same order (clean receivers, then collided, then silent, each in
ascending node order) with real message objects.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.core.array_protocol import ArrayContext, ArrayProtocol, RoundPlan
from repro.sim.core.channel import ChannelRound
from repro.sim.protocol import (
    Action,
    ActionKind,
    Feedback,
    FeedbackKind,
    NodeContext,
    Protocol,
)

__all__ = ["ObjectProtocolAdapter"]


class ObjectProtocolAdapter(ArrayProtocol):
    """Wrap one per-node :class:`Protocol` object per node as an ArrayProtocol."""

    def __init__(self, protocols: Sequence[Protocol]) -> None:
        self.protocols = tuple(protocols)
        self._actions: tuple[Action, ...] = ()

    def setup(self, ctx: ArrayContext) -> None:
        super().setup(ctx)
        if len(self.protocols) != ctx.n_nodes:
            raise SimulationError(
                f"need exactly one protocol per node: got {len(self.protocols)} "
                f"protocols for {ctx.n_nodes} nodes"
            )
        for node, proto in enumerate(self.protocols):
            proto.setup(
                NodeContext(
                    node=node,
                    n_nodes=ctx.n_nodes,
                    n_bound=ctx.n_bound,
                    is_source=(node == ctx.source),
                    params=ctx.params,
                    rng=ctx.streams.nodes[node],
                    collision_detection=ctx.collision_detection,
                )
            )

    def act(self, round_index: int) -> RoundPlan:
        n = len(self.protocols)
        transmit = np.zeros(n, dtype=bool)
        listen = np.zeros(n, dtype=bool)
        actions: list[Action] = []
        for node, proto in enumerate(self.protocols):
            action = proto.act(round_index)
            if not isinstance(action, Action):
                raise SimulationError(
                    f"protocol at node {node} returned {action!r} from act(); "
                    "expected an Action"
                )
            if action.kind is ActionKind.TRANSMIT:
                if action.message is None:
                    raise SimulationError(
                        f"node {node} transmitted a None message in round {round_index}"
                    )
                transmit[node] = True
            elif action.kind is ActionKind.LISTEN:
                listen[node] = True
            actions.append(action)
        self._actions = tuple(actions)
        return RoundPlan(transmit=transmit, listen=listen)

    def on_feedback(self, round_index: int, channel: ChannelRound) -> None:
        r = round_index
        for recv in np.nonzero(channel.clean)[0].tolist():
            sender = int(channel.senders[recv])
            self.protocols[recv].on_feedback(
                r,
                Feedback(
                    FeedbackKind.MESSAGE,
                    round_index=r,
                    message=self._actions[sender].message,
                    sender=sender,
                ),
            )
        collision_kind = (
            FeedbackKind.COLLISION
            if self.ctx.collision_detection
            else FeedbackKind.SILENCE
        )
        for recv in np.nonzero(channel.collided)[0].tolist():
            self.protocols[recv].on_feedback(r, Feedback(collision_kind, round_index=r))
        for recv in np.nonzero(channel.silent)[0].tolist():
            self.protocols[recv].on_feedback(
                r, Feedback(FeedbackKind.SILENCE, round_index=r)
            )

    def done(self) -> bool:
        return all(p.finished() for p in self.protocols)
