"""The pure radio-channel kernel, shared by every execution path.

One round of the single-hop radio channel is three array operations:

* ``counts`` — for every node, how many of its neighbours transmitted this
  round;
* outcome masks — a listener with count 0 hears silence, with count 1
  receives the unique neighbour's transmission, with count >= 2 suffers a
  collision;
* ``senders`` — for a listener with count 1 the id-weighted neighbour
  count *is* the id of its unique transmitting neighbour.

Two interchangeable **kernel operands** implement those reductions:

* :class:`DenseOperand` — the symmetric 0/1 adjacency as a ``float64``
  matrix; counts are one BLAS matmul (``transmit @ A``).  Θ(n²) memory and
  time per round regardless of the edge count.
* :class:`SparseOperand` — the same graph as CSR neighbour arrays
  (``indptr``/``indices``); counts are a gather plus one segment-sum
  (``np.bincount`` over the edge list).  Θ(m) memory and time per round,
  which is what lets the simulator past the dense-matmul wall on sparse
  topologies (line/grid/gnp/unit-disk at n ≳ 4096).

Every count either backend produces is a sum of 0/1 terms (or of node ids,
all far below 2**53) accumulated in ``float64``, so both are exact and the
resulting :class:`ChannelRound` is **bitwise identical** between backends.

The kernel is batched: ``transmit``/``listen`` may be ``(n,)`` for one
instance or ``(batch, n)`` for many independent instances on the same
topology, in which case every output carries the same leading batch axis
and the whole round costs one fused reduction.

Transmitters hear nothing (half-duplex radios), so ``transmit`` and
``listen`` must be disjoint; :func:`resolve_channel` enforces that
precondition itself — for every caller, not just the engines — because a
silent overlap would produce wrong physics (a transmitter "receiving").

The kernel reports **ground truth** only.  Whether a collided listener
*perceives* the collision (collision detection) or silence
(collision-as-silence) is a property of the receivers' radios, so that
mapping belongs to the protocol/adapter layer, not the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import SimulationError
from repro.sim.core.stats import RoundStats

__all__ = [
    "ChannelRound",
    "DenseOperand",
    "KernelOperand",
    "SparseOperand",
    "adjacency_operand",
    "as_kernel_operand",
    "resolve_channel",
    "round_stats",
]


def adjacency_operand(adjacency: np.ndarray) -> np.ndarray:
    """Convert a 0/1 adjacency matrix into the dense kernel's matmul operand.

    ``float64`` so the matmuls dispatch to BLAS; every count is a sum of
    0/1 terms and therefore exact.
    """
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise SimulationError(f"adjacency must be square, got shape {adj.shape}")
    return np.ascontiguousarray(adj, dtype=np.float64)


class DenseOperand:
    """Dense channel backend: neighbour counts via one BLAS matmul."""

    __slots__ = ("adj_f", "_ids_f")

    backend = "dense"

    def __init__(self, adjacency: np.ndarray):
        self.adj_f = adjacency_operand(adjacency)
        self._ids_f = np.arange(self.adj_f.shape[0], dtype=np.float64)

    @property
    def n(self) -> int:
        return self.adj_f.shape[0]

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        """Per-node transmitting-neighbour counts (``tx`` is float64 0/1)."""
        return (tx @ self.adj_f).astype(np.int64)

    def weighted_ids(self, tx: np.ndarray) -> np.ndarray:
        """Id-weighted counts: for a count-1 listener, its unique sender's id."""
        return ((tx * self._ids_f) @ self.adj_f).astype(np.int64)


class SparseOperand:
    """Sparse CSR channel backend: neighbour counts via edge-list segment sums.

    ``indices[indptr[v]:indptr[v+1]]`` lists node ``v``'s neighbours; one
    round gathers the transmit mask at every edge's source endpoint and
    ``np.bincount``-accumulates it at the edge's listener endpoint, so the
    cost is Θ(batch · m) instead of the dense Θ(batch · n²) matmul.
    """

    __slots__ = ("indptr", "indices", "n", "_rows", "_ids_f", "_keys")

    backend = "sparse"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1 or indices.ndim != 1:
            raise SimulationError(
                f"CSR arrays must be 1-D with indptr non-empty, got indptr "
                f"shape {indptr.shape} and indices shape {indices.shape}"
            )
        n = indptr.size - 1
        if indptr[0] != 0 or indptr[-1] != indices.size or (np.diff(indptr) < 0).any():
            raise SimulationError(
                "indptr must start at 0, be non-decreasing, and end at "
                f"len(indices)={indices.size}; got indptr={indptr!r}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise SimulationError(
                f"CSR indices must be node ids in [0, {n}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        self.indptr = indptr
        self.indices = indices
        self.n = n
        # Round-invariant pieces of the kernel, built once: the listener id
        # owning each CSR slot (the bincount keys), the float64 sender ids,
        # and (lazily) the batched key array — see :meth:`_segment_sum`.
        self._rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        self._ids_f = indices.astype(np.float64)
        self._keys: np.ndarray | None = None

    def _segment_sum(self, weights: np.ndarray) -> np.ndarray:
        """Sum per-edge ``weights`` (..., m) into their listeners (..., n)."""
        if weights.ndim == 1:
            return np.bincount(
                self._rows, weights=weights, minlength=self.n
            ).astype(np.int64)
        flat = weights.reshape(-1, weights.shape[-1])
        batch = flat.shape[0]
        # One flat bincount over batch-offset keys instead of a Python loop
        # per instance: the rows shifted into each batch row's private
        # [b·n, (b+1)·n) key range.  The raveled layout is row-major, so
        # the keys for any smaller batch are a prefix of the largest array
        # built so far — one cached array serves every batch size as
        # instances retire.  The cache is bounded, not grow-only: once the
        # live batch falls below half the cached size (instances retiring
        # from a large fused group), the array is rebuilt at the current
        # size so the peak-batch footprint is released instead of staying
        # pinned for the operand's lifetime.  The half threshold means a
        # batch draining one instance at a time rebuilds O(log batch)
        # times, not every round.
        needed = batch * self._rows.size
        if (
            self._keys is None
            or self._keys.size < needed
            or self._keys.size > 2 * needed
        ):
            self._keys = (
                self._rows[None, :] + (np.arange(batch) * self.n)[:, None]
            ).ravel()
        keys = self._keys[:needed]
        out = np.bincount(keys, weights=flat.ravel(), minlength=batch * self.n)
        return (
            out.reshape(weights.shape[:-1] + (self.n,)).astype(np.int64)
        )

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        """Per-node transmitting-neighbour counts (``tx`` is float64 0/1)."""
        if self.indices.size == 0:
            return np.zeros(tx.shape[:-1] + (self.n,), dtype=np.int64)
        return self._segment_sum(tx[..., self.indices])

    def weighted_ids(self, tx: np.ndarray) -> np.ndarray:
        """Id-weighted counts: for a count-1 listener, its unique sender's id."""
        if self.indices.size == 0:
            return np.zeros(tx.shape[:-1] + (self.n,), dtype=np.int64)
        return self._segment_sum(tx[..., self.indices] * self._ids_f)


KernelOperand = Union[DenseOperand, SparseOperand]


def as_kernel_operand(operand: KernelOperand | np.ndarray) -> KernelOperand:
    """Normalize a kernel operand; a raw adjacency matrix means dense."""
    if isinstance(operand, (DenseOperand, SparseOperand)):
        return operand
    return DenseOperand(operand)


@dataclass(frozen=True)
class ChannelRound:
    """Ground-truth channel resolution of one round (possibly batched)."""

    #: per-node count of transmitting neighbours.
    counts: np.ndarray
    #: listeners that received exactly one neighbour's transmission.
    clean: np.ndarray
    #: listeners with >= 2 transmitting neighbours (ground-truth collision).
    collided: np.ndarray
    #: listeners with no transmitting neighbour.
    silent: np.ndarray
    #: for clean listeners, the id of the unique transmitting neighbour;
    #: 0 (meaningless) everywhere else — always mask with ``clean``.  A 0
    #: *inside* the clean mask is a legitimate delivery from node id 0, so
    #: consumers must never treat "senders == 0" alone as "no delivery".
    senders: np.ndarray

    def row(self, i: int) -> "ChannelRound":
        """The ``i``-th instance of a batched resolution."""
        return ChannelRound(
            counts=self.counts[i],
            clean=self.clean[i],
            collided=self.collided[i],
            silent=self.silent[i],
            senders=self.senders[i],
        )


def _check_masks(n: int, transmit: np.ndarray, listen: np.ndarray) -> None:
    """Validate mask shapes and the half-duplex disjointness precondition."""
    if transmit.shape != listen.shape:
        raise SimulationError(
            f"transmit and listen masks must have the same shape, got "
            f"{transmit.shape} and {listen.shape}"
        )
    if transmit.ndim not in (1, 2) or transmit.shape[-1] != n:
        raise SimulationError(
            f"channel masks must be (n,) or (batch, n) with n={n}, got "
            f"shape {transmit.shape}"
        )
    overlap = np.logical_and(transmit, listen)
    if overlap.any():
        where = np.argwhere(overlap)[0]
        # "batch row", not "instance": a fused batch may hold only the
        # still-live subset of a caller's items, so the row position is
        # meaningful only relative to the masks actually passed in (the
        # batch engine appends its own row→item mapping when re-raising).
        row = f"batch row {int(where[0])}, " if overlap.ndim == 2 else ""
        raise SimulationError(
            f"transmit and listen masks must be disjoint (radios are "
            f"half-duplex): {row}node {int(where[-1])} does both"
        )


def resolve_channel(
    operand: KernelOperand | np.ndarray, transmit: np.ndarray, listen: np.ndarray
) -> ChannelRound:
    """Resolve one round on a kernel operand (dense matrix or CSR backend).

    ``transmit`` and ``listen`` are boolean masks of shape ``(n,)`` or
    ``(batch, n)``; transmitters hear nothing (half-duplex), so the masks
    must be disjoint — enforced here, for direct kernel callers and future
    backends as much as for the engines, because an overlap silently
    produces wrong physics.  Accepts a raw adjacency-matrix ``ndarray`` as
    a dense operand for backward compatibility, but wraps it in a fresh
    :class:`DenseOperand` (dtype conversion and all) on *every* call —
    hot loops should construct the operand once and pass it instead.
    """
    op = as_kernel_operand(operand)
    transmit = np.asarray(transmit)
    listen = np.asarray(listen)
    _check_masks(op.n, transmit, listen)
    tx = transmit.astype(np.float64)
    counts = op.transmit_counts(tx)
    clean = listen & (counts == 1)
    collided = listen & (counts >= 2)
    silent = listen & (counts == 0)
    if clean.any():
        senders = np.where(clean, op.weighted_ids(tx), 0)
    else:
        senders = np.zeros(counts.shape, dtype=np.int64)
    return ChannelRound(
        counts=counts, clean=clean, collided=collided, silent=silent, senders=senders
    )


def round_stats(
    round_index: int, transmit: np.ndarray, channel: ChannelRound
) -> RoundStats:
    """Materialize the omniscient :class:`RoundStats` of one (unbatched) round."""
    receivers = np.nonzero(channel.clean)[0]
    senders = channel.senders[receivers]
    return RoundStats(
        round_index=round_index,
        transmitters=tuple(np.nonzero(transmit)[0].tolist()),
        deliveries=tuple(zip(receivers.tolist(), senders.tolist())),
        collisions=tuple(np.nonzero(channel.collided)[0].tolist()),
    )
