"""The pure radio-channel kernel, shared by every execution path.

One round of the single-hop radio channel is three array operations:

* ``counts = transmit @ A`` — for every node, how many of its neighbours
  transmitted this round (``A`` is the symmetric 0/1 adjacency matrix);
* outcome masks — a listener with count 0 hears silence, with count 1
  receives the unique neighbour's transmission, with count >= 2 suffers a
  collision;
* ``senders = (transmit * ids) @ A`` — for a listener with count 1 the
  id-weighted count *is* the id of its unique transmitting neighbour.

The kernel is batched: ``transmit``/``listen`` may be ``(n,)`` for one
instance or ``(batch, n)`` for many independent instances on the same
topology, in which case every output carries the same leading batch axis
and the whole round costs one BLAS matmul.

The kernel reports **ground truth** only.  Whether a collided listener
*perceives* the collision (collision detection) or silence
(collision-as-silence) is a property of the receivers' radios, so that
mapping belongs to the protocol/adapter layer, not the channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.core.stats import RoundStats

__all__ = ["ChannelRound", "adjacency_operand", "resolve_channel", "round_stats"]


def adjacency_operand(adjacency: np.ndarray) -> np.ndarray:
    """Convert a 0/1 adjacency matrix into the kernel's matmul operand.

    ``float64`` so the matmuls dispatch to BLAS; every count is a sum of
    0/1 terms and therefore exact.
    """
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise SimulationError(f"adjacency must be square, got shape {adj.shape}")
    return np.ascontiguousarray(adj, dtype=np.float64)


@dataclass(frozen=True)
class ChannelRound:
    """Ground-truth channel resolution of one round (possibly batched)."""

    #: per-node count of transmitting neighbours.
    counts: np.ndarray
    #: listeners that received exactly one neighbour's transmission.
    clean: np.ndarray
    #: listeners with >= 2 transmitting neighbours (ground-truth collision).
    collided: np.ndarray
    #: listeners with no transmitting neighbour.
    silent: np.ndarray
    #: for clean listeners, the id of the unique transmitting neighbour;
    #: 0 (meaningless) everywhere else — always mask with ``clean``.
    senders: np.ndarray

    def row(self, i: int) -> "ChannelRound":
        """The ``i``-th instance of a batched resolution."""
        return ChannelRound(
            counts=self.counts[i],
            clean=self.clean[i],
            collided=self.collided[i],
            silent=self.silent[i],
            senders=self.senders[i],
        )


def resolve_channel(
    adj_f: np.ndarray, transmit: np.ndarray, listen: np.ndarray
) -> ChannelRound:
    """Resolve one round on adjacency ``adj_f`` (from :func:`adjacency_operand`).

    ``transmit`` and ``listen`` are boolean masks of shape ``(n,)`` or
    ``(batch, n)``; transmitters hear nothing (half-duplex), so the masks
    must be disjoint.
    """
    n = adj_f.shape[0]
    tx = transmit.astype(np.float64)
    counts = (tx @ adj_f).astype(np.int64)
    clean = listen & (counts == 1)
    collided = listen & (counts >= 2)
    silent = listen & (counts == 0)
    if clean.any():
        ids = np.arange(n, dtype=np.float64)
        weighted = ((tx * ids) @ adj_f).astype(np.int64)
        senders = np.where(clean, weighted, 0)
    else:
        senders = np.zeros(counts.shape, dtype=np.int64)
    return ChannelRound(
        counts=counts, clean=clean, collided=collided, silent=silent, senders=senders
    )


def round_stats(
    round_index: int, transmit: np.ndarray, channel: ChannelRound
) -> RoundStats:
    """Materialize the omniscient :class:`RoundStats` of one (unbatched) round."""
    receivers = np.nonzero(channel.clean)[0]
    senders = channel.senders[receivers]
    return RoundStats(
        round_index=round_index,
        transmitters=tuple(np.nonzero(transmit)[0].tolist()),
        deliveries=tuple(zip(receivers.tolist(), senders.tolist())),
        collisions=tuple(np.nonzero(channel.collided)[0].tolist()),
    )
