"""The pure radio-channel kernel, shared by every execution path.

One round of the single-hop radio channel is three array operations:

* ``counts`` — for every node, how many of its neighbours transmitted this
  round;
* outcome masks — a listener with count 0 hears silence, with count 1
  receives the unique neighbour's transmission, with count >= 2 suffers a
  collision;
* ``senders`` — for a listener with count 1 the id-weighted neighbour
  count *is* the id of its unique transmitting neighbour.

Three interchangeable **kernel operands** implement those reductions:

* :class:`DenseOperand` — the symmetric 0/1 adjacency as a ``float64``
  matrix; counts are one BLAS matmul (``transmit @ A``).  Θ(n²) memory and
  time per round regardless of the edge count.
* :class:`SparseOperand` — the same graph as CSR neighbour arrays
  (``indptr``/``indices``); counts are a gather plus one segment-sum
  (``np.bincount`` over the edge list).  Θ(m) memory and time per round,
  which is what lets the simulator past the dense-matmul wall on sparse
  topologies (line/grid/gnp/unit-disk at n ≳ 4096).
* :class:`BitOperand` — the adjacency bit-packed into an
  ``(n, ceil(n/64))`` uint64 word matrix; the per-round transmit mask is
  packed once into ``ceil(n/64)`` words and counts are ``AND`` +
  popcount.  Still Θ(n²) work per round, but 64 adjacency entries per
  word: a ~64× denser operand than the dense float64 matrix, which is
  what carries dense-density graphs past n = 10⁵.

Every count the float backends produce is a sum of 0/1 terms (or of node
ids, all far below 2**53) accumulated in ``float64``, and popcounts are
integer-exact by construction, so all three are exact and the resulting
:class:`ChannelRound` is **bitwise identical** between backends.

The kernel is batched: ``transmit``/``listen`` may be ``(n,)`` for one
instance or ``(batch, n)`` for many independent instances on the same
topology, in which case every output carries the same leading batch axis
and the whole round costs one fused reduction.

Transmitters hear nothing (half-duplex radios), so ``transmit`` and
``listen`` must be disjoint; :func:`resolve_channel` enforces that
precondition itself — for every caller, not just the engines — because a
silent overlap would produce wrong physics (a transmitter "receiving").

The kernel reports **ground truth** only.  Whether a collided listener
*perceives* the collision (collision detection) or silence
(collision-as-silence) is a property of the receivers' radios, so that
mapping belongs to the protocol/adapter layer, not the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union, cast

import numpy as np

from repro.errors import SimulationError
from repro.sim.core.stats import RoundStats

__all__ = [
    "BitOperand",
    "ChannelRound",
    "DenseOperand",
    "HAVE_BITWISE_COUNT",
    "KernelOperand",
    "SparseOperand",
    "adjacency_operand",
    "as_kernel_operand",
    "operand_from_csr",
    "pack_mask",
    "popcount64",
    "resolve_channel",
    "round_stats",
    "unpack_mask",
]

#: ``np.bitwise_count`` arrived in numpy 2.0; on older numpy the kernel
#: falls back to a 16-bit lookup table (four table lookups per word).
HAVE_BITWISE_COUNT: bool = hasattr(np, "bitwise_count")

#: Popcount of every 16-bit value; 64 KiB once, shared by the fallback
#: and kept unconditionally so tests can force the fallback path.
_POPCOUNT16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)

#: Cap on transient kernel intermediates (the ``AND`` block in
#: :meth:`BitOperand.transmit_counts` and the gathered rows in
#: :meth:`BitOperand.sender_ids`), so large-n rounds stream through a
#: cache-friendly working set instead of materializing Θ(batch · n · n/64).
_BIT_BLOCK_BYTES = 1 << 25


def _popcount_lut(words: np.ndarray) -> np.ndarray:
    """Per-word popcounts of a uint64 array via the 16-bit LUT.

    Pure shift/mask arithmetic (no byte-order-dependent views); each
    uint64 word is four table lookups.  Returns uint8 like
    ``np.bitwise_count``.
    """
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64(0xFFFF)
    return (
        _POPCOUNT16[words & mask]
        + _POPCOUNT16[(words >> np.uint64(16)) & mask]
        + _POPCOUNT16[(words >> np.uint64(32)) & mask]
        + _POPCOUNT16[words >> np.uint64(48)]
    )


#: The popcount implementation selected at import.  :class:`BitOperand`
#: resolves this name at call time, so tests can monkeypatch it to force
#: the LUT path on numpy >= 2.
popcount64 = np.bitwise_count if HAVE_BITWISE_COUNT else _popcount_lut


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(..., n)`` mask into little-bit-order uint64 words.

    Bit ``j`` of word ``w`` is element ``64·w + j``; the tail bits of the
    last word (when ``n % 64 != 0``) are zero.  Byte-order independent:
    words are assembled by shifted adds, not memory views.
    """
    mask = np.asarray(mask).astype(bool)
    packed8 = np.packbits(mask, axis=-1, bitorder="little")
    n_bytes = packed8.shape[-1]
    words = -(-n_bytes // 8)
    if n_bytes != words * 8:
        pad = np.zeros(packed8.shape[:-1] + (words * 8 - n_bytes,), dtype=np.uint8)
        packed8 = np.concatenate([packed8, pad], axis=-1)
    grouped = packed8.reshape(packed8.shape[:-1] + (words, 8)).astype(np.uint64)
    shifts = np.arange(8, dtype=np.uint64) * np.uint64(8)
    return (grouped << shifts).sum(axis=-1, dtype=np.uint64)


def unpack_mask(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`: uint64 words back to a boolean ``(..., n)``."""
    words = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(8, dtype=np.uint64) * np.uint64(8)
    packed8 = ((words[..., None] >> shifts) & np.uint64(0xFF)).astype(np.uint8)
    packed8 = packed8.reshape(words.shape[:-1] + (words.shape[-1] * 8,))
    bits = np.unpackbits(packed8, axis=-1, bitorder="little")
    return bits[..., :n].astype(bool)


def adjacency_operand(adjacency: np.ndarray) -> np.ndarray:
    """Convert a 0/1 adjacency matrix into the dense kernel's matmul operand.

    ``float64`` so the matmuls dispatch to BLAS; every count is a sum of
    0/1 terms and therefore exact.
    """
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise SimulationError(f"adjacency must be square, got shape {adj.shape}")
    return np.ascontiguousarray(adj, dtype=np.float64)


def _validate_csr(
    indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Validate CSR neighbour arrays; returns ``(indptr, indices, n)`` as int64."""
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if indptr.ndim != 1 or indptr.size < 1 or indices.ndim != 1:
        raise SimulationError(
            f"CSR arrays must be 1-D with indptr non-empty, got indptr "
            f"shape {indptr.shape} and indices shape {indices.shape}"
        )
    n = indptr.size - 1
    if indptr[0] != 0 or indptr[-1] != indices.size or (np.diff(indptr) < 0).any():
        raise SimulationError(
            "indptr must start at 0, be non-decreasing, and end at "
            f"len(indices)={indices.size}; got indptr={indptr!r}"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise SimulationError(
            f"CSR indices must be node ids in [0, {n}), got range "
            f"[{indices.min()}, {indices.max()}]"
        )
    return indptr, indices, n


class DenseOperand:
    """Dense channel backend: neighbour counts via one BLAS matmul."""

    __slots__ = ("adj_f", "_ids_f")

    backend = "dense"

    def __init__(self, adjacency: np.ndarray) -> None:
        self.adj_f = adjacency_operand(adjacency)
        self._ids_f = np.arange(self.adj_f.shape[0], dtype=np.float64)

    @property
    def n(self) -> int:
        return self.adj_f.shape[0]

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        """Per-round operand form of the boolean transmit mask (float64 0/1)."""
        return transmit.astype(np.float64)

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        """Per-node transmitting-neighbour counts (``tx`` is float64 0/1)."""
        return (tx @ self.adj_f).astype(np.int64)

    def weighted_ids(self, tx: np.ndarray) -> np.ndarray:
        """Id-weighted counts: for a count-1 listener, its unique sender's id."""
        return ((tx * self._ids_f) @ self.adj_f).astype(np.int64)

    def sender_ids(self, tx: np.ndarray, clean: np.ndarray) -> np.ndarray:
        """Sender ids valid at ``clean`` positions (garbage elsewhere)."""
        return self.weighted_ids(tx)


class SparseOperand:
    """Sparse CSR channel backend: neighbour counts via edge-list segment sums.

    ``indices[indptr[v]:indptr[v+1]]`` lists node ``v``'s neighbours; one
    round gathers the transmit mask at every edge's source endpoint and
    ``np.bincount``-accumulates it at the edge's listener endpoint, so the
    cost is Θ(batch · m) instead of the dense Θ(batch · n²) matmul.
    """

    __slots__ = ("indptr", "indices", "n", "_rows", "_ids_f", "_keys")

    backend = "sparse"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr, self.indices, self.n = _validate_csr(indptr, indices)
        # Round-invariant pieces of the kernel, built once: the listener id
        # owning each CSR slot (the bincount keys), the float64 sender ids,
        # and (lazily) the batched key array — see :meth:`_segment_sum`.
        self._rows = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
        )
        self._ids_f = self.indices.astype(np.float64)
        self._keys: np.ndarray | None = None

    def _segment_sum(self, weights: np.ndarray, shrink: bool = True) -> np.ndarray:
        """Sum per-edge ``weights`` (..., m) into their listeners (..., n)."""
        if weights.ndim == 1:
            return np.bincount(
                self._rows, weights=weights, minlength=self.n
            ).astype(np.int64)
        flat = weights.reshape(-1, weights.shape[-1])
        batch = flat.shape[0]
        # One flat bincount over batch-offset keys instead of a Python loop
        # per instance: the rows shifted into each batch row's private
        # [b·n, (b+1)·n) key range.  The raveled layout is row-major, so
        # the keys for any smaller batch are a prefix of the largest array
        # built so far — one cached array serves every batch size as
        # instances retire.  The cache is bounded, not grow-only: once the
        # live batch falls below half the cached size (instances retiring
        # from a large fused group), the array is rebuilt at the current
        # size so the peak-batch footprint is released instead of staying
        # pinned for the operand's lifetime.  The half threshold means a
        # batch draining one instance at a time rebuilds O(log batch)
        # times, not every round.  Only the counts path may shrink
        # (``shrink=True``): the sender pass runs on the clean-row subset
        # of the same round's batch, and letting that smaller call shrink
        # the cache would thrash it twice per round.
        needed = batch * self._rows.size
        if (
            self._keys is None
            or self._keys.size < needed
            or (shrink and self._keys.size > 2 * needed)
        ):
            self._keys = (
                self._rows[None, :] + (np.arange(batch) * self.n)[:, None]
            ).ravel()
        keys = self._keys[:needed]
        out = np.bincount(keys, weights=flat.ravel(), minlength=batch * self.n)
        return (
            out.reshape(weights.shape[:-1] + (self.n,)).astype(np.int64)
        )

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        """Per-round operand form of the boolean transmit mask (float64 0/1)."""
        return transmit.astype(np.float64)

    def transmit_counts(self, tx: np.ndarray) -> np.ndarray:
        """Per-node transmitting-neighbour counts (``tx`` is float64 0/1)."""
        if self.indices.size == 0:
            return np.zeros(tx.shape[:-1] + (self.n,), dtype=np.int64)
        return self._segment_sum(tx[..., self.indices])

    def weighted_ids(self, tx: np.ndarray) -> np.ndarray:
        """Id-weighted counts: for a count-1 listener, its unique sender's id."""
        if self.indices.size == 0:
            return np.zeros(tx.shape[:-1] + (self.n,), dtype=np.int64)
        return self._segment_sum(tx[..., self.indices] * self._ids_f, shrink=False)

    def sender_ids(self, tx: np.ndarray, clean: np.ndarray) -> np.ndarray:
        """Sender ids valid at ``clean`` positions (garbage elsewhere)."""
        return self.weighted_ids(tx)


class BitOperand:
    """Bit-packed channel backend: neighbour counts via ``AND`` + popcount.

    The adjacency row of node ``v`` lives in ``words[v]``, an array of
    ``ceil(n/64)`` uint64 words (bit ``j`` of word ``w`` set iff
    ``64·w + j`` is a neighbour of ``v``).  One round packs the transmit
    mask once, and every node's count is
    ``popcount(words[v] & packed_tx)`` — the dense matmul's Θ(n) row
    reduction compressed 64-to-1.  Constructed from CSR neighbour arrays
    so no Θ(n²) dense intermediate ever exists.

    Sender-id recovery is a second pass restricted to the ``clean``
    positions: there ``words[v] & packed_tx`` has exactly one set bit by
    definition of clean, and that bit's index *is* the sender id
    (``64·w + popcount(word − 1)`` for the unique non-zero word — an
    isolated bit's predecessor mask is exactly its trailing zeros).  The
    expensive id-weighted reduction of the float backends never runs.
    """

    __slots__ = ("n", "words", "edges")

    backend = "bitpacked"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr, indices, n = _validate_csr(indptr, indices)
        self.n = n
        self.edges = int(indices.size)
        width = -(-n // 64)
        words = np.zeros((n, width), dtype=np.uint64)
        if indices.size:
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            np.bitwise_or.at(
                words,
                (rows, indices >> 6),
                np.uint64(1) << (indices & 63).astype(np.uint64),
            )
        self.words = words

    def prepare_transmit(self, transmit: np.ndarray) -> np.ndarray:
        """Per-round operand form of the boolean transmit mask (packed words)."""
        return pack_mask(transmit)

    def transmit_counts(self, packed: np.ndarray) -> np.ndarray:
        """Per-node transmitting-neighbour counts (``packed`` is uint64 words)."""
        lead = packed.shape[:-1]
        width = self.words.shape[1]
        flat = packed.reshape(-1, width)
        batch = flat.shape[0]
        out = np.zeros((batch, self.n), dtype=np.int64)
        # Stream over word columns so the (batch, n, chunk) AND block stays
        # within _BIT_BLOCK_BYTES instead of Θ(batch · n · n/64).
        chunk = max(1, _BIT_BLOCK_BYTES // (8 * batch * max(1, self.n)))
        for start in range(0, width, chunk):
            stop = min(width, start + chunk)
            block = flat[:, None, start:stop] & self.words[None, :, start:stop]
            out += popcount64(block).sum(axis=-1, dtype=np.int64)
        return out.reshape(lead + (self.n,))

    def sender_ids(self, packed: np.ndarray, clean: np.ndarray) -> np.ndarray:
        """Sender ids valid at ``clean`` positions (zero elsewhere).

        Gathers only the (batch row, node) pairs that are clean, so the
        pass costs Θ(clean · n/64) — proportional to actual deliveries,
        not the full matrix.
        """
        out = np.zeros(clean.shape, dtype=np.int64)
        width = self.words.shape[1]
        if clean.ndim == 1:
            nodes = np.flatnonzero(clean)
            tx_rows = np.broadcast_to(packed, (nodes.size, width))
        else:
            batch_rows, nodes = np.nonzero(clean)
            tx_rows = packed.reshape(-1, width)[batch_rows]
        total = nodes.size
        if total == 0:
            return out
        ids = np.empty(total, dtype=np.int64)
        bit_base = np.arange(width, dtype=np.int64) * 64
        step = max(1, _BIT_BLOCK_BYTES // (8 * width))
        for start in range(0, total, step):
            stop = min(total, start + step)
            masked = self.words[nodes[start:stop]] & tx_rows[start:stop]
            nonzero = masked != 0
            # Exactly one bit is set across each row (count == 1 at a clean
            # listener), so the row's id is 64·w + trailing_zeros(word) for
            # its unique non-zero word; the uint64 wraparound of 0 − 1 is
            # masked out by ``nonzero``.
            offsets = popcount64(masked - np.uint64(1)).astype(np.int64)
            ids[start:stop] = np.where(nonzero, bit_base + offsets, 0).sum(axis=-1)
        out[clean] = ids
        return out


KernelOperand = Union[DenseOperand, SparseOperand, BitOperand]


def as_kernel_operand(operand: KernelOperand | np.ndarray) -> KernelOperand:
    """Normalize a kernel operand; a raw adjacency matrix means dense.

    Anything already exposing the operand surface (``n``,
    ``prepare_transmit``, ``transmit_counts``, ``sender_ids``) passes
    through untouched — which is what lets wrapper operands (the
    bisector's fault injector, a future GPU backend under sanitizer
    certification) ride the engines without being one of the three
    built-in classes.  Only a plain array is treated as an adjacency
    matrix and wrapped dense.
    """
    if isinstance(operand, (DenseOperand, SparseOperand, BitOperand)):
        return operand
    if hasattr(operand, "transmit_counts"):
        return cast(KernelOperand, operand)
    return DenseOperand(operand)


def operand_from_csr(
    backend: str, indptr: np.ndarray, indices: np.ndarray
) -> KernelOperand:
    """Build the named backend's operand from CSR neighbour arrays.

    The one sanctioned construction path for callers that hold an adjacency
    as CSR rather than as a :class:`~repro.sim.topology.RadioNetwork` — the
    fault layer's per-flip rebuilds and the sanitizer's reference operand.
    Engine-layer code selecting a backend by policy goes through
    :func:`~repro.sim.core.batch.select_kernel_operand` instead (simlint
    rule SL007 enforces that split).  The dense path scatters the CSR into
    a 0/1 matrix, so it is Θ(n²) memory like any dense operand.
    """
    if backend == "sparse":
        return SparseOperand(indptr, indices)
    if backend == "bitpacked":
        return BitOperand(indptr, indices)
    if backend == "dense":
        indptr, indices, n = _validate_csr(indptr, indices)
        mat = np.zeros((n, n), dtype=np.int8)
        if indices.size:
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            mat[rows, indices] = 1
        return DenseOperand(mat)
    raise SimulationError(
        f"unknown channel backend {backend!r}; expected 'dense', 'sparse', "
        f"or 'bitpacked'"
    )


@dataclass(frozen=True)
class ChannelRound:
    """Ground-truth channel resolution of one round (possibly batched)."""

    #: per-node count of transmitting neighbours.
    counts: np.ndarray
    #: listeners that received exactly one neighbour's transmission.
    clean: np.ndarray
    #: listeners with >= 2 transmitting neighbours (ground-truth collision).
    collided: np.ndarray
    #: listeners with no transmitting neighbour.
    silent: np.ndarray
    #: for clean listeners, the id of the unique transmitting neighbour;
    #: 0 (meaningless) everywhere else — always mask with ``clean``.  A 0
    #: *inside* the clean mask is a legitimate delivery from node id 0, so
    #: consumers must never treat "senders == 0" alone as "no delivery".
    senders: np.ndarray

    def row(self, i: int) -> "ChannelRound":
        """The ``i``-th instance of a batched resolution."""
        return ChannelRound(
            counts=self.counts[i],
            clean=self.clean[i],
            collided=self.collided[i],
            silent=self.silent[i],
            senders=self.senders[i],
        )


def _check_masks(n: int, transmit: np.ndarray, listen: np.ndarray) -> None:
    """Validate mask shapes and the half-duplex disjointness precondition."""
    if transmit.shape != listen.shape:
        raise SimulationError(
            f"transmit and listen masks must have the same shape, got "
            f"{transmit.shape} and {listen.shape}"
        )
    if transmit.ndim not in (1, 2) or transmit.shape[-1] != n:
        raise SimulationError(
            f"channel masks must be (n,) or (batch, n) with n={n}, got "
            f"shape {transmit.shape}"
        )
    overlap = np.logical_and(transmit, listen)
    if overlap.any():
        where = np.argwhere(overlap)[0]
        # "batch row", not "instance": a fused batch may hold only the
        # still-live subset of a caller's items, so the row position is
        # meaningful only relative to the masks actually passed in (the
        # batch engine appends its own row→item mapping when re-raising).
        row = f"batch row {int(where[0])}, " if overlap.ndim == 2 else ""
        raise SimulationError(
            f"transmit and listen masks must be disjoint (radios are "
            f"half-duplex): {row}node {int(where[-1])} does both"
        )


def resolve_channel(
    operand: KernelOperand | np.ndarray, transmit: np.ndarray, listen: np.ndarray
) -> ChannelRound:
    """Resolve one round on a kernel operand (dense, CSR, or bit-packed).

    ``transmit`` and ``listen`` are boolean masks of shape ``(n,)`` or
    ``(batch, n)``; transmitters hear nothing (half-duplex), so the masks
    must be disjoint — enforced here, for direct kernel callers and future
    backends as much as for the engines, because an overlap silently
    produces wrong physics.  Accepts a raw adjacency-matrix ``ndarray`` as
    a dense operand for backward compatibility, but wraps it in a fresh
    :class:`DenseOperand` (dtype conversion and all) on *every* call —
    hot loops should construct the operand once and pass it instead.

    The sender pass is gated per batch row: only the rows that actually
    have a clean listener pay for id recovery, so one busy instance in a
    fused batch stops charging the whole group.
    """
    op = as_kernel_operand(operand)
    transmit = np.asarray(transmit)
    listen = np.asarray(listen)
    _check_masks(op.n, transmit, listen)
    tx = op.prepare_transmit(transmit)
    counts = op.transmit_counts(tx)
    clean = listen & (counts == 1)
    collided = listen & (counts >= 2)
    silent = listen & (counts == 0)
    if clean.ndim == 1:
        if clean.any():
            senders = np.where(clean, op.sender_ids(tx, clean), 0)
        else:
            senders = np.zeros(counts.shape, dtype=np.int64)
    else:
        rows = np.flatnonzero(clean.any(axis=1))
        if rows.size == clean.shape[0]:
            senders = np.where(clean, op.sender_ids(tx, clean), 0)
        else:
            senders = np.zeros(counts.shape, dtype=np.int64)
            if rows.size:
                sub_clean = clean[rows]
                senders[rows] = np.where(
                    sub_clean, op.sender_ids(tx[rows], sub_clean), 0
                )
    return ChannelRound(
        counts=counts, clean=clean, collided=collided, silent=silent, senders=senders
    )


def round_stats(
    round_index: int, transmit: np.ndarray, channel: ChannelRound
) -> RoundStats:
    """Materialize the omniscient :class:`RoundStats` of one (unbatched) round."""
    receivers = np.nonzero(channel.clean)[0]
    senders = channel.senders[receivers]
    return RoundStats(
        round_index=round_index,
        transmitters=tuple(np.nonzero(transmit)[0].tolist()),
        deliveries=tuple(zip(receivers.tolist(), senders.tolist())),
        collisions=tuple(np.nonzero(channel.collided)[0].tolist()),
    )
