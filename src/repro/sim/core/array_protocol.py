"""The array-native protocol API.

An :class:`ArrayProtocol` is the vectorized counterpart of the per-node
:class:`~repro.sim.protocol.Protocol`: **one** instance holds the state of
*all* nodes as numpy arrays, returns whole-network action masks from
:meth:`~ArrayProtocol.act`, and consumes the ground-truth
:class:`~repro.sim.core.channel.ChannelRound` in
:meth:`~ArrayProtocol.on_feedback`.  A round therefore costs a handful of
array operations instead of ``n`` Python method calls.

Per-node randomness is preserved exactly: :class:`CoinDeck` draws each
node's coins from the same :class:`~repro.sim.rng.SeededStreams` node
stream the object path uses, in chunks (numpy generators produce identical
sequences whether drawn one value at a time or in blocks), so an array
protocol that flips coins for the same node set in the same rounds as its
object form is *bitwise identical* to it — same traces, same
rounds-to-delivery, same failures.

A registry maps protocol names to their array forms, alongside (not
replacing) the object-form registry in :mod:`repro.sim.protocol`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.params import ProtocolParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core.channel import ChannelRound
    from repro.sim.rng import SeededStreams

__all__ = [
    "ArrayContext",
    "RoundPlan",
    "ArrayProtocol",
    "BroadcastArrayProtocol",
    "CoinDeck",
    "register_array_protocol",
    "array_protocol_class",
    "available_array_protocols",
]


@dataclass(frozen=True)
class ArrayContext:
    """Everything an array protocol knows before round 0.

    The same information the object path splits across ``n``
    :class:`~repro.sim.protocol.NodeContext` instances: the public size
    bound, the source, shared parameters, the receivers' collision-detection
    capability, and the full complement of per-node random streams.
    """

    n_nodes: int
    n_bound: int
    source: int
    params: ProtocolParams
    collision_detection: bool
    streams: "SeededStreams" = field(repr=False)


@dataclass(frozen=True)
class RoundPlan:
    """Whole-network action masks for one round.

    ``transmit`` and ``listen`` must be disjoint (half-duplex radios);
    nodes in neither mask sleep.  Message payloads are protocol-internal —
    the channel never inspects them, and receivers recover what a sender
    transmitted by indexing the protocol's own per-node payload state with
    the :class:`~repro.sim.core.channel.ChannelRound` sender ids.
    """

    transmit: np.ndarray
    listen: np.ndarray


class ArrayProtocol(ABC):
    """Base class for whole-network vectorized protocol state machines.

    Lifecycle mirrors the object path: the engine calls :meth:`setup` once
    before round 0, then for every round calls :meth:`act`, resolves the
    channel, and calls :meth:`on_feedback` with the ground-truth
    resolution (the protocol applies the collision-detection mapping
    itself, via ``ctx.collision_detection``).
    """

    #: registry name, set by :func:`register_array_protocol`.
    name: str = ""

    def setup(self, ctx: ArrayContext) -> None:
        """Bind this instance to a network-sized run; default stores ``ctx``."""
        self.ctx = ctx

    @abstractmethod
    def act(self, round_index: int) -> RoundPlan:
        """Return the whole network's action masks for the given round."""

    @abstractmethod
    def on_feedback(self, round_index: int, channel: "ChannelRound") -> None:
        """Consume the ground-truth channel resolution of one round."""

    def done(self) -> bool:
        """Whether the protocol considers the whole run complete (advisory)."""
        return False


class BroadcastArrayProtocol(ArrayProtocol):
    """Base for array-native single-message broadcast protocols.

    Mirrors :class:`~repro.sim.protocol.BroadcastProtocol`: the payload is
    injected at construction, and completion is an ``informed`` flag — here
    a boolean array over all nodes, with ``informed_round[v]`` recording
    when node ``v`` first received the message (0 for the source, -1 while
    uninformed).
    """

    def __init__(self, message: Any = "broadcast") -> None:
        if message is None:
            raise ConfigurationError("the broadcast message must be non-None")
        self._injected_message = message

    def _init_broadcast_state(self, ctx: ArrayContext) -> None:
        """Initialize the shared ``informed`` / ``informed_round`` arrays."""
        self.informed = np.zeros(ctx.n_nodes, dtype=bool)
        self.informed[ctx.source] = True
        self.informed_round = np.full(ctx.n_nodes, -1, dtype=np.int64)
        self.informed_round[ctx.source] = 0

    def done(self) -> bool:
        return bool(self.informed.all())

    def informed_rounds(self) -> tuple[int, ...]:
        """Per-node arrival rounds, as plain ints (valid once :meth:`done`)."""
        return tuple(self.informed_round.tolist())

    def undelivered(self) -> tuple[int, ...]:
        """Nodes still uninformed, for :class:`~repro.errors.BroadcastFailure`."""
        return tuple(np.nonzero(~self.informed)[0].tolist())


class CoinDeck:
    """Vectorized access to per-node seeded coin streams.

    ``draw(nodes)`` returns one uniform in ``[0, 1)`` per listed node,
    taken from that node's private generator — the *same* values, in the
    same per-node order, that the object path's ``ctx.rng.random()`` calls
    would produce.  Coins are pre-drawn per node in chunks so a round's
    draws cost two fancy-indexing operations plus an amortized
    ``1/chunk`` refill loop.
    """

    def __init__(self, streams: "SeededStreams", *, chunk: int = 64) -> None:
        if chunk < 1:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        self._gens = streams.nodes
        self._chunk = chunk
        n = len(streams.nodes)
        self._buf = np.empty((n, chunk), dtype=np.float64)
        self._pos = np.full(n, chunk, dtype=np.int64)

    def draw(self, nodes: np.ndarray) -> np.ndarray:
        """One coin per node in ``nodes`` (unique indices), from its own stream."""
        pos = self._pos
        stale = nodes[pos[nodes] >= self._chunk]
        for i in stale.tolist():
            self._buf[i] = self._gens[i].random(self._chunk)
            pos[i] = 0
        coins = self._buf[nodes, pos[nodes]]
        pos[nodes] += 1
        return coins


# ---------------------------------------------------------------------- #
# Registry (parallel to the object-form registry)
# ---------------------------------------------------------------------- #
_ARRAY_REGISTRY: dict[str, type[ArrayProtocol]] = {}


def register_array_protocol(
    name: str,
) -> Callable[[type[ArrayProtocol]], type[ArrayProtocol]]:
    """Class decorator registering an :class:`ArrayProtocol` under ``name``.

    Names are shared with the object-form registry by convention — the
    array form of ``"decay"`` is registered as ``"decay"`` — but the two
    registries are separate namespaces.
    """

    def deco(cls: type[ArrayProtocol]) -> type[ArrayProtocol]:
        if not (isinstance(cls, type) and issubclass(cls, ArrayProtocol)):
            raise SimulationError(f"{cls!r} is not an ArrayProtocol subclass")
        if name in _ARRAY_REGISTRY and _ARRAY_REGISTRY[name] is not cls:
            raise SimulationError(f"array protocol name {name!r} is already registered")
        cls.name = name
        _ARRAY_REGISTRY[name] = cls
        return cls

    return deco


def array_protocol_class(name: str) -> type[ArrayProtocol]:
    """Look up a registered array protocol class by name."""
    try:
        return _ARRAY_REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown array protocol {name!r}; registered: {sorted(_ARRAY_REGISTRY)}"
        ) from None


def available_array_protocols() -> tuple[str, ...]:
    """Names of all registered array protocols, sorted."""
    return tuple(sorted(_ARRAY_REGISTRY))
