"""Array-native engines: one instance, or many batched in one process.

:class:`ArrayEngine` drives a single
:class:`~repro.sim.core.array_protocol.ArrayProtocol` on one network with
the shared channel kernel — the vectorized counterpart of
:class:`~repro.sim.engine.Engine`, with the same round semantics, the same
:class:`~repro.sim.core.stats.RoundStats` traces (when ``trace=True``), and
the same early-stop contract.

:class:`BatchEngine` steps many *independent* instances — any mix of
(seed × topology × protocol) — in lock-step within one process.  Instances
that share a topology are grouped so their channel resolution collapses
into a single ``(batch, n) @ (n, n)`` matmul per round, and every instance
exits the batch individually the moment it completes or exhausts its round
budget, so one slow straggler never costs the finished instances anything.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import ArrayContext, ArrayProtocol, RoundPlan
from repro.sim.core.channel import (
    ChannelRound,
    adjacency_operand,
    resolve_channel,
    round_stats,
)
from repro.sim.core.stats import RoundStats, SimResult
from repro.sim.rng import SeededStreams
from repro.sim.topology import RadioNetwork

__all__ = ["ArrayEngine", "BatchEngine", "BatchItem", "BatchOutcome"]


class ArrayEngine:
    """Synchronous array-native simulator for one protocol run on one network."""

    def __init__(
        self,
        network: RadioNetwork,
        protocol: ArrayProtocol,
        *,
        seed: int = 0,
        collision_detection: bool = True,
        params: ProtocolParams | None = None,
        n_bound: int | None = None,
        trace: bool = False,
        kernel_operand: np.ndarray | None = None,
    ):
        if n_bound is not None and n_bound < network.n:
            raise SimulationError(
                f"n_bound {n_bound} is below the actual network size {network.n}"
            )
        self.network = network
        self.protocol = protocol
        self.collision_detection = collision_detection
        self.params = params if params is not None else ProtocolParams.paper()
        self.n_bound = n_bound if n_bound is not None else network.n
        self.trace = trace
        self.streams = SeededStreams(seed, network.n)
        # A caller that already holds the kernel operand for this topology
        # (the batch engine sharing one per group) passes it in; otherwise
        # build our own.
        self._adj_f = (
            kernel_operand
            if kernel_operand is not None
            else adjacency_operand(network.adjacency_matrix())
        )
        self._round = 0
        self._total_transmissions = 0
        self._total_deliveries = 0
        self._total_collisions = 0
        self._history: list[RoundStats] = []
        self._plan: RoundPlan | None = None
        protocol.setup(
            ArrayContext(
                n_nodes=network.n,
                n_bound=self.n_bound,
                source=network.source,
                params=self.params,
                collision_detection=collision_detection,
                streams=self.streams,
            )
        )

    @property
    def round_index(self) -> int:
        """Index of the next round to be executed."""
        return self._round

    @property
    def adjacency_operand(self) -> np.ndarray:
        """The kernel operand (shared across a batch group's engines)."""
        return self._adj_f

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def begin_round(self) -> RoundPlan:
        """Collect and validate the protocol's action masks for this round."""
        plan = self.protocol.act(self._round)
        if not isinstance(plan, RoundPlan):
            raise SimulationError(
                f"array protocol returned {plan!r} from act(); expected a RoundPlan"
            )
        if plan.transmit.shape != (self.network.n,) or plan.listen.shape != (
            self.network.n,
        ):
            raise SimulationError(
                f"round plan masks must have shape ({self.network.n},), got "
                f"transmit {plan.transmit.shape} and listen {plan.listen.shape}"
            )
        if plan.transmit.dot(plan.listen):
            raise SimulationError(
                f"round plan marks nodes as both transmitting and listening in "
                f"round {self._round} (radios are half-duplex)"
            )
        self._plan = plan
        return plan

    def complete_round(self, channel: ChannelRound) -> RoundStats | None:
        """Apply one resolved round: feedback, counters, optional trace."""
        plan = self._plan
        if plan is None:
            raise SimulationError("complete_round() called without begin_round()")
        r = self._round
        self.protocol.on_feedback(r, channel)
        self._round += 1
        self._plan = None
        self._total_transmissions += int(np.count_nonzero(plan.transmit))
        self._total_deliveries += int(np.count_nonzero(channel.clean))
        self._total_collisions += int(np.count_nonzero(channel.collided))
        if self.trace:
            stats = round_stats(r, plan.transmit, channel)
            self._history.append(stats)
            return stats
        return None

    def step(self) -> RoundStats | None:
        """Execute one round; returns its record only when tracing."""
        plan = self.begin_round()
        channel = resolve_channel(self._adj_f, plan.transmit, plan.listen)
        return self.complete_round(channel)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Callable[["ArrayEngine"], bool] | None = None,
    ) -> SimResult:
        """Run up to ``max_rounds`` rounds, stopping early if ``stop_when(engine)``.

        Same contract as :meth:`repro.sim.engine.Engine.run`: the predicate
        is evaluated before the first round and after every round.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        start_round = self._round
        start_transmissions = self._total_transmissions
        start_deliveries = self._total_deliveries
        start_collisions = self._total_collisions
        start_history = len(self._history)
        stopped_early = False
        if stop_when is not None and stop_when(self):
            stopped_early = True
        else:
            for _ in range(max_rounds):
                self.step()
                if stop_when is not None and stop_when(self):
                    stopped_early = True
                    break
        return SimResult(
            rounds_run=self._round - start_round,
            stopped_early=stopped_early,
            total_transmissions=self._total_transmissions - start_transmissions,
            total_deliveries=self._total_deliveries - start_deliveries,
            total_collisions=self._total_collisions - start_collisions,
            history=tuple(self._history[start_history:]),
        )

    def snapshot(self, *, stopped_early: bool = False) -> SimResult:
        """A :class:`SimResult` covering every round executed so far."""
        return SimResult(
            rounds_run=self._round,
            stopped_early=stopped_early,
            total_transmissions=self._total_transmissions,
            total_deliveries=self._total_deliveries,
            total_collisions=self._total_collisions,
            history=tuple(self._history),
        )


@dataclass
class BatchItem:
    """One independent simulation instance queued into a :class:`BatchEngine`."""

    network: RadioNetwork
    protocol: ArrayProtocol
    budget: int
    seed: int = 0
    collision_detection: bool = True
    params: ProtocolParams | None = None
    n_bound: int | None = None
    #: opaque caller bookkeeping, carried through to the outcome.
    tag: Any = None


@dataclass
class BatchOutcome:
    """Terminal state of one batch item."""

    item: BatchItem
    sim: SimResult
    #: whether the protocol reported ``done()`` within the budget.
    completed: bool


class BatchEngine:
    """Step many independent array-protocol instances in one process.

    Construction builds one :class:`ArrayEngine` per item; :meth:`run`
    advances every live instance one round per iteration, fusing the
    channel resolution of same-topology instances into a single batched
    kernel call, and retires each instance the moment its protocol reports
    ``done()`` (completed) or its round budget expires (failed).
    """

    def __init__(self, items: Sequence[BatchItem], *, trace: bool = False):
        self.items = list(items)
        for item in self.items:
            if item.budget < 0:
                raise SimulationError(
                    f"budget must be non-negative, got {item.budget}"
                )
        # Group same-topology instances so each group's channel resolution
        # is one batched matmul; one kernel operand is built per *distinct*
        # topology and shared by every engine in its group.  The grouping
        # key is cached on the network, so repeated items cost O(1) here
        # rather than an O(n^2) serialization each.
        self._groups: dict[bytes, list[int]] = {}
        operands: dict[bytes, np.ndarray] = {}
        keys: list[bytes] = []
        for i, item in enumerate(self.items):
            key = item.network.adjacency_key()
            keys.append(key)
            self._groups.setdefault(key, []).append(i)
            if key not in operands:
                operands[key] = adjacency_operand(item.network.adjacency_matrix())
        self.engines = [
            ArrayEngine(
                item.network,
                item.protocol,
                seed=item.seed,
                collision_detection=item.collision_detection,
                params=item.params,
                n_bound=item.n_bound,
                trace=trace,
                kernel_operand=operands[key],
            )
            for item, key in zip(self.items, keys)
        ]

    def run(self) -> list[BatchOutcome]:
        """Run every item to completion or budget; outcomes in item order."""
        outcomes: list[BatchOutcome | None] = [None] * len(self.items)
        live: set[int] = set()

        def retire(i: int, *, completed: bool) -> None:
            outcomes[i] = BatchOutcome(
                item=self.items[i],
                sim=self.engines[i].snapshot(stopped_early=completed),
                completed=completed,
            )
            live.discard(i)

        for i, item in enumerate(self.items):
            if item.protocol.done():
                retire(i, completed=True)  # vacuous goal: zero rounds, like run()
            elif item.budget == 0:
                retire(i, completed=False)
            else:
                live.add(i)

        while live:
            for indices in self._groups.values():
                active = [i for i in indices if i in live]
                if not active:
                    continue
                if len(active) == 1:
                    self.engines[active[0]].step()
                    continue
                plans = [self.engines[i].begin_round() for i in active]
                transmit = np.stack([p.transmit for p in plans])
                listen = np.stack([p.listen for p in plans])
                channel = resolve_channel(
                    self.engines[active[0]].adjacency_operand, transmit, listen
                )
                for row, i in enumerate(active):
                    self.engines[i].complete_round(channel.row(row))
            for i in list(live):
                if self.items[i].protocol.done():
                    retire(i, completed=True)
                elif self.engines[i].round_index >= self.items[i].budget:
                    retire(i, completed=False)
        return [outcome for outcome in outcomes if outcome is not None]
