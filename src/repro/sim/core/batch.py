"""Array-native engines: one instance, or many batched in one process.

:class:`ArrayEngine` drives a single
:class:`~repro.sim.core.array_protocol.ArrayProtocol` on one network with
the shared channel kernel — the vectorized counterpart of
:class:`~repro.sim.engine.Engine`, with the same round semantics, the same
:class:`~repro.sim.core.stats.RoundStats` traces (when ``trace=True``), and
the same early-stop contract.

:class:`BatchEngine` steps many *independent* instances — any mix of
(seed × topology × protocol) — in lock-step within one process.  Instances
that share a topology (and channel backend) are grouped so their channel
resolution collapses into a single batched kernel call per round — a
``(batch, n) @ (n, n)`` matmul on the dense backend, one fused edge-list
segment sum on the sparse one — and every instance exits the batch
individually the moment it completes or exhausts its round budget, so one
slow straggler never costs the finished instances anything.

Backend selection (:func:`resolve_channel_backend`) is per run:
``params.channel_backend`` forces ``"dense"``, ``"sparse"`` or
``"bitpacked"``, and the default ``"auto"`` picks sparse whenever the
graph's adjacency density is at or below
``params.sparse_density_threshold`` and the bit-packed popcount kernel
for dense-density graphs of at least ``params.bitpacked_min_n`` nodes.
All backends are bitwise-identical in every observable (traces, round
counts, channel totals), so the choice is purely a speed/memory knob.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import ArrayContext, ArrayProtocol, RoundPlan
from repro.sim.core.channel import (
    BitOperand,
    ChannelRound,
    DenseOperand,
    KernelOperand,
    SparseOperand,
    as_kernel_operand,
    resolve_channel,
    round_stats,
)
from repro.sim.core.stats import (
    FaultTotals,
    RoundStats,
    RunTelemetry,
    SimResult,
    TrafficTotals,
)
from repro.sim.faults import FaultSchedule, FaultState
from repro.sim.rng import SeededStreams
from repro.sim.topology import RadioNetwork

if TYPE_CHECKING:
    from repro.analysis.simsan.core import Sanitizer, SanitizerConfig

__all__ = [
    "ArrayEngine",
    "BatchEngine",
    "BatchItem",
    "BatchOutcome",
    "RoundObserver",
    "TraceObserver",
    "resolve_channel_backend",
    "select_kernel_operand",
]

#: A streaming round consumer: called once per executed round with that
#: round's omniscient :class:`RoundStats`, in round order — O(1) memory
#: where ``trace=True`` is O(rounds · n).
RoundObserver = Callable[[RoundStats], None]


class TraceObserver:
    """The observer that *is* trace collection: appends every round's record.

    ``trace=True`` on the engines installs one of these as the first
    observer, so the trace history and every user observer are guaranteed
    to see the very same :class:`RoundStats` objects.
    """

    __slots__ = ("history",)

    def __init__(self) -> None:
        self.history: list[RoundStats] = []

    def __call__(self, stats: RoundStats) -> None:
        self.history.append(stats)


#: Row indices of the per-node traffic accumulator (see ArrayEngine).
_TX, _RX, _COLL, _AWAKE = range(4)


def _traffic_totals(counters: np.ndarray) -> TrafficTotals:
    """Freeze a ``(4, n)`` counter window into a :class:`TrafficTotals`."""
    return TrafficTotals(
        transmissions=tuple(int(v) for v in counters[_TX]),
        receptions=tuple(int(v) for v in counters[_RX]),
        collisions_heard=tuple(int(v) for v in counters[_COLL]),
        awake_slots=tuple(int(v) for v in counters[_AWAKE]),
    )


def _new_phase_seconds() -> dict[str, float]:
    return {"act": 0.0, "channel": 0.0, "feedback": 0.0}


def resolve_channel_backend(network: RadioNetwork, params: ProtocolParams) -> str:
    """The concrete channel backend (``"dense"``/``"sparse"``/``"bitpacked"``).

    ``params.channel_backend`` wins when explicit.  ``"auto"`` picks by
    density and size: networks below ``params.sparse_min_n`` keep the BLAS
    matmul (which wins below the crossover even on sparse graphs); larger
    networks whose adjacency density ``2·edges / n²`` is at or below the
    params threshold get the Θ(m)-per-round CSR kernel; denser ones get
    the bit-packed popcount kernel from ``params.bitpacked_min_n`` nodes
    up (same Θ(n²) work as dense, ~64× less operand memory) and the
    matmul below it.  Every backend is bitwise-identical in results.
    """
    backend = params.channel_backend
    if backend != "auto":
        return backend
    if network.n < params.sparse_min_n:
        return "dense"
    density = (2 * network.num_edges) / (network.n * network.n)
    if density <= params.sparse_density_threshold:
        return "sparse"
    return "bitpacked" if network.n >= params.bitpacked_min_n else "dense"


def select_kernel_operand(
    network: RadioNetwork, params: ProtocolParams
) -> KernelOperand:
    """Build the kernel operand :func:`resolve_channel_backend` picks.

    The sparse and bit-packed paths never touch
    :meth:`RadioNetwork.adjacency_matrix`, so choosing either keeps the
    whole run free of n² allocations.
    """
    backend = resolve_channel_backend(network, params)
    if backend == "sparse":
        return SparseOperand(*network.csr())
    if backend == "bitpacked":
        return BitOperand(*network.csr())
    return DenseOperand(network.adjacency_matrix())


class ArrayEngine:
    """Synchronous array-native simulator for one protocol run on one network."""

    def __init__(
        self,
        network: RadioNetwork,
        protocol: ArrayProtocol,
        *,
        seed: int = 0,
        collision_detection: bool = True,
        params: ProtocolParams | None = None,
        n_bound: int | None = None,
        trace: bool = False,
        kernel_operand: KernelOperand | np.ndarray | None = None,
        observers: Sequence[RoundObserver] | None = None,
        faults: FaultSchedule | None = None,
        sanitize: bool | SanitizerConfig | None = None,
    ) -> None:
        if n_bound is not None and n_bound < network.n:
            raise SimulationError(
                f"n_bound {n_bound} is below the actual network size {network.n}"
            )
        self.network = network
        self.protocol = protocol
        self.collision_detection = collision_detection
        self.params = params if params is not None else ProtocolParams.paper()
        self.n_bound = n_bound if n_bound is not None else network.n
        self.trace = trace
        self.streams = SeededStreams(seed, network.n)
        # A caller that already holds the kernel operand for this topology
        # (the batch engine sharing one per group) passes it in — a raw
        # adjacency matrix means dense; otherwise select dense or sparse
        # per the params' backend policy and the graph's density.
        self._operand = (
            as_kernel_operand(kernel_operand)
            if kernel_operand is not None
            else select_kernel_operand(network, self.params)
        )
        self._round = 0
        # Per-node streaming traffic counters (rows: transmissions, clean
        # receptions, collisions heard, awake slots).  O(n) memory for the
        # whole run; the SimResult scalar totals are sums of these rows,
        # so per-node and scalar accounting cannot drift apart.
        self._traffic = np.zeros((4, network.n), dtype=np.int64)
        # Trace collection is itself just the first round observer.
        self._trace_observer = TraceObserver() if trace else None
        chain: list[RoundObserver] = [] if self._trace_observer is None else [
            self._trace_observer
        ]
        chain.extend(observers or ())
        self._observers: tuple[RoundObserver, ...] = tuple(chain)
        self._phase_seconds = _new_phase_seconds()
        self._wall_seconds = 0.0
        self._plan: RoundPlan | None = None
        self._last_channel: ChannelRound | None = None
        # An attached *empty* schedule is a no-op by construction: no
        # FaultState is built, no engine-stream coin is ever drawn, and
        # SimResult.faults stays None — bitwise identical to no schedule.
        self._fault_state: FaultState | None = None
        if faults is not None and not faults.is_empty:
            self._fault_state = FaultState(
                faults, network, self._operand, self.streams.engine
            )
        # Opt-in runtime sanitizer (see repro.analysis.simsan).  ``None``
        # defers to the REPRO_SANITIZE environment variable; a disabled
        # engine holds no sanitizer object, so its only per-round cost is
        # the ``is not None`` guards in the round hooks.  The import is
        # deferred: simsan sits in the analysis layer above the kernel
        # modules, so a module-level import here would be circular when
        # the import chain starts from the analysis side — and an engine
        # built with sanitize=False never loads the sanitizer at all.
        self._sanitizer: Sanitizer | None = None
        if sanitize is not False:
            from repro.analysis.simsan.core import (
                Sanitizer as _Sanitizer,
                SanitizerConfig as _SanitizerConfig,
                sanitize_from_env,
            )

            enabled = sanitize if sanitize is not None else sanitize_from_env()
            if enabled is not False:
                config = (
                    enabled
                    if isinstance(enabled, _SanitizerConfig)
                    else _SanitizerConfig()
                )
                self._sanitizer = _Sanitizer(
                    config, network=network, operand=self._operand, seed=seed
                )
        protocol.setup(
            ArrayContext(
                n_nodes=network.n,
                n_bound=self.n_bound,
                source=network.source,
                params=self.params,
                collision_detection=collision_detection,
                streams=self.streams,
            )
        )

    @property
    def round_index(self) -> int:
        """Index of the next round to be executed."""
        return self._round

    @property
    def kernel_operand(self) -> KernelOperand:
        """The channel-kernel operand (shared across a batch group's engines)."""
        return self._operand

    def round_operand(self) -> KernelOperand:
        """The operand to resolve the *current* round against.

        Identical to :attr:`kernel_operand` on fault-free runs; under a
        fault schedule with edge flips it is the operand for the current
        (time-varying) adjacency, valid only after :meth:`begin_round`
        has advanced the flips for this round.
        """
        if self._fault_state is None:
            return self._operand
        return self._fault_state.operand

    @property
    def last_channel(self) -> ChannelRound | None:
        """The most recently completed round as the radios perceived it.

        Under a fault schedule this is the post-fault channel (loss and
        jamming applied) — the one the protocol feedback and any
        materialized :class:`RoundStats` saw — not the raw kernel output.
        """
        return self._last_channel

    @property
    def backend(self) -> str:
        """Which channel backend this engine runs on (``"dense"``/``"sparse"``)."""
        return self._operand.backend

    @property
    def fault_state(self) -> FaultState | None:
        """The live fault-layer state, or ``None`` on fault-free runs.

        Read-only introspection for tooling (the sanitizer's bisector
        records its adjacency version in repro bundles); mutating it
        mid-run is undefined behaviour.
        """
        return self._fault_state

    @property
    def sanitized(self) -> bool:
        """Whether this engine runs with the runtime sanitizer attached."""
        return self._sanitizer is not None

    @property
    def history(self) -> tuple[RoundStats, ...]:
        """The trace history so far (empty unless ``trace=True``)."""
        if self._trace_observer is None:
            return ()
        return tuple(self._trace_observer.history)

    def fault_totals(self) -> FaultTotals | None:
        """Lifetime injected-fault totals across every round executed so far.

        ``None`` when no fault layer is attached.  Unlike the per-window
        totals a :meth:`run` result carries, this accumulates across
        multiple ``run()`` calls on the same engine.
        """
        if self._fault_state is None:
            return None
        return self._fault_state.totals(self._fault_state.counters)

    def telemetry(self) -> RunTelemetry:
        """Wall-clock observables accumulated so far (see :class:`RunTelemetry`).

        ``wall_seconds`` covers time spent inside :meth:`run`; the phase
        timers also cover :meth:`step` calls made directly.
        """
        return RunTelemetry(
            rounds=self._round,
            wall_seconds=self._wall_seconds,
            phase_seconds=dict(self._phase_seconds),
        )

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def begin_round(self) -> RoundPlan:
        """Collect and validate the protocol's action masks for this round."""
        t0 = time.perf_counter()
        plan = self.protocol.act(self._round)
        if not isinstance(plan, RoundPlan):
            raise SimulationError(
                f"array protocol returned {plan!r} from act(); expected a RoundPlan"
            )
        if plan.transmit.shape != (self.network.n,) or plan.listen.shape != (
            self.network.n,
        ):
            raise SimulationError(
                f"round plan masks must have shape ({self.network.n},), got "
                f"transmit {plan.transmit.shape} and listen {plan.listen.shape}"
            )
        # Disjointness of transmit/listen (half-duplex) is enforced by the
        # channel kernel itself, for every caller — no engine-side copy.
        crashed: np.ndarray | None = None
        if self._fault_state is not None:
            crashed = self._fault_state.begin_round(self._round)
            if crashed is not None:
                # A crashed node's radio is off: it neither transmits nor
                # listens, and (via the awake counter summing these masks)
                # accrues no awake slots.  The protocol's own arrays are
                # untouched — nodes revive with their state intact.
                plan = RoundPlan(
                    transmit=plan.transmit & ~crashed,
                    listen=plan.listen & ~crashed,
                )
        if self._sanitizer is not None:
            self._sanitizer.on_begin_round(self._round, plan, crashed)
        self._plan = plan
        self._phase_seconds["act"] += time.perf_counter() - t0
        return plan

    def discard_plan(self) -> None:
        """Drop a pending plan without executing it.

        Error-path hygiene for batch callers: when one engine's ``act()``
        raises mid-group, its siblings have already planned this round —
        discarding leaves them in the documented "no round in flight"
        state instead of dangling.
        """
        self._plan = None

    def resolve_round(self) -> ChannelRound:
        """Resolve the pending plan's channel round (timed as the kernel phase)."""
        plan = self._plan
        if plan is None:
            raise SimulationError("resolve_round() called without begin_round()")
        t0 = time.perf_counter()
        channel = resolve_channel(self.round_operand(), plan.transmit, plan.listen)
        self._phase_seconds["channel"] += time.perf_counter() - t0
        return channel

    def complete_round(self, channel: ChannelRound) -> RoundStats | None:
        """Apply one resolved round: feedback, counters, observers.

        Returns the round's :class:`RoundStats` when it was materialized
        (tracing or observers installed), ``None`` otherwise.
        """
        plan = self._plan
        if plan is None:
            raise SimulationError("complete_round() called without begin_round()")
        t0 = time.perf_counter()
        r = self._round
        if self._sanitizer is not None:
            # Differential + operand checks run on the *raw* kernel output
            # (fault perception is a deliberate rewrite, not a divergence),
            # against the operand this round actually resolved on.
            self._sanitizer.on_channel(
                r, plan, channel, self.round_operand(), self._fault_state
            )
        if self._fault_state is not None:
            # Loss and jamming rewrite what the radios *perceive*; from
            # here on (feedback, counters, stats) only the perceived
            # channel exists, keeping all observables self-consistent.
            channel = self._fault_state.perceive(r, plan.listen, channel)
        self._last_channel = channel
        self.protocol.on_feedback(r, channel)
        self._round += 1
        self._plan = None
        traffic = self._traffic
        traffic[_TX] += plan.transmit
        traffic[_RX] += channel.clean
        traffic[_COLL] += channel.collided
        # transmit and listen are disjoint (kernel precondition), so this
        # counts exactly the radios-on rounds.
        traffic[_AWAKE] += plan.transmit | plan.listen
        if self._sanitizer is not None:
            # Conservation checks see the *perceived* channel — the same
            # masks the counters above just accumulated.
            self._sanitizer.on_round_complete(
                r,
                plan,
                channel,
                traffic,
                None if self._fault_state is None else self._fault_state.counters,
            )
        stats: RoundStats | None = None
        if self._observers:
            stats = round_stats(r, plan.transmit, channel)
            for observer in self._observers:
                observer(stats)
        self._phase_seconds["feedback"] += time.perf_counter() - t0
        return stats

    def step(self) -> RoundStats | None:
        """Execute one round; returns its record when it was materialized."""
        self.begin_round()
        return self.complete_round(self.resolve_round())

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Callable[["ArrayEngine"], bool] | None = None,
    ) -> SimResult:
        """Run up to ``max_rounds`` rounds, stopping early if ``stop_when(engine)``.

        Same contract as :meth:`repro.sim.engine.Engine.run`: the predicate
        is evaluated before the first round and after every round.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        t0 = time.perf_counter()
        start_round = self._round
        start_traffic = self._traffic.copy()
        fault_state = self._fault_state
        start_faults = None if fault_state is None else fault_state.counters.copy()
        history = self._trace_observer.history if self._trace_observer else []
        start_history = len(history)
        stopped_early = False
        if stop_when is not None and stop_when(self):
            stopped_early = True
        else:
            for _ in range(max_rounds):
                self.step()
                if stop_when is not None and stop_when(self):
                    stopped_early = True
                    break
        self._wall_seconds += time.perf_counter() - t0
        return self._result(
            rounds_run=self._round - start_round,
            stopped_early=stopped_early,
            counters=self._traffic - start_traffic,
            history=tuple(history[start_history:]),
            fault_counters=(
                None if fault_state is None else fault_state.counters - start_faults
            ),
        )

    def snapshot(self, *, stopped_early: bool = False) -> SimResult:
        """A :class:`SimResult` covering every round executed so far."""
        return self._result(
            rounds_run=self._round,
            stopped_early=stopped_early,
            counters=self._traffic,
            history=self.history,
            fault_counters=(
                None if self._fault_state is None else self._fault_state.counters
            ),
        )

    def _result(
        self,
        *,
        rounds_run: int,
        stopped_early: bool,
        counters: np.ndarray,
        history: tuple[RoundStats, ...],
        fault_counters: np.ndarray | None = None,
    ) -> SimResult:
        """Freeze one run window; scalar totals are sums of the per-node rows."""
        traffic = _traffic_totals(counters)
        faults: FaultTotals | None = None
        if fault_counters is not None:
            if self._fault_state is None:
                raise SimulationError("fault counters present without a fault state")
            faults = self._fault_state.totals(fault_counters)
        result = SimResult(
            rounds_run=rounds_run,
            stopped_early=stopped_early,
            total_transmissions=int(counters[_TX].sum()),
            total_deliveries=int(counters[_RX].sum()),
            total_collisions=int(counters[_COLL].sum()),
            history=history,
            traffic=traffic,
            faults=faults,
        )
        if self._sanitizer is not None:
            self._sanitizer.on_result(self._round, result)
        return result


@dataclass
class BatchItem:
    """One independent simulation instance queued into a :class:`BatchEngine`."""

    network: RadioNetwork
    protocol: ArrayProtocol
    budget: int
    seed: int = 0
    collision_detection: bool = True
    params: ProtocolParams | None = None
    n_bound: int | None = None
    #: opaque caller bookkeeping, carried through to the outcome.
    tag: Any = None
    #: optional fault schedule (see :mod:`repro.sim.faults`); items whose
    #: schedules differ are never fused into one kernel call, because a
    #: schedule with edge flips makes the operand time-varying.
    faults: FaultSchedule | None = None


@dataclass
class BatchOutcome:
    """Terminal state of one batch item."""

    item: BatchItem
    sim: SimResult
    #: whether the protocol reported ``done()`` within the budget.
    completed: bool


class BatchEngine:
    """Step many independent array-protocol instances in one process.

    Construction builds one :class:`ArrayEngine` per item; :meth:`run`
    advances every live instance one round per iteration, fusing the
    channel resolution of same-topology instances into a single batched
    kernel call, and retires each instance the moment its protocol reports
    ``done()`` (completed) or its round budget expires (failed).
    """

    def __init__(
        self,
        items: Sequence[BatchItem],
        *,
        trace: bool = False,
        observers: Sequence[Callable[[int, RoundStats], None]] | None = None,
        sanitize: bool | SanitizerConfig | None = None,
    ) -> None:
        """``observers`` get ``(item_index, RoundStats)`` for every executed
        round of every item — the streaming counterpart of ``trace=True``,
        at O(1) memory across the whole batch.  ``sanitize`` attaches one
        runtime sanitizer per item engine (``None`` defers to
        ``REPRO_SANITIZE``), so fused groups are checked per instance on
        the de-batched rows each instance consumed."""
        self.items = list(items)
        self._phase_seconds = _new_phase_seconds()
        self._wall_seconds = 0.0
        for item in self.items:
            if item.budget < 0:
                raise SimulationError(
                    f"budget must be non-negative, got {item.budget}"
                )
        # Group same-topology instances so each group's channel resolution
        # is one batched kernel call; one kernel operand is built per
        # *distinct* (topology, backend) pair and shared by every engine in
        # its group — items whose params pick different backends must not
        # share an operand.  The topology key is cached on the network, so
        # repeated items cost O(1) here rather than a re-serialization each.
        # The fault-schedule identity is folded into the key: under edge
        # flips the per-round operand is time-varying, so only items
        # sharing the *same* schedule object (and therefore the same
        # flip timeline — groups run in lockstep) may share a fused call;
        # a missing or empty schedule is identity 0, so fault-free items
        # keep fusing exactly as before.
        self._groups: dict[tuple[bytes, str, int], list[int]] = {}
        operands: dict[tuple[bytes, str, int], KernelOperand] = {}
        keys: list[tuple[bytes, str, int]] = []
        for i, item in enumerate(self.items):
            params = item.params if item.params is not None else ProtocolParams.paper()
            backend = resolve_channel_backend(item.network, params)
            no_faults = item.faults is None or item.faults.is_empty
            fault_token = 0 if no_faults else id(item.faults)
            key = (item.network.adjacency_key(), backend, fault_token)
            keys.append(key)
            self._groups.setdefault(key, []).append(i)
            if key not in operands:
                operands[key] = select_kernel_operand(item.network, params)
        def item_observers(i: int) -> list[RoundObserver] | None:
            if not observers:
                return None

            def forward(stats: RoundStats, _i: int = i) -> None:
                for observer in observers:
                    observer(_i, stats)

            return [forward]

        self.engines = [
            ArrayEngine(
                item.network,
                item.protocol,
                seed=item.seed,
                collision_detection=item.collision_detection,
                params=item.params,
                n_bound=item.n_bound,
                trace=trace,
                kernel_operand=operands[key],
                observers=item_observers(i),
                faults=item.faults,
                sanitize=sanitize,
            )
            for i, (item, key) in enumerate(zip(self.items, keys))
        ]

    def group_sizes(self) -> list[int]:
        """Instance count of each fused kernel group, in first-seen order.

        One group per distinct (topology, backend, fault-schedule identity)
        key — the batch's fusion structure, exposed for tests and tuning.
        """
        return [len(indices) for indices in self._groups.values()]

    def telemetry(self) -> RunTelemetry:
        """Batch-wide wall-clock observables (see :class:`RunTelemetry`).

        ``rounds`` sums every instance's executed rounds; the phase timers
        combine the fused kernel calls (timed here) with the per-engine
        act/feedback phases.
        """
        phase = dict(self._phase_seconds)
        rounds = 0
        for engine in self.engines:
            rounds += engine.round_index
            for key, value in engine.telemetry().phase_seconds.items():
                phase[key] += value
        return RunTelemetry(
            rounds=rounds,
            wall_seconds=self._wall_seconds,
            phase_seconds=phase,
        )

    def run(self) -> list[BatchOutcome]:
        """Run every item to completion or budget; outcomes in item order."""
        t_run = time.perf_counter()
        outcomes: list[BatchOutcome | None] = [None] * len(self.items)
        live: set[int] = set()

        def retire(i: int, *, completed: bool) -> None:
            outcomes[i] = BatchOutcome(
                item=self.items[i],
                sim=self.engines[i].snapshot(stopped_early=completed),
                completed=completed,
            )
            live.discard(i)

        for i, item in enumerate(self.items):
            if item.protocol.done():
                retire(i, completed=True)  # vacuous goal: zero rounds, like run()
            elif item.budget == 0:
                retire(i, completed=False)
            else:
                live.add(i)

        while live:
            for indices in self._groups.values():
                active = [i for i in indices if i in live]
                if not active:
                    continue
                if len(active) == 1:
                    try:
                        self.engines[active[0]].step()
                    except SimulationError as exc:
                        # Same item-naming courtesy as the fused path below.
                        raise SimulationError(
                            f"{exc} (item {active[0]})"
                        ) from None
                    continue
                plans = []
                for i in active:
                    try:
                        plans.append(self.engines[i].begin_round())
                    except SimulationError as exc:
                        # Attribute the failing item (as the singleton and
                        # kernel paths do) and discard the plans the
                        # already-planned siblings are holding, so no
                        # engine is left with a half-started round.
                        for j in active:
                            self.engines[j].discard_plan()
                        raise SimulationError(f"{exc} (item {i})") from None
                transmit = np.stack([p.transmit for p in plans])
                listen = np.stack([p.listen for p in plans])
                t0 = time.perf_counter()
                try:
                    # All engines in a group share one fault schedule (it
                    # is part of the group key) and run in lockstep, so
                    # the first engine's per-round operand is the group's.
                    channel = resolve_channel(
                        self.engines[active[0]].round_operand(), transmit, listen
                    )
                except SimulationError as exc:
                    # The kernel reports positions in the fused stack; map
                    # them back to this batch's item indices so the culprit
                    # is the caller's item, not a row of the live subset.
                    # Same hygiene as the act() path: no dangling plans.
                    for j in active:
                        self.engines[j].discard_plan()
                    raise SimulationError(
                        f"{exc} (batch rows are items {active}, in order)"
                    ) from None
                self._phase_seconds["channel"] += time.perf_counter() - t0
                for row, i in enumerate(active):
                    self.engines[i].complete_round(channel.row(row))
            for i in sorted(live):
                if self.items[i].protocol.done():
                    retire(i, completed=True)
                elif self.engines[i].round_index >= self.items[i].budget:
                    retire(i, completed=False)
        self._wall_seconds += time.perf_counter() - t_run
        return [outcome for outcome in outcomes if outcome is not None]
