"""Array-native engines: one instance, or many batched in one process.

:class:`ArrayEngine` drives a single
:class:`~repro.sim.core.array_protocol.ArrayProtocol` on one network with
the shared channel kernel — the vectorized counterpart of
:class:`~repro.sim.engine.Engine`, with the same round semantics, the same
:class:`~repro.sim.core.stats.RoundStats` traces (when ``trace=True``), and
the same early-stop contract.

:class:`BatchEngine` steps many *independent* instances — any mix of
(seed × topology × protocol) — in lock-step within one process.  Instances
that share a topology (and channel backend) are grouped so their channel
resolution collapses into a single batched kernel call per round — a
``(batch, n) @ (n, n)`` matmul on the dense backend, one fused edge-list
segment sum on the sparse one — and every instance exits the batch
individually the moment it completes or exhausts its round budget, so one
slow straggler never costs the finished instances anything.

Backend selection (:func:`resolve_channel_backend`) is per run:
``params.channel_backend`` forces ``"dense"`` or ``"sparse"``, and the
default ``"auto"`` picks sparse whenever the graph's adjacency density is
at or below ``params.sparse_density_threshold``.  The two backends are
bitwise-identical in every observable (traces, round counts, channel
totals), so the choice is purely a speed/memory knob.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.params import ProtocolParams
from repro.sim.core.array_protocol import ArrayContext, ArrayProtocol, RoundPlan
from repro.sim.core.channel import (
    ChannelRound,
    DenseOperand,
    KernelOperand,
    SparseOperand,
    as_kernel_operand,
    resolve_channel,
    round_stats,
)
from repro.sim.core.stats import RoundStats, SimResult
from repro.sim.rng import SeededStreams
from repro.sim.topology import RadioNetwork

__all__ = [
    "ArrayEngine",
    "BatchEngine",
    "BatchItem",
    "BatchOutcome",
    "resolve_channel_backend",
    "select_kernel_operand",
]


def resolve_channel_backend(network: RadioNetwork, params: ProtocolParams) -> str:
    """The concrete channel backend (``"dense"``/``"sparse"``) for one run.

    ``params.channel_backend`` wins when explicit; ``"auto"`` goes sparse
    only for networks of at least ``params.sparse_min_n`` nodes whose
    adjacency density ``2·edges / n²`` is at or below the params threshold
    — large sparse topologies get the Θ(m)-per-round CSR kernel, while
    small or dense ones keep the BLAS matmul (which wins below the
    crossover even on sparse graphs).  Both backends are bitwise-identical
    in results.
    """
    backend = params.channel_backend
    if backend != "auto":
        return backend
    if network.n < params.sparse_min_n:
        return "dense"
    density = (2 * network.num_edges) / (network.n * network.n)
    return "sparse" if density <= params.sparse_density_threshold else "dense"


def select_kernel_operand(
    network: RadioNetwork, params: ProtocolParams
) -> KernelOperand:
    """Build the kernel operand :func:`resolve_channel_backend` picks.

    The sparse path never touches :meth:`RadioNetwork.adjacency_matrix`,
    so choosing it keeps the whole run free of n² allocations.
    """
    if resolve_channel_backend(network, params) == "sparse":
        return SparseOperand(*network.csr())
    return DenseOperand(network.adjacency_matrix())


class ArrayEngine:
    """Synchronous array-native simulator for one protocol run on one network."""

    def __init__(
        self,
        network: RadioNetwork,
        protocol: ArrayProtocol,
        *,
        seed: int = 0,
        collision_detection: bool = True,
        params: ProtocolParams | None = None,
        n_bound: int | None = None,
        trace: bool = False,
        kernel_operand: KernelOperand | np.ndarray | None = None,
    ):
        if n_bound is not None and n_bound < network.n:
            raise SimulationError(
                f"n_bound {n_bound} is below the actual network size {network.n}"
            )
        self.network = network
        self.protocol = protocol
        self.collision_detection = collision_detection
        self.params = params if params is not None else ProtocolParams.paper()
        self.n_bound = n_bound if n_bound is not None else network.n
        self.trace = trace
        self.streams = SeededStreams(seed, network.n)
        # A caller that already holds the kernel operand for this topology
        # (the batch engine sharing one per group) passes it in — a raw
        # adjacency matrix means dense; otherwise select dense or sparse
        # per the params' backend policy and the graph's density.
        self._operand = (
            as_kernel_operand(kernel_operand)
            if kernel_operand is not None
            else select_kernel_operand(network, self.params)
        )
        self._round = 0
        self._total_transmissions = 0
        self._total_deliveries = 0
        self._total_collisions = 0
        self._history: list[RoundStats] = []
        self._plan: RoundPlan | None = None
        protocol.setup(
            ArrayContext(
                n_nodes=network.n,
                n_bound=self.n_bound,
                source=network.source,
                params=self.params,
                collision_detection=collision_detection,
                streams=self.streams,
            )
        )

    @property
    def round_index(self) -> int:
        """Index of the next round to be executed."""
        return self._round

    @property
    def kernel_operand(self) -> KernelOperand:
        """The channel-kernel operand (shared across a batch group's engines)."""
        return self._operand

    @property
    def backend(self) -> str:
        """Which channel backend this engine runs on (``"dense"``/``"sparse"``)."""
        return self._operand.backend

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def begin_round(self) -> RoundPlan:
        """Collect and validate the protocol's action masks for this round."""
        plan = self.protocol.act(self._round)
        if not isinstance(plan, RoundPlan):
            raise SimulationError(
                f"array protocol returned {plan!r} from act(); expected a RoundPlan"
            )
        if plan.transmit.shape != (self.network.n,) or plan.listen.shape != (
            self.network.n,
        ):
            raise SimulationError(
                f"round plan masks must have shape ({self.network.n},), got "
                f"transmit {plan.transmit.shape} and listen {plan.listen.shape}"
            )
        # Disjointness of transmit/listen (half-duplex) is enforced by the
        # channel kernel itself, for every caller — no engine-side copy.
        self._plan = plan
        return plan

    def complete_round(self, channel: ChannelRound) -> RoundStats | None:
        """Apply one resolved round: feedback, counters, optional trace."""
        plan = self._plan
        if plan is None:
            raise SimulationError("complete_round() called without begin_round()")
        r = self._round
        self.protocol.on_feedback(r, channel)
        self._round += 1
        self._plan = None
        self._total_transmissions += int(np.count_nonzero(plan.transmit))
        self._total_deliveries += int(np.count_nonzero(channel.clean))
        self._total_collisions += int(np.count_nonzero(channel.collided))
        if self.trace:
            stats = round_stats(r, plan.transmit, channel)
            self._history.append(stats)
            return stats
        return None

    def step(self) -> RoundStats | None:
        """Execute one round; returns its record only when tracing."""
        plan = self.begin_round()
        channel = resolve_channel(self._operand, plan.transmit, plan.listen)
        return self.complete_round(channel)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Callable[["ArrayEngine"], bool] | None = None,
    ) -> SimResult:
        """Run up to ``max_rounds`` rounds, stopping early if ``stop_when(engine)``.

        Same contract as :meth:`repro.sim.engine.Engine.run`: the predicate
        is evaluated before the first round and after every round.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        start_round = self._round
        start_transmissions = self._total_transmissions
        start_deliveries = self._total_deliveries
        start_collisions = self._total_collisions
        start_history = len(self._history)
        stopped_early = False
        if stop_when is not None and stop_when(self):
            stopped_early = True
        else:
            for _ in range(max_rounds):
                self.step()
                if stop_when is not None and stop_when(self):
                    stopped_early = True
                    break
        return SimResult(
            rounds_run=self._round - start_round,
            stopped_early=stopped_early,
            total_transmissions=self._total_transmissions - start_transmissions,
            total_deliveries=self._total_deliveries - start_deliveries,
            total_collisions=self._total_collisions - start_collisions,
            history=tuple(self._history[start_history:]),
        )

    def snapshot(self, *, stopped_early: bool = False) -> SimResult:
        """A :class:`SimResult` covering every round executed so far."""
        return SimResult(
            rounds_run=self._round,
            stopped_early=stopped_early,
            total_transmissions=self._total_transmissions,
            total_deliveries=self._total_deliveries,
            total_collisions=self._total_collisions,
            history=tuple(self._history),
        )


@dataclass
class BatchItem:
    """One independent simulation instance queued into a :class:`BatchEngine`."""

    network: RadioNetwork
    protocol: ArrayProtocol
    budget: int
    seed: int = 0
    collision_detection: bool = True
    params: ProtocolParams | None = None
    n_bound: int | None = None
    #: opaque caller bookkeeping, carried through to the outcome.
    tag: Any = None


@dataclass
class BatchOutcome:
    """Terminal state of one batch item."""

    item: BatchItem
    sim: SimResult
    #: whether the protocol reported ``done()`` within the budget.
    completed: bool


class BatchEngine:
    """Step many independent array-protocol instances in one process.

    Construction builds one :class:`ArrayEngine` per item; :meth:`run`
    advances every live instance one round per iteration, fusing the
    channel resolution of same-topology instances into a single batched
    kernel call, and retires each instance the moment its protocol reports
    ``done()`` (completed) or its round budget expires (failed).
    """

    def __init__(self, items: Sequence[BatchItem], *, trace: bool = False):
        self.items = list(items)
        for item in self.items:
            if item.budget < 0:
                raise SimulationError(
                    f"budget must be non-negative, got {item.budget}"
                )
        # Group same-topology instances so each group's channel resolution
        # is one batched kernel call; one kernel operand is built per
        # *distinct* (topology, backend) pair and shared by every engine in
        # its group — items whose params pick different backends must not
        # share an operand.  The topology key is cached on the network, so
        # repeated items cost O(1) here rather than a re-serialization each.
        self._groups: dict[tuple[bytes, str], list[int]] = {}
        operands: dict[tuple[bytes, str], KernelOperand] = {}
        keys: list[tuple[bytes, str]] = []
        for i, item in enumerate(self.items):
            params = item.params if item.params is not None else ProtocolParams.paper()
            backend = resolve_channel_backend(item.network, params)
            key = (item.network.adjacency_key(), backend)
            keys.append(key)
            self._groups.setdefault(key, []).append(i)
            if key not in operands:
                operands[key] = select_kernel_operand(item.network, params)
        self.engines = [
            ArrayEngine(
                item.network,
                item.protocol,
                seed=item.seed,
                collision_detection=item.collision_detection,
                params=item.params,
                n_bound=item.n_bound,
                trace=trace,
                kernel_operand=operands[key],
            )
            for item, key in zip(self.items, keys)
        ]

    def run(self) -> list[BatchOutcome]:
        """Run every item to completion or budget; outcomes in item order."""
        outcomes: list[BatchOutcome | None] = [None] * len(self.items)
        live: set[int] = set()

        def retire(i: int, *, completed: bool) -> None:
            outcomes[i] = BatchOutcome(
                item=self.items[i],
                sim=self.engines[i].snapshot(stopped_early=completed),
                completed=completed,
            )
            live.discard(i)

        for i, item in enumerate(self.items):
            if item.protocol.done():
                retire(i, completed=True)  # vacuous goal: zero rounds, like run()
            elif item.budget == 0:
                retire(i, completed=False)
            else:
                live.add(i)

        while live:
            for indices in self._groups.values():
                active = [i for i in indices if i in live]
                if not active:
                    continue
                if len(active) == 1:
                    try:
                        self.engines[active[0]].step()
                    except SimulationError as exc:
                        # Same item-naming courtesy as the fused path below.
                        raise SimulationError(
                            f"{exc} (item {active[0]})"
                        ) from None
                    continue
                plans = [self.engines[i].begin_round() for i in active]
                transmit = np.stack([p.transmit for p in plans])
                listen = np.stack([p.listen for p in plans])
                try:
                    channel = resolve_channel(
                        self.engines[active[0]].kernel_operand, transmit, listen
                    )
                except SimulationError as exc:
                    # The kernel reports positions in the fused stack; map
                    # them back to this batch's item indices so the culprit
                    # is the caller's item, not a row of the live subset.
                    raise SimulationError(
                        f"{exc} (batch rows are items {active}, in order)"
                    ) from None
                for row, i in enumerate(active):
                    self.engines[i].complete_round(channel.row(row))
            for i in list(live):
                if self.items[i].protocol.done():
                    retire(i, completed=True)
                elif self.engines[i].round_index >= self.items[i].budget:
                    retire(i, completed=False)
        return [outcome for outcome in outcomes if outcome is not None]
