"""The paper's k-message broadcast: ``O(D + k log n + log^2 n)`` rounds.

The headline multi-message result (Theorem 1.2) pipelines ``k`` distinct
messages through the same two mechanisms the single-message GHK broadcast
uses (:mod:`repro.sim.ghk_broadcast`):

1. **Wave synchronization.**  One beep wave sweeps the network in ``D``
   rounds and teaches every node its BFS layer; relay pulses piggyback a
   held message, so uncontended stretches of the wavefront already start
   delivering payload at one hop per round.

2. **Layered slot schedule, one message per owned slot.**  After the wave,
   layer ``d`` owns round ``t`` iff ``t ≡ d (mod wave_spacing)``, which
   removes all cross-layer collisions.  A node holding at least one
   message contends for each of its owned slots with the usual decay
   backoff (transmit with probability ``2^-(j mod B)`` in its ``j``-th
   owned slot, ``B = Θ(log n)``); when its coin fires it transmits **one**
   message: the held message it has transmitted the *fewest* times so far,
   breaking ties uniformly at random.  Least-sent-first is what makes the
   pipeline pay: a freshly received message preempts everything the node
   has already forwarded, so in steady state nearly every firing pushes
   the frontier, while older messages still recycle once counts equalize —
   a receiver that lost a transmission to a same-layer collision gets it
   again.  Blind round-robin over held messages would instead spend only
   ``1/k`` of each hop's firings usefully, degrading the whole broadcast
   to ``Ω(k^2)``; and a *deterministic* tie-break would synchronize every
   saturated node onto the same resend cycle, making a receiver that
   missed one message wait a full ``k``-cycle for every neighbour to come
   back around simultaneously.  Different messages stream through the layer
   schedule back to back — message ``m+1`` does not wait for message
   ``m`` to finish its ``D``-round journey, which is exactly what turns
   ``k`` sequential ``O(D + log^2 n)`` broadcasts into one
   ``O(D + k log n + log^2 n)`` pipeline.

3. **Source pumping.**  The source transmits in every owned slot without a
   coin: layer 0 is a singleton by definition (only the source is at
   distance 0), so there is no contention to back off from, and
   probabilistic injection would otherwise cap the whole broadcast at one
   message per ``wave_spacing / E[2^-j]`` rounds regardless of ``k``.

4. **Piggybacked requests.**  Every data transmission carries, besides its
   payload, the transmitter's lowest *missing* message index (``-1`` once
   it holds everything).  Any holder of that message that overhears the
   request — settled nodes listen whenever they are not transmitting —
   marks it *requested*, and selection serves requested messages first
   (least-sent-first within each class).  A request persists until it is
   *observably* served — the holder hears that message delivered cleanly
   nearby, or hears a ``want`` that moved past it (the want is the lowest
   missing index, so everything below it is demonstrably held) — rather
   than being consumed by the holder's own transmission, which under a
   synchronized decay cycle would burn the flag on the early collided
   slots and leave the productive singleton slot carrying a random
   duplicate.  Stale flags are harmless: live requesters re-announce with
   every firing.  This is the radio-native cure for the duplicate problem
   that otherwise dominates for large ``k``: blind senders near saturation
   deliver a novel message only once per ``~k`` receipts (a
   coupon-collector tail), while a piggybacked request turns the
   straggler's wait into one round trip through its own layer slot.
   Requests are a priority boost, never a mute, so no receiver can be
   starved by a wrong or stale request.

Messages travel as ``(index, payload, want)`` triples so a receiver can
tell which of the ``k`` messages a clean receipt carries (the index plays
the role of the sequence tag any real multi-message protocol attaches,
and ``want`` is the piggybacked request); the
:data:`~repro.sim.beepwave.WAVE_PULSE` sentinel still marks a content-free
pulse.  A node is *informed* once it holds **all** ``k`` messages — the
completion predicate the drivers and the batch engine share with the
single-message protocols.

Like every protocol in the repo, the broadcast exists in both execution
forms — :class:`MultiMessageProtocol` per node,
:class:`MultiMessageArrayProtocol` whole-network — coin-for-coin identical
on shared seeds.  The protocol requires collision detection (the wave
stalls without it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.params import ProtocolParams
from repro.sim.beepwave import WAVE_PULSE, in_layer_slot, is_beep
from repro.sim.core.array_protocol import (
    ArrayContext,
    BroadcastArrayProtocol,
    CoinDeck,
    RoundPlan,
    register_array_protocol,
)
from repro.sim.core.channel import ChannelRound
from repro.sim.core.stats import SimResult
from repro.sim.engine import run_until_all_informed
from repro.sim.faults import FaultSchedule
from repro.sim.protocol import (
    Action,
    BroadcastProtocol,
    Feedback,
    FeedbackKind,
    NodeContext,
    register_protocol,
)
from repro.sim.runners import (
    BroadcastRun,
    BroadcastSpec,
    prepare_broadcast_engine,
    register_broadcast_spec,
)
from repro.sim.topology import RadioNetwork

__all__ = [
    "MultiMessageProtocol",
    "MultiMessageArrayProtocol",
    "MultiMessageResult",
    "run_multi_message",
]


def _check_message_and_k(message: Any, k_messages: Any) -> int:
    if message is WAVE_PULSE:
        raise ConfigurationError(
            "WAVE_PULSE is reserved for synchronization pulses and cannot be "
            "the broadcast message"
        )
    if not isinstance(k_messages, int) or isinstance(k_messages, bool) or k_messages < 1:
        raise ConfigurationError(
            f"k_messages must be a positive integer, got {k_messages!r}"
        )
    return k_messages


@register_protocol("multimessage")
class MultiMessageProtocol(BroadcastProtocol):
    """Per-node state machine of the k-message pipelined broadcast.

    The source starts holding all ``k`` messages (payload ``i`` is the pair
    ``(i, message)``); every other node collects them one clean receipt at
    a time.  Slot-for-slot and coin-for-coin, ``k_messages=1`` reproduces
    :class:`~repro.sim.ghk_broadcast.GHKBroadcastProtocol` exactly.
    """

    def __init__(self, message: Any = "broadcast", k_messages: int = 1) -> None:
        super().__init__(message)
        self.k_messages = _check_message_and_k(message, k_messages)

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        if not ctx.collision_detection:
            raise ConfigurationError(
                "MultiMessageProtocol requires collision detection: without it "
                "the synchronization beep wave stalls at the first contended hop"
            )
        self.spacing = ctx.params.wave_spacing
        self.backoff_slots = ctx.params.ghk_backoff_slots(ctx.n_bound)
        k = self.k_messages
        #: which of the k messages this node holds.
        self.known: list[bool] = [ctx.is_source] * k
        #: held payloads by message index (``None`` until received).
        self.payloads: list[Any] = [
            self._injected_message if ctx.is_source else None for _ in range(k)
        ]
        #: per-message arrival round (0 for the source, None while missing).
        self.message_rounds: list[int | None] = [0 if ctx.is_source else None] * k
        #: holds all k messages — the broadcast completion predicate.
        self.informed = ctx.is_source
        self.informed_round: int | None = 0 if ctx.is_source else None
        #: BFS layer, learned when the sync wave arrives (0 for the source).
        self.wave_distance: int | None = 0 if ctx.is_source else None
        self._pulse_sent = False
        self._slots_contended = 0
        #: how many times this node has transmitted each message.
        self._send_count: list[int] = [0] * k
        #: held messages some overheard neighbour announced it was missing.
        self._requested: list[bool] = [False] * k

    # ------------------------------------------------------------------ #
    # Message bookkeeping
    # ------------------------------------------------------------------ #
    def _lowest_missing(self) -> int:
        """The piggybacked request: lowest missing index, -1 when complete."""
        for index, held in enumerate(self.known):
            if not held:
                return index
        return -1

    def _next_held(self) -> int:
        """Requested-first, least-sent-first selection (caller holds >= 1).

        Candidates are the held-and-requested messages with the minimal
        send count, or the held messages with the minimal send count when
        nothing is requested; ties break uniformly at random (one coin,
        drawn only when there are >= 2 candidates, so ``k_messages=1``
        draws no selection coins at all).  The transmission is counted;
        the request flag survives until observably served (see module
        docstring).
        """
        pool = [
            index
            for index, (held, req) in enumerate(zip(self.known, self._requested))
            if held and req
        ]
        if not pool:
            pool = [index for index, held in enumerate(self.known) if held]
        least = min(self._send_count[index] for index in pool)
        candidates = [index for index in pool if self._send_count[index] == least]
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            chosen = candidates[int(self.ctx.rng.random() * len(candidates))]
        self._send_count[chosen] += 1
        return chosen

    def _transmit_payload(self, index: int) -> tuple[int, Any, int]:
        return (index, self.payloads[index], self._lowest_missing())

    # ------------------------------------------------------------------ #
    # Round behaviour
    # ------------------------------------------------------------------ #
    def act(self, round_index: int) -> Action:
        if self.wave_distance is None:
            # Waiting for the sync wave; the first beep fixes our layer.
            return Action.listen()
        if not self._pulse_sent and round_index >= self.wave_distance:
            # Relay the wave exactly once, piggybacking a held message so
            # uncontended receivers start collecting from the wave itself.
            self._pulse_sent = True
            if not any(self.known):
                return Action.transmit(WAVE_PULSE)
            return Action.transmit(self._transmit_payload(self._next_held()))
        if any(self.known) and in_layer_slot(round_index, self.wave_distance, self.spacing):
            if self.ctx.is_source:
                # Layer 0 is a singleton by definition, so the source pumps
                # a message in every owned slot — no contention, no coin.
                return Action.transmit(self._transmit_payload(self._next_held()))
            j = self._slots_contended % self.backoff_slots
            self._slots_contended += 1
            if self.ctx.rng.random() < 2.0 ** (-j):
                return Action.transmit(self._transmit_payload(self._next_held()))
        # Listen whenever not transmitting: missing messages may arrive from
        # any neighbouring layer, and overheard requests steer selection.
        return Action.listen()

    def on_feedback(self, round_index: int, feedback: Feedback) -> None:
        if self.wave_distance is None:
            if is_beep(feedback):
                self.wave_distance = feedback.round_index + 1
            else:
                return
        if feedback.kind is not FeedbackKind.MESSAGE or feedback.message is WAVE_PULSE:
            return
        index, payload, want = feedback.message
        if not self.known[index]:
            self.known[index] = True
            self.payloads[index] = payload
            self.message_rounds[index] = round_index
            if all(self.known):
                self.informed = True
                self.informed_round = round_index
        # The heard message was just delivered in our neighbourhood: its
        # request, if any, is served.
        self._requested[index] = False
        if want >= 0:
            # The transmitter holds everything below its want, so those
            # requests are settled; the want itself is live demand.
            for i in range(want):
                self._requested[i] = False
            if self.known[want]:
                self._requested[want] = True

    def finished(self) -> bool:
        return self.informed


@register_array_protocol("multimessage")
class MultiMessageArrayProtocol(BroadcastArrayProtocol):
    """Whole-network k-message broadcast as array state.

    Mirrors :class:`MultiMessageProtocol` branch-for-branch — relay pulses
    take precedence over layer slots, exactly one backoff coin per owned
    slot of a node holding >= 1 message, least-sent-first selection with
    send counts bumped only on an actual transmission — so the two forms
    produce identical traces on identical seeds.
    """

    def __init__(self, message: Any = "broadcast", k_messages: int = 1) -> None:
        super().__init__(message)
        self.k_messages = _check_message_and_k(message, k_messages)

    def setup(self, ctx: ArrayContext) -> None:
        super().setup(ctx)
        if not ctx.collision_detection:
            raise ConfigurationError(
                "MultiMessageArrayProtocol requires collision detection: without "
                "it the synchronization beep wave stalls at the first contended hop"
            )
        self.spacing = ctx.params.wave_spacing
        self.backoff_slots = ctx.params.ghk_backoff_slots(ctx.n_bound)
        self._init_broadcast_state(ctx)  # informed == "holds all k messages"
        n, k = ctx.n_nodes, self.k_messages
        self.known = np.zeros((n, k), dtype=bool)
        self.known[ctx.source, :] = True
        self.message_round = np.full((n, k), -1, dtype=np.int64)
        self.message_round[ctx.source, :] = 0
        self.wave_distance = np.full(n, -1, dtype=np.int64)
        self.wave_distance[ctx.source] = 0
        self._pulse_sent = np.zeros(n, dtype=bool)
        self._slots_contended = np.zeros(n, dtype=np.int64)
        self._send_count = np.zeros((n, k), dtype=np.int64)
        self._requested = np.zeros((n, k), dtype=bool)
        self._coins = CoinDeck(ctx.streams)
        #: which message index each transmitter carries in the round being
        #: resolved (-1 for a content-free pulse); receivers index it by
        #: sender id.
        self._tx_index = np.full(n, -1, dtype=np.int64)
        #: each transmitter's piggybacked request in the round being
        #: resolved (-1 = missing nothing); receivers index it by sender id.
        self._tx_want = np.full(n, -1, dtype=np.int64)

    def act(self, round_index: int) -> RoundPlan:
        r = round_index
        unsynced = self.wave_distance < 0
        relay = ~unsynced & ~self._pulse_sent & (r >= self.wave_distance)
        self._pulse_sent |= relay
        settled = ~unsynced & ~relay
        holds_any = self.known.any(axis=1)
        transmit = relay.copy()
        self._tx_index.fill(-1)
        relayers = np.nonzero(relay & holds_any)[0]
        if relayers.size:
            self._tx_index[relayers] = self._select_least_sent(relayers)
        # Layer slots: r > d and r ≡ d (mod spacing); unsynced rows hold -1
        # but are masked out by `settled`.
        slot = (
            settled
            & holds_any
            & (r > self.wave_distance)
            & ((r - self.wave_distance) % self.spacing == 0)
        )
        source = self.ctx.source
        if slot[source]:
            # The source's layer is a singleton: pump without a coin.
            slot[source] = False
            transmit[source] = True
            self._tx_index[source] = self._select_least_sent(
                np.array([source], dtype=np.int64)
            )[0]
        owners = np.nonzero(slot)[0]
        if owners.size:
            j = self._slots_contended[owners] % self.backoff_slots
            self._slots_contended[owners] += 1
            fire = self._coins.draw(owners) < np.power(2.0, -j.astype(np.float64))
            firing = owners[fire]
            if firing.size:
                transmit[firing] = True
                self._tx_index[firing] = self._select_least_sent(firing)
        # Piggyback each payload carrier's lowest missing index.
        self._tx_want.fill(-1)
        carriers = np.nonzero(self._tx_index >= 0)[0]
        if carriers.size:
            missing = ~self.known[carriers]
            self._tx_want[carriers] = np.where(
                missing.any(axis=1), np.argmax(missing, axis=1), -1
            )
        # Listen whenever not transmitting: missing messages may arrive from
        # any neighbouring layer, and overheard requests steer selection.
        listen = unsynced | (settled & ~transmit)
        return RoundPlan(transmit=transmit, listen=listen)

    def _select_least_sent(self, nodes: np.ndarray) -> np.ndarray:
        """Per-node requested-first, least-sent selection, random ties, counted.

        Mirrors the object form's ``_next_held``: the pool is each node's
        held-and-requested messages, falling back to all held messages when
        nothing is requested; candidates are the pool entries with the
        minimal send count; a node with >= 2 candidates draws one tie-break
        coin from its private stream (nodes with a unique candidate draw
        nothing, so ``k_messages=1`` draws no selection coins at all).  The
        chosen transmissions are tallied; request flags survive until
        observably served (see module docstring).
        """
        held = self.known[nodes]
        requested = held & self._requested[nodes]
        pool = np.where(requested.any(axis=1)[:, None], requested, held)
        masked = np.where(
            pool, self._send_count[nodes], np.iinfo(np.int64).max
        )
        candidates = masked == masked.min(axis=1, keepdims=True)
        num_candidates = candidates.sum(axis=1)
        pick = np.zeros(nodes.size, dtype=np.int64)
        tied = num_candidates > 1
        if tied.any():
            coins = self._coins.draw(nodes[tied])
            pick[tied] = (coins * num_candidates[tied]).astype(np.int64)
        # The pick-th candidate column per row: first column where the
        # candidate cumulative count exceeds pick.
        chosen = np.argmax(candidates.cumsum(axis=1) > pick[:, None], axis=1)
        self._send_count[nodes, chosen] += 1
        return chosen

    def on_feedback(self, round_index: int, channel: ChannelRound) -> None:
        r = round_index
        # Beep: any non-silent outcome (collision detection is guaranteed
        # by setup), fixing the layer of every first-time hearer.
        beep = channel.clean | channel.collided
        newly_synced = beep & (self.wave_distance < 0)
        self.wave_distance[newly_synced] = r + 1
        # Message receipt: a clean transmission carrying a payload index.
        receipt = channel.clean & (self._tx_index[channel.senders] >= 0)
        receivers = np.nonzero(receipt)[0]
        if not receivers.size:
            return
        senders = channel.senders[receivers]
        indices = self._tx_index[senders]
        fresh = ~self.known[receivers, indices]
        fresh_receivers, fresh_indices = receivers[fresh], indices[fresh]
        if fresh_receivers.size:
            self.known[fresh_receivers, fresh_indices] = True
            self.message_round[fresh_receivers, fresh_indices] = r
            completed = fresh_receivers[self.known[fresh_receivers].all(axis=1)]
            if completed.size:
                self.informed[completed] = True
                self.informed_round[completed] = r
        # The heard message was just delivered in each receiver's
        # neighbourhood: its request, if any, is served.
        self._requested[receivers, indices] = False
        # Overheard wants: everything below a want is demonstrably held by
        # the transmitter, so those requests are settled; the want itself
        # is live demand for receivers that hold it.
        wants = self._tx_want[senders]
        columns = np.arange(self.k_messages, dtype=np.int64)
        self._requested[receivers] &= columns[None, :] >= wants[:, None]
        wanted = wants >= 0
        want_receivers, want_indices = receivers[wanted], wants[wanted]
        holds_want = self.known[want_receivers, want_indices]
        self._requested[want_receivers[holds_want], want_indices[holds_want]] = True

    def wave_distances(self) -> tuple[int, ...]:
        """Per-node BFS layers as plain ints (-1 where the wave never arrived)."""
        return tuple(self.wave_distance.tolist())

    def message_delivery_rounds(self) -> tuple[tuple[int, ...], ...]:
        """Per-node tuple of per-message arrival rounds (-1 while missing)."""
        return tuple(tuple(row) for row in self.message_round.tolist())


@dataclass(frozen=True)
class MultiMessageResult:
    """Outcome of one successful :func:`run_multi_message`."""

    network: str
    n: int
    seed: int
    budget: int
    #: number of distinct messages broadcast from the source.
    k_messages: int
    #: rounds executed until every node held all k messages.
    rounds_to_delivery: int
    #: per-node round at which the *last* missing message arrived.
    informed_rounds: tuple[int, ...]
    #: per-node, per-message arrival rounds (k entries per node).
    message_rounds: tuple[tuple[int, ...], ...]
    #: per-node BFS layer as learned from the sync wave.
    wave_distances: tuple[int, ...]
    #: layer-slot reuse period used by this run.
    wave_spacing: int
    sim: SimResult


def run_multi_message(
    network: RadioNetwork,
    params: ProtocolParams | None = None,
    *,
    seed: int = 0,
    message: Any = "broadcast",
    k_messages: int = 1,
    collision_detection: bool = True,
    n_bound: int | None = None,
    budget: int | None = None,
    trace: bool = False,
    faults: FaultSchedule | None = None,
    sanitize: bool | None = None,
) -> MultiMessageResult:
    """Broadcast ``k_messages`` distinct messages from the source, pipelined.

    Runs until every node holds all ``k`` messages or the round budget
    (default: :meth:`ProtocolParams.ghk_multi_message_rounds` for the
    source eccentricity) expires, in which case
    :class:`~repro.errors.BroadcastFailure` is raised carrying the set of
    nodes still missing at least one message — the same contract as the
    single-message drivers, so sweeps drive all of them uniformly.
    """
    _check_message_and_k(message, k_messages)
    if not collision_detection:
        raise ConfigurationError(
            "run_multi_message models the paper's collision-detection setting; "
            "the k-message pipeline has no collision-blind counterpart here"
        )
    prepared = prepare_broadcast_engine(
        MULTI_MESSAGE_SPEC,
        network,
        params,
        seed=seed,
        message=message,
        collision_detection=True,
        n_bound=n_bound,
        budget=budget,
        trace=trace,
        options={"k_messages": k_messages},
        faults=faults,
        sanitize=sanitize,
    )
    sim = run_until_all_informed(
        prepared.engine, prepared.budget, label="k-message GHK", seed=seed
    )
    return MultiMessageResult(
        network=network.name,
        n=network.n,
        seed=seed,
        budget=prepared.budget,
        k_messages=k_messages,
        rounds_to_delivery=sim.rounds_run,
        informed_rounds=tuple(p.informed_round for p in prepared.protocols),
        message_rounds=tuple(
            tuple(-1 if r is None else r for r in p.message_rounds)
            for p in prepared.protocols
        ),
        wave_distances=tuple(p.wave_distance for p in prepared.protocols),
        wave_spacing=prepared.params.wave_spacing,
        sim=sim,
    )


def _multi_message_array_result(run: BroadcastRun) -> MultiMessageResult:
    protocol = run.protocol
    if not isinstance(protocol, MultiMessageArrayProtocol):
        raise SimulationError(
            f"multi-message result requested for {type(protocol).__name__}, "
            "not a MultiMessageArrayProtocol run"
        )
    return MultiMessageResult(
        network=run.network.name,
        n=run.network.n,
        seed=run.seed,
        budget=run.budget,
        k_messages=protocol.k_messages,
        rounds_to_delivery=run.sim.rounds_run,
        informed_rounds=protocol.informed_rounds(),
        message_rounds=protocol.message_delivery_rounds(),
        wave_distances=protocol.wave_distances(),
        wave_spacing=run.params.wave_spacing,
        sim=run.sim,
    )


MULTI_MESSAGE_SPEC = register_broadcast_spec(
    BroadcastSpec(
        name="multimessage",
        label="k-message GHK",
        runner=run_multi_message,
        protocol_factory=MultiMessageProtocol,
        array_factory=MultiMessageArrayProtocol,
        budget_for=lambda params, net, bound, options: params.ghk_multi_message_rounds(
            net.eccentricity(), bound, options.get("k_messages", 1)
        ),
        default_collision_detection=True,
        requires_collision_detection=True,
        build_result=_multi_message_array_result,
        option_names=frozenset({"k_messages"}),
    )
)
